//! **E19** — the chaos drill: a fault × load matrix over the resilient
//! query engine.
//!
//! Each cell replays the E18 request grid (14 requests × 3 rounds = 42
//! requests) through a fresh [`rcs_query::QueryEngine`] while a
//! [`ChaosInjector`] deterministically injects one fault family —
//! worker panics, NaN-poisoned inputs, forced non-convergence, inflated
//! work costs, or a mix — under two load profiles (a roomy cache with
//! an unbounded work budget, and a tight cache with a finite budget and
//! a wide degradation window). The drill asserts the containment
//! contract cell by cell: **every request gets an outcome** (ok /
//! degraded / failed — never lost), successes still enter the cache,
//! and the per-cell recovery counters land in the run manifest, where
//! the committed `resilience.*` profile golden pins them at every
//! `RCS_THREADS`.

use rcs_core::experiments::Table;
use rcs_obs::Registry;
use rcs_query::{
    e18_query_service, DesignQuery, QueryEngine, QueryError, QueryOutcome, ResiliencePolicy,
};

use crate::{ChaosConfig, ChaosInjector};

/// Chaos stream seed (XORed with each query's canonical hash).
pub const SEED: u64 = 19731102;

/// Availability trial budget per query — smaller than E18's so the ten
/// cells stay cheap; the grid hashes are distinct from E18's anyway.
pub const TRIALS: u32 = 40;

/// Rounds of the 14-request batch per cell (42 requests per cell).
pub const ROUNDS: usize = 3;

/// Finite work budget of the tight load profile, in work units: room
/// for roughly one clean solve plus change, so inflated costs shed.
pub const TIGHT_BUDGET: u64 = 2_000;

/// Work units charged by an inflation fault — large enough to blow
/// [`TIGHT_BUDGET`] on its own, absorbed without harm under a roomy
/// budget.
pub const INFLATE_UNITS: u64 = 2_500;

/// The E19 request batch: the E18 grid re-seeded for this drill.
#[must_use]
pub fn batch() -> Vec<DesignQuery> {
    e18_query_service::batch()
        .into_iter()
        .map(|mut q| {
            q.trials = TRIALS;
            q.seed = SEED;
            q
        })
        .collect()
}

/// The fault scenarios of the matrix, in run order.
#[must_use]
pub fn scenarios() -> Vec<(&'static str, ChaosConfig)> {
    vec![
        ("baseline", ChaosConfig::quiet(SEED)),
        (
            "panics",
            ChaosConfig {
                panic_p: 0.40,
                ..ChaosConfig::quiet(SEED)
            },
        ),
        (
            "solver",
            ChaosConfig {
                poison_p: 0.05,
                no_convergence_p: 0.35,
                ..ChaosConfig::quiet(SEED)
            },
        ),
        (
            "overload",
            ChaosConfig {
                inflate_p: 0.50,
                inflate_units: INFLATE_UNITS,
                ..ChaosConfig::quiet(SEED)
            },
        ),
        (
            "mixed",
            ChaosConfig {
                panic_p: 0.20,
                poison_p: 0.05,
                no_convergence_p: 0.15,
                inflate_p: 0.15,
                inflate_units: INFLATE_UNITS,
                ..ChaosConfig::quiet(SEED)
            },
        ),
    ]
}

/// The load profiles of the matrix: cache capacity + resilience policy.
#[must_use]
pub fn loads() -> Vec<(&'static str, usize, ResiliencePolicy)> {
    vec![
        (
            "roomy",
            32,
            ResiliencePolicy {
                max_attempts: 3,
                work_budget: u64::MAX,
                degrade_window: 0.1,
            },
        ),
        (
            "tight",
            8,
            ResiliencePolicy {
                max_attempts: 3,
                work_budget: TIGHT_BUDGET,
                degrade_window: 0.3,
            },
        ),
    ]
}

fn error_kind(e: &QueryError) -> &'static str {
    match e {
        QueryError::Parse(_) => "parse",
        QueryError::NoConvergence { .. } => "no_convergence",
        QueryError::InvalidDesign { .. } => "invalid_design",
        QueryError::WorkerPanic { .. } => "worker_panic",
        QueryError::BudgetExhausted { .. } => "budget_exhausted",
    }
}

/// Runs the matrix at the ambient [`rcs_parallel::thread_count`].
#[must_use]
pub fn run(obs: &Registry) -> Vec<Table> {
    run_with_threads(rcs_parallel::thread_count(), obs)
}

/// Runs the matrix at an explicit thread count (the determinism suite
/// compares 1/2/4 directly). Returns the per-cell outcome table and the
/// degraded-provenance table.
///
/// # Panics
///
/// Panics if any cell loses a request — the containment contract is an
/// invariant of the drill, not a statistic.
#[must_use]
pub fn run_with_threads(threads: usize, obs: &Registry) -> Vec<Table> {
    run_with_threads_spanned(threads, obs, rcs_obs::span::SpanSink::disabled())
}

/// [`run`] plus span attribution at the ambient thread count.
#[must_use]
pub fn run_spanned(obs: &Registry, spans: &rcs_obs::span::SpanSink) -> Vec<Table> {
    run_with_threads_spanned(rcs_parallel::thread_count(), obs, spans)
}

/// [`run_with_threads`] plus span attribution: each matrix cell runs
/// inside a `<load>.<scenario>` span whose three `query.batch` children
/// carry the per-request `req.<hash>` spans. Telemetry on `obs` is
/// byte-identical to [`run_with_threads`].
///
/// # Panics
///
/// Same contract as [`run_with_threads`].
#[must_use]
pub fn run_with_threads_spanned(
    threads: usize,
    obs: &Registry,
    spans: &rcs_obs::span::SpanSink,
) -> Vec<Table> {
    let queries = batch();
    let mut cell_rows = Vec::new();
    let mut provenance_rows = Vec::new();

    for (load_name, capacity, policy) in loads() {
        for (scenario_name, config) in scenarios() {
            let injector = ChaosInjector::new(config);
            let mut engine = QueryEngine::new(capacity).with_policy(policy);

            spans.enter(&format!("{load_name}.{scenario_name}"), obs);
            let before = obs.snapshot();
            let (mut ok_n, mut degraded_n, mut failed_n) = (0u64, 0u64, 0u64);
            for round in 1..=ROUNDS {
                let outcomes =
                    engine.run_batch_with_spanned(&queries, threads, obs, &injector, spans);
                assert_eq!(
                    outcomes.len(),
                    queries.len(),
                    "{scenario_name}/{load_name} round {round}: lost a request"
                );
                for (i, outcome) in outcomes.iter().enumerate() {
                    match outcome {
                        QueryOutcome::Ok(_) => ok_n += 1,
                        QueryOutcome::Degraded { provenance, .. } => {
                            degraded_n += 1;
                            // The provenance table keeps the first few
                            // degradations per cell — enough to pin the
                            // substitution choices without drowning the
                            // report.
                            if provenance_rows.len() < 12 {
                                provenance_rows.push(vec![
                                    format!("{scenario_name}/{load_name}"),
                                    format!("r{round}#{i}"),
                                    format!("{:.2}", queries[i].utilization),
                                    format!("{:016x}", provenance.requested_hash),
                                    format!("{:016x}", provenance.source_hash),
                                    format!("{:.3}", provenance.delta_utilization),
                                    error_kind(&provenance.error).to_owned(),
                                ]);
                            }
                        }
                        QueryOutcome::Failed(_) => failed_n += 1,
                    }
                }
            }
            let answered = ok_n + degraded_n + failed_n;
            assert_eq!(
                answered,
                (queries.len() * ROUNDS) as u64,
                "{scenario_name}/{load_name}: outcomes must partition the requests"
            );

            let snap = obs.snapshot();
            let delta = |name: &str| (snap.counter(name) - before.counter(name)).to_string();
            cell_rows.push(vec![
                scenario_name.to_owned(),
                load_name.to_owned(),
                ok_n.to_string(),
                degraded_n.to_string(),
                failed_n.to_string(),
                delta("resilience.worker.panics"),
                delta("resilience.retry.attempts"),
                delta("resilience.retry.recoveries"),
                delta("resilience.budget.exhausted"),
                delta("query.cache.evictions"),
            ]);
            spans.exit(obs);
        }
    }

    vec![
        Table::new(
            format!(
                "E19 — chaos drill, fault × load matrix ({} requests/cell: \
                 {ROUNDS}× the 14-query grid; chaos seed {SEED})",
                batch().len() * ROUNDS
            ),
            &[
                "scenario",
                "load",
                "ok",
                "degraded",
                "failed",
                "panics",
                "retries",
                "recoveries",
                "budget trips",
                "evictions",
            ],
            cell_rows,
        ),
        Table::new(
            "E19 — degraded-verdict provenance (first 12 substitutions)".to_owned(),
            &[
                "cell",
                "request",
                "util",
                "requested hash",
                "served from",
                "Δutil",
                "terminal error",
            ],
            provenance_rows,
        ),
    ]
}
