//! Deterministic chaos engineering for the query engine.
//!
//! Production resilience claims are worthless untested; this crate
//! tests them the only way the repo's determinism contract allows:
//! faults are *drawn, not rolled*. A [`ChaosInjector`] decides the
//! fault for `(query, attempt)` from its own jumped RNG stream —
//! `seed ⊕ canonical_hash`, jumped once per attempt — so the decision
//! is a pure function of the configuration and the request, never of
//! thread interleaving, wall clock, or call order. Running the same
//! drill at `RCS_THREADS=1` and `=4` injects the *same* worker panics,
//! the *same* NaN-poisoned inputs, the *same* forced non-convergences
//! and the *same* inflated work costs, which is what lets E19
//! ([`e19_chaos_drill`]) pin `resilience.*` recovery counters in a
//! committed golden.
//!
//! # Examples
//!
//! ```
//! use rcs_chaos::{ChaosConfig, ChaosInjector};
//! use rcs_query::{DesignQuery, FaultInjector};
//!
//! let injector = ChaosInjector::new(ChaosConfig {
//!     panic_p: 1.0, // always
//!     ..ChaosConfig::quiet(7)
//! });
//! let q = DesignQuery::parse("family=skat util=0.8").unwrap();
//! assert!(injector.fault_for(&q, 0).is_some());
//! // Same query, same attempt → same decision, forever.
//! assert_eq!(injector.fault_for(&q, 0), injector.fault_for(&q, 0));
//! ```

#![warn(missing_docs)]
// Same resilience gate as the engine crates: the chaos layer runs
// inside workers too.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod e19_chaos_drill;

use rcs_numeric::rng::Rng;
use rcs_query::{DesignQuery, FaultInjector, InjectedFault};

/// Per-attempt fault probabilities and magnitudes. Probabilities are
/// evaluated as disjoint bands of one uniform draw, in declaration
/// order (panic, poison, no-convergence, inflate); their sum is clamped
/// into `[0, 1]` by that construction — an over-specified config simply
/// saturates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Stream seed; XORed with each query's canonical hash.
    pub seed: u64,
    /// P(worker panic) per attempt.
    pub panic_p: f64,
    /// P(NaN-poisoned utilization) per attempt.
    pub poison_p: f64,
    /// P(forced solver non-convergence) per attempt.
    pub no_convergence_p: f64,
    /// P(inflated work cost) per attempt.
    pub inflate_p: f64,
    /// Work units charged when an inflation fires.
    pub inflate_units: u64,
}

impl ChaosConfig {
    /// A configuration that never injects anything — the identity
    /// element of the drill matrix.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            panic_p: 0.0,
            poison_p: 0.0,
            no_convergence_p: 0.0,
            inflate_p: 0.0,
            inflate_units: 0,
        }
    }
}

/// A [`FaultInjector`] drawing faults from jumped RNG streams.
///
/// Stream derivation: `Rng::seed_from_u64(seed ⊕ query.canonical_hash())`,
/// then `attempt + 1` [`Rng::jump`]s — each attempt reads a disjoint
/// 2¹²⁸-step subsequence of the same stream, so transient faults (fault
/// at attempt 0, clean at attempt 1) arise naturally and retry
/// recovery gets exercised without any mutable injector state.
#[derive(Debug, Clone, Copy)]
pub struct ChaosInjector {
    config: ChaosConfig,
}

impl ChaosInjector {
    /// An injector for the given configuration.
    #[must_use]
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// The configuration this injector draws from.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }
}

impl FaultInjector for ChaosInjector {
    fn fault_for(&self, query: &DesignQuery, attempt: u32) -> Option<InjectedFault> {
        let c = &self.config;
        let mut rng = Rng::seed_from_u64(c.seed ^ query.canonical_hash());
        for _ in 0..=attempt {
            rng.jump();
        }
        let u = rng.next_f64();
        let mut band = c.panic_p;
        if u < band {
            return Some(InjectedFault::Panic);
        }
        band += c.poison_p;
        if u < band {
            return Some(InjectedFault::PoisonUtilization);
        }
        band += c.no_convergence_p;
        if u < band {
            return Some(InjectedFault::ForceNoConvergence);
        }
        band += c.inflate_p;
        if u < band {
            return Some(InjectedFault::InflateWork(c.inflate_units));
        }
        None
    }
}

/// Replaces the default panic hook with a silent one for the duration
/// of a chaos run, so hundreds of *injected* worker panics don't bury
/// the experiment's real output in backtrace spam. Call once from a
/// binary's `main` before the first drill; panics are still caught and
/// converted by the engine, only the hook's printing is suppressed.
pub fn silence_expected_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(spec: &str) -> DesignQuery {
        DesignQuery::parse(spec).expect("valid spec")
    }

    #[test]
    fn decisions_are_pure_functions_of_query_and_attempt() {
        let injector = ChaosInjector::new(ChaosConfig {
            panic_p: 0.25,
            poison_p: 0.25,
            no_convergence_p: 0.25,
            inflate_p: 0.25,
            inflate_units: 100,
            ..ChaosConfig::quiet(99)
        });
        let queries = [
            q("family=skat util=0.6"),
            q("family=skat util=0.7"),
            q("family=taygeta util=0.6"),
            q("family=rigel2 util=0.9"),
        ];
        for query in &queries {
            for attempt in 0..4 {
                assert_eq!(
                    injector.fault_for(query, attempt),
                    injector.fault_for(query, attempt),
                    "{query:?} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let injector = ChaosInjector::new(ChaosConfig::quiet(1));
        for seed in 0..50 {
            let query = q(&format!("family=skat seed={seed}"));
            assert_eq!(injector.fault_for(&query, 0), None);
        }
    }

    #[test]
    fn saturated_config_always_injects() {
        let injector = ChaosInjector::new(ChaosConfig {
            panic_p: 1.0,
            ..ChaosConfig::quiet(1)
        });
        for seed in 0..50 {
            let query = q(&format!("family=skat seed={seed}"));
            assert_eq!(injector.fault_for(&query, 0), Some(InjectedFault::Panic));
        }
    }

    #[test]
    fn bands_cover_every_fault_kind_across_a_population() {
        let injector = ChaosInjector::new(ChaosConfig {
            panic_p: 0.25,
            poison_p: 0.25,
            no_convergence_p: 0.25,
            inflate_p: 0.20,
            inflate_units: 7,
            ..ChaosConfig::quiet(2024)
        });
        let mut seen = [0usize; 5];
        for seed in 0..400 {
            let query = q(&format!("family=skat seed={seed}"));
            let slot = match injector.fault_for(&query, 0) {
                Some(InjectedFault::Panic) => 0,
                Some(InjectedFault::PoisonUtilization) => 1,
                Some(InjectedFault::ForceNoConvergence) => 2,
                Some(InjectedFault::InflateWork(u)) => {
                    assert_eq!(u, 7);
                    3
                }
                None => 4,
            };
            seen[slot] += 1;
        }
        assert!(seen.iter().all(|&n| n > 0), "{seen:?}");
    }

    #[test]
    fn attempts_read_disjoint_subsequences() {
        // With a 50% panic band, some query must decide differently
        // between attempt 0 and attempt 1 — the transient-fault shape.
        let injector = ChaosInjector::new(ChaosConfig {
            panic_p: 0.5,
            ..ChaosConfig::quiet(5)
        });
        let differs = (0..100).any(|seed| {
            let query = q(&format!("family=skat seed={seed}"));
            injector.fault_for(&query, 0) != injector.fault_for(&query, 1)
        });
        assert!(differs);
    }
}
