//! Prints the E19 chaos-drill tables (see DESIGN.md) and emits an
//! NDJSON run manifest (`RCS_OBS_MANIFEST` file, else stderr) whose
//! `resilience.*` golden counters and `profile.resilience.*` work
//! mirrors pin the drill's fault-injection and recovery schedule.

use rcs_chaos::e19_chaos_drill;
use rcs_obs::Registry;

fn main() {
    // The drill injects worker panics on purpose; keep their hook
    // output out of the report.
    rcs_chaos::silence_expected_panics();
    let obs = Registry::new();
    let tables = e19_chaos_drill::run(&obs);
    rcs_core::experiments::finish_run(
        "e19_chaos_drill",
        Some(e19_chaos_drill::SEED),
        &tables,
        &obs,
    );
}
