//! Prints the E19 chaos-drill tables (see DESIGN.md) and emits an
//! NDJSON run manifest (`RCS_OBS_MANIFEST` file, else stderr) whose
//! `resilience.*` golden counters and `profile.resilience.*` work
//! mirrors pin the drill's fault-injection and recovery schedule. When
//! `RCS_OBS_SPANS` names a file the per-cell golden span tree is
//! appended to it.

use rcs_chaos::e19_chaos_drill;
use rcs_obs::span::SpanSink;
use rcs_obs::Registry;

fn main() {
    // The drill injects worker panics on purpose; keep their hook
    // output out of the report.
    rcs_chaos::silence_expected_panics();
    let obs = Registry::new();
    let spans = SpanSink::from_env();
    let tables = e19_chaos_drill::run_spanned(&obs, &spans);
    rcs_core::experiments::finish_run(
        "e19_chaos_drill",
        Some(e19_chaos_drill::SEED),
        &tables,
        &obs,
    );
    rcs_obs::span::emit(&spans.snapshot());
}
