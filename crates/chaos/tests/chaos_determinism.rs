//! E19 chaos-drill pinning and the resilience determinism property:
//! any mixed ok/panic/fail batch yields bit-identical outcomes, cache
//! contents and `resilience.*` counters at `RCS_THREADS` 1/2/4 —
//! eviction order included.

use rcs_chaos::{e19_chaos_drill, ChaosConfig, ChaosInjector};
use rcs_obs::Registry;
use rcs_query::{DesignQuery, QueryEngine, QueryOutcome, ResiliencePolicy};

/// The golden counter names the determinism property compares.
const RESILIENCE_COUNTERS: &[&str] = &[
    "resilience.worker.panics",
    "resilience.retry.attempts",
    "resilience.retry.recoveries",
    "resilience.budget.exhausted",
    "resilience.failures.fatal",
    "resilience.failures.exhausted",
    "resilience.degraded.served",
    "resilience.degraded.unavailable",
    "resilience.injected.panics",
    "resilience.injected.poisoned",
    "resilience.injected.no_convergence",
    "resilience.injected.cost",
    "query.outcomes.ok",
    "query.outcomes.degraded",
    "query.outcomes.failed",
    "query.cache.hits",
    "query.cache.misses",
    "query.cache.evictions",
    "query.batch.coalesced",
];

#[test]
fn e19_counters_are_pinned() {
    std::panic::set_hook(Box::new(|_| {})); // injected panics are expected
    let obs = Registry::new();
    let tables = e19_chaos_drill::run(&obs);
    assert_eq!(tables.len(), 2);
    let snap = obs.snapshot();

    // 5 scenarios × 2 loads × 42 requests — none lost (the drill
    // asserts per-cell partition internally; the request counter proves
    // all ten cells ran).
    assert_eq!(snap.counter("query.requests"), 420);

    // The acceptance shape: worker panics AND forced non-convergences
    // were actually injected, retried, recovered from, shed against
    // budgets, and degraded onto neighbors.
    assert_eq!(snap.counter("resilience.injected.panics"), 34);
    assert_eq!(snap.counter("resilience.injected.no_convergence"), 38);
    assert_eq!(snap.counter("resilience.injected.poisoned"), 6);
    assert_eq!(snap.counter("resilience.injected.cost"), 120_000);
    assert_eq!(snap.counter("resilience.worker.panics"), 34);
    assert_eq!(snap.counter("resilience.retry.attempts"), 60);
    assert_eq!(snap.counter("resilience.retry.recoveries"), 10);
    assert_eq!(snap.counter("resilience.budget.exhausted"), 36);
    assert_eq!(snap.counter("resilience.failures.fatal"), 6);
    assert_eq!(snap.counter("resilience.failures.exhausted"), 12);
    assert_eq!(snap.counter("resilience.degraded.served"), 34);
    assert_eq!(snap.counter("resilience.degraded.unavailable"), 23);

    // Outcomes partition the 420 requests: 363 exact, 34 degraded, 23
    // failed (the ok tally below only counts batches that had faults —
    // clean batches stay counter-silent by design).
    assert_eq!(snap.counter("query.outcomes.degraded"), 34);
    assert_eq!(snap.counter("query.outcomes.failed"), 23);

    // Work mirrors carry the same values into the profile golden.
    assert_eq!(snap.counter("profile.resilience.worker.panics"), 34);
    assert_eq!(snap.counter("profile.resilience.injected.cost"), 120_000);
}

#[test]
fn e19_is_bit_identical_across_thread_counts() {
    std::panic::set_hook(Box::new(|_| {}));
    let run = |threads: usize| {
        let obs = Registry::new();
        let tables = e19_chaos_drill::run_with_threads(threads, &obs);
        (tables, obs.snapshot())
    };
    let (ref_tables, ref_snap) = run(1);
    for threads in [2, 4] {
        let (tables, snap) = run(threads);
        assert_eq!(ref_tables, tables, "tables differ at threads={threads}");
        for name in RESILIENCE_COUNTERS {
            assert_eq!(
                ref_snap.counter(name),
                snap.counter(name),
                "counter {name} at threads={threads}"
            );
        }
    }
}

/// The satellite property: random mixed batches through random chaos
/// configs and cache geometries produce bit-identical outcomes, cache
/// contents (eviction order included) and resilience counters at
/// threads 1/2/4.
#[test]
fn mixed_batches_are_thread_invariant_under_chaos() {
    std::panic::set_hook(Box::new(|_| {}));
    let families = ["rigel2", "taygeta", "skat", "skat_plus"];
    rcs_testkit::check_cases("chaos_thread_invariance", 6, |g| {
        // A random batch of 3–7 cheap queries (duplicates allowed).
        let n = g.draw(3..=7usize);
        let queries: Vec<DesignQuery> = (0..n)
            .map(|_| {
                let family = families[g.index(families.len())];
                let util = 0.5 + 0.1 * g.draw(0..=4u32) as f64;
                DesignQuery::parse(&format!("family={family} util={util} trials=6 seed=3"))
                    .expect("valid spec")
            })
            .collect();

        // A random chaos mix — heavy enough that faults actually fire.
        let config = ChaosConfig {
            seed: g.draw(0..=u64::MAX / 2),
            panic_p: 0.25 * g.draw(0.0..=1.0),
            poison_p: 0.15 * g.draw(0.0..=1.0),
            no_convergence_p: 0.35 * g.draw(0.0..=1.0),
            inflate_p: 0.30 * g.draw(0.0..=1.0),
            inflate_units: g.draw(500..=3_000u64),
        };
        let injector = ChaosInjector::new(config);
        let capacity = g.draw(0..=4usize); // zero-capacity included
        let policy = ResiliencePolicy {
            max_attempts: g.draw(1..=3u32),
            work_budget: if g.bool(0.5) { 2_000 } else { u64::MAX },
            degrade_window: if g.bool(0.5) { 0.3 } else { 0.05 },
        };

        let run = |threads: usize| {
            let obs = Registry::new();
            let mut engine = QueryEngine::new(capacity).with_policy(policy);
            let outcomes = engine.run_batch_with(&queries, threads, &obs, &injector);
            (
                outcomes,
                engine.cache().keys_in_eviction_order(),
                obs.snapshot(),
            )
        };
        let (ref_outcomes, ref_order, ref_snap) = run(1);
        assert_eq!(ref_outcomes.len(), queries.len(), "no request may be lost");
        for threads in [2, 4] {
            let (outcomes, order, snap) = run(threads);
            assert_eq!(outcomes.len(), ref_outcomes.len());
            for (i, (a, b)) in ref_outcomes.iter().zip(&outcomes).enumerate() {
                assert!(
                    a.bitwise_eq(b),
                    "outcome {i} at threads={threads}: {a:?} vs {b:?}"
                );
            }
            assert_eq!(order, ref_order, "eviction order at threads={threads}");
            for name in RESILIENCE_COUNTERS {
                assert_eq!(
                    ref_snap.counter(name),
                    snap.counter(name),
                    "counter {name} at threads={threads}"
                );
            }
        }

        // Sanity: degraded outcomes must carry self-consistent
        // provenance.
        for outcome in &ref_outcomes {
            if let QueryOutcome::Degraded {
                verdict,
                provenance,
            } = outcome
            {
                assert_ne!(provenance.requested_hash, provenance.source_hash);
                assert_eq!(verdict.query_hash, provenance.source_hash);
                assert!(provenance.delta_utilization <= policy.degrade_window);
            }
        }
    });
}
