//! The RCS performance estimate.
//!
//! An RCS maps the information graph of a task onto the FPGA field as
//! hardwired pipelines, so sustained performance scales with (logic
//! capacity × pipeline clock × utilization): every `CELLS_PER_OPERATION`
//! logic cells implement one operation pipeline that retires one operation
//! per cycle. The coefficient is calibrated so that the paper's rack-level
//! claim holds: not less than 12 new-generation modules in a 47U rack
//! exceed 1 PFlops (§5).

use rcs_units::Fraction;

use crate::part::FpgaPart;

/// A computation rate in (32-bit-equivalent) operations per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ComputeRate(f64);

impl ComputeRate {
    /// Wraps a raw rate in operations per second.
    #[must_use]
    pub const fn from_ops_per_second(ops: f64) -> Self {
        Self(ops)
    }

    /// The raw rate in operations per second.
    #[must_use]
    pub const fn ops_per_second(self) -> f64 {
        self.0
    }

    /// The rate in teraflops (10¹² op/s).
    #[must_use]
    pub fn as_teraflops(self) -> f64 {
        self.0 / 1e12
    }

    /// The rate in petaflops (10¹⁵ op/s).
    #[must_use]
    pub fn as_petaflops(self) -> f64 {
        self.0 / 1e15
    }
}

impl core::ops::Add for ComputeRate {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::iter::Sum for ComputeRate {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|r| r.0).sum())
    }
}

impl core::ops::Mul<f64> for ComputeRate {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::fmt::Display for ComputeRate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 >= 1e15 {
            write!(f, "{:.2} PFlops", self.as_petaflops())
        } else if self.0 >= 1e12 {
            write!(f, "{:.2} TFlops", self.as_teraflops())
        } else {
            write!(f, "{:.2} GFlops", self.0 / 1e9)
        }
    }
}

/// Logic cells consumed by one hardwired operation pipeline.
///
/// Calibrated against §5: 12 modules × 96 UltraScale-class FPGAs ≥ 1 PFlops.
pub const CELLS_PER_OPERATION: f64 = 550.0;

/// Peak rate of one part: every `CELLS_PER_OPERATION` cells retire one
/// operation per design-clock cycle.
///
/// # Examples
///
/// ```
/// use rcs_devices::{performance, FpgaPart};
/// let per_chip = performance::peak_ops(&FpgaPart::xcku095());
/// assert!(per_chip.as_teraflops() > 0.8); // ~0.9 TFlops per KU095
/// ```
#[must_use]
pub fn peak_ops(part: &FpgaPart) -> ComputeRate {
    ComputeRate::from_ops_per_second(
        part.logic_cells() as f64 / CELLS_PER_OPERATION * part.design_clock().hertz(),
    )
}

/// Sustained rate at a given resource utilization and clock fraction.
#[must_use]
pub fn sustained_ops(
    part: &FpgaPart,
    utilization: Fraction,
    clock_fraction: Fraction,
) -> ComputeRate {
    peak_ops(part) * utilization.clamp(0.0, 1.0) * clock_fraction.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_step_v7_to_ku095_is_2_9x() {
        let r = peak_ops(&FpgaPart::xcku095()).ops_per_second()
            / peak_ops(&FpgaPart::xc7vx485t()).ops_per_second();
        assert!((r - 2.9).abs() < 0.1, "ratio = {r}");
    }

    #[test]
    fn skat_vs_taygeta_8_7x() {
        // 96 KU095 chips vs 32 V7 chips
        let skat = peak_ops(&FpgaPart::xcku095()).ops_per_second() * 96.0;
        let taygeta = peak_ops(&FpgaPart::xc7vx485t()).ops_per_second() * 32.0;
        let r = skat / taygeta;
        assert!((r - 8.7).abs() < 0.3, "ratio = {r}");
    }

    #[test]
    fn ultrascale_plus_triples_skat() {
        // §4: UltraScale+ gives a three-fold increase at the same size.
        let r = peak_ops(&FpgaPart::vu9p_class()).ops_per_second()
            / peak_ops(&FpgaPart::xcku095()).ops_per_second();
        assert!((r - 3.0).abs() < 0.15, "ratio = {r}");
    }

    #[test]
    fn rack_of_12_skat_plus_modules_exceeds_a_petaflops() {
        // §5: "not less than 12 new-generation CMs, with a total
        // performance above 1 PFlops, in a single 47U computer rack".
        let rack = peak_ops(&FpgaPart::vu9p_class()).ops_per_second() * 96.0 * 12.0;
        assert!(rack / 1e15 > 1.0, "rack = {} PFlops", rack / 1e15);
    }

    #[test]
    fn sustained_scales_linearly() {
        let part = FpgaPart::xcku095();
        let half = sustained_ops(&part, 0.5, 1.0);
        let full = sustained_ops(&part, 1.0, 1.0);
        assert!((full.ops_per_second() / half.ops_per_second() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_scale() {
        assert!(ComputeRate::from_ops_per_second(5e9)
            .to_string()
            .ends_with("GFlops"));
        assert!(ComputeRate::from_ops_per_second(5e12)
            .to_string()
            .ends_with("TFlops"));
        assert!(ComputeRate::from_ops_per_second(5e15)
            .to_string()
            .ends_with("PFlops"));
    }

    #[test]
    fn rates_sum() {
        let chip = peak_ops(&FpgaPart::xcku095());
        let module: ComputeRate = (0..96).map(|_| chip).sum();
        assert!((module.ops_per_second() - chip.ops_per_second() * 96.0).abs() < 1.0);
    }
}
