//! The FPGA part catalog.

use rcs_units::{Frequency, Length, Power, ThermalResistance};

use crate::family::FpgaFamily;

/// One packaged FPGA part: capacity, design clock, package geometry,
/// thermal path and power coefficients.
///
/// The four named constructors cover the specific parts the paper's
/// modules are built from; [`FpgaPart::ultrascale2_projected`] extrapolates
/// the next family the conclusions speculate about. Capacity and power
/// figures are calibrated against the paper's anchors (see `DESIGN.md`):
/// a 32-chip Taygeta module drawing 1661 W, a 96-chip SKAT module drawing
/// 8736 W at 91 W per chip, and a ×2.9 per-chip performance step from
/// Virtex-7 to Kintex UltraScale.
///
/// # Examples
///
/// ```
/// let skat_chip = rcs_devices::FpgaPart::xcku095();
/// assert_eq!(skat_chip.package_side().as_millimeters(), 42.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaPart {
    name: String,
    family: FpgaFamily,
    logic_cells: u64,
    dsp_slices: u32,
    bram_megabits: f64,
    design_clock: Frequency,
    package_side: Length,
    r_junction_case: ThermalResistance,
    /// Static (leakage) power at 25 °C junction, full configuration.
    static_power_25: Power,
    /// Dynamic power at 100 % utilization and design clock.
    dynamic_power_full: Power,
}

impl FpgaPart {
    /// Builds a custom part.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn custom(
        name: impl Into<String>,
        family: FpgaFamily,
        logic_cells: u64,
        dsp_slices: u32,
        bram_megabits: f64,
        design_clock: Frequency,
        package_side: Length,
        r_junction_case: ThermalResistance,
        static_power_25: Power,
        dynamic_power_full: Power,
    ) -> Self {
        Self {
            name: name.into(),
            family,
            logic_cells,
            dsp_slices,
            bram_megabits,
            design_clock,
            package_side,
            r_junction_case,
            static_power_25,
            dynamic_power_full,
        }
    }

    /// Virtex-6 XC6VLX240T (FF1759) — the Rigel-2 module's part.
    #[must_use]
    pub fn xc6vlx240t() -> Self {
        Self::custom(
            "XC6VLX240T",
            FpgaFamily::Virtex6,
            241_152,
            768,
            14.9,
            Frequency::megahertz(300.0),
            Length::millimeters(42.5),
            ThermalResistance::from_kelvin_per_watt(0.12),
            Power::from_watts(5.5),
            Power::from_watts(21.0),
        )
    }

    /// Virtex-7 XC7VX485T (FFG1761) — the Taygeta module's part.
    #[must_use]
    pub fn xc7vx485t() -> Self {
        Self::custom(
            "XC7VX485T",
            FpgaFamily::Virtex7,
            485_760,
            2800,
            37.1,
            Frequency::megahertz(350.0),
            Length::millimeters(45.0),
            ThermalResistance::from_kelvin_per_watt(0.11),
            Power::from_watts(7.0),
            Power::from_watts(23.3),
        )
    }

    /// Kintex UltraScale XCKU095 — eight per SKAT computational circuit
    /// board; 91 W measured in operating mode (§3).
    #[must_use]
    pub fn xcku095() -> Self {
        Self::custom(
            "XCKU095",
            FpgaFamily::UltraScale,
            1_176_000,
            768,
            60.8,
            Frequency::megahertz(420.0),
            Length::millimeters(42.5),
            ThermalResistance::from_kelvin_per_watt(0.10),
            Power::from_watts(14.0),
            Power::from_watts(73.0),
        )
    }

    /// A VU9P-class UltraScale+ part — the SKAT+ design's 45 mm package
    /// that forces the CCB redesign of §4.
    #[must_use]
    pub fn vu9p_class() -> Self {
        Self::custom(
            "XCVU9P-class",
            FpgaFamily::UltraScalePlus,
            2_586_000,
            6840,
            270.0,
            Frequency::megahertz(575.0),
            Length::millimeters(45.0),
            ThermalResistance::from_kelvin_per_watt(0.09),
            Power::from_watts(17.0),
            Power::from_watts(100.0),
        )
    }

    /// The paper's speculative "UltraScale 2" next generation, extrapolated
    /// with the same capacity/clock growth rate as the previous step.
    #[must_use]
    pub fn ultrascale2_projected() -> Self {
        Self::custom(
            "UltraScale-2 (projected)",
            FpgaFamily::UltraScale2,
            5_500_000,
            14_000,
            560.0,
            Frequency::megahertz(700.0),
            Length::millimeters(45.0),
            ThermalResistance::from_kelvin_per_watt(0.08),
            Power::from_watts(22.0),
            Power::from_watts(118.0),
        )
    }

    /// The representative part of each family, oldest first.
    #[must_use]
    pub fn catalog() -> Vec<FpgaPart> {
        vec![
            Self::xc6vlx240t(),
            Self::xc7vx485t(),
            Self::xcku095(),
            Self::vu9p_class(),
            Self::ultrascale2_projected(),
        ]
    }

    /// Part name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Family the part belongs to.
    #[must_use]
    pub fn family(&self) -> FpgaFamily {
        self.family
    }

    /// System logic cells.
    #[must_use]
    pub fn logic_cells(&self) -> u64 {
        self.logic_cells
    }

    /// DSP slices.
    #[must_use]
    pub fn dsp_slices(&self) -> u32 {
        self.dsp_slices
    }

    /// Block RAM capacity in megabits.
    #[must_use]
    pub fn bram_megabits(&self) -> f64 {
        self.bram_megabits
    }

    /// Design (achievable pipeline) clock for RCS task structures.
    #[must_use]
    pub fn design_clock(&self) -> Frequency {
        self.design_clock
    }

    /// Side length of the (square) BGA package.
    #[must_use]
    pub fn package_side(&self) -> Length {
        self.package_side
    }

    /// Junction-to-case thermal resistance.
    #[must_use]
    pub fn r_junction_case(&self) -> ThermalResistance {
        self.r_junction_case
    }

    /// Static (leakage) power at 25 °C junction.
    #[must_use]
    pub fn static_power_25(&self) -> Power {
        self.static_power_25
    }

    /// Dynamic power at full utilization and design clock.
    #[must_use]
    pub fn dynamic_power_full(&self) -> Power {
        self.dynamic_power_full
    }
}

impl core::fmt::Display for FpgaPart {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} ({})", self.name, self.family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_capacity_grows_monotonically() {
        let parts = FpgaPart::catalog();
        for w in parts.windows(2) {
            assert!(
                w[1].logic_cells() > w[0].logic_cells(),
                "{} vs {}",
                w[1],
                w[0]
            );
            assert!(w[1].design_clock() > w[0].design_clock());
        }
    }

    #[test]
    fn package_sizes_match_the_paper() {
        // §4: SKAT FPGAs are 42.5 x 42.5 mm, SKAT+ FPGAs are 45 x 45 mm.
        assert_eq!(FpgaPart::xcku095().package_side().as_millimeters(), 42.5);
        assert_eq!(FpgaPart::vu9p_class().package_side().as_millimeters(), 45.0);
    }

    #[test]
    fn junction_case_resistance_shrinks_with_generation() {
        let parts = FpgaPart::catalog();
        for w in parts.windows(2) {
            assert!(
                w[1].r_junction_case().kelvin_per_watt()
                    <= w[0].r_junction_case().kelvin_per_watt()
            );
        }
    }

    #[test]
    fn display_includes_family() {
        assert_eq!(FpgaPart::xcku095().to_string(), "XCKU095 (UltraScale)");
    }
}
