//! Junction-temperature reliability: Arrhenius acceleration and the
//! paper's 65–70 °C operating rule.
//!
//! §1 of the paper: "the permissible temperature of an FPGA functioning,
//! providing high reliability of the equipment during a long operation
//! period, is 65…70 °C". This module quantifies that rule with the
//! standard Arrhenius model used for semiconductor wear-out: failure rate
//! scales as `exp(−Ea / (k·T))` in absolute junction temperature.

use rcs_units::Celsius;

use crate::family::FpgaFamily;

/// Activation energy of the dominant wear-out mechanism, eV.
pub const ACTIVATION_ENERGY_EV: f64 = 0.7;

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617e-5;

/// Reference junction temperature at which [`BASE_FIT`] is specified.
pub const REFERENCE_JUNCTION: Celsius = Celsius::new(55.0);

/// Base failure rate at the reference junction temperature, failures per
/// 10⁹ device-hours (a large compute FPGA with its regulators).
pub const BASE_FIT: f64 = 150.0;

/// Arrhenius acceleration factor of a junction temperature relative to
/// the reference junction.
///
/// `1.0` at 55 °C; roughly ×2 per +10…12 K around the operating range.
///
/// # Examples
///
/// ```
/// use rcs_devices::reliability;
/// use rcs_units::Celsius;
///
/// let hot = reliability::acceleration_factor(Celsius::new(85.0));
/// let cool = reliability::acceleration_factor(Celsius::new(55.0));
/// assert!((cool - 1.0).abs() < 1e-12);
/// assert!(hot > 5.0); // running at 85 °C wears out >5x faster
/// ```
#[must_use]
pub fn acceleration_factor(junction: Celsius) -> f64 {
    let t = junction.to_kelvin().kelvins();
    let t_ref = REFERENCE_JUNCTION.to_kelvin().kelvins();
    (ACTIVATION_ENERGY_EV / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)).exp()
}

/// Failure rate at the given junction temperature, in FIT
/// (failures per 10⁹ device-hours).
#[must_use]
pub fn failure_rate_fit(junction: Celsius) -> f64 {
    BASE_FIT * acceleration_factor(junction)
}

/// Mean time between failures of one device at the given junction
/// temperature, in hours.
#[must_use]
pub fn mtbf_hours(junction: Celsius) -> f64 {
    1e9 / failure_rate_fit(junction)
}

/// MTBF of a field of `devices` identical chips (series reliability), in
/// hours.
#[must_use]
pub fn field_mtbf_hours(junction: Celsius, devices: usize) -> f64 {
    mtbf_hours(junction) / devices.max(1) as f64
}

/// Whether a junction temperature satisfies the paper's long-service
/// reliability rule for the family.
#[must_use]
pub fn within_reliable_range(family: FpgaFamily, junction: Celsius) -> bool {
    junction.degrees() <= family.reliable_junction_limit_c()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_is_one_at_reference() {
        assert!((acceleration_factor(REFERENCE_JUNCTION) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceleration_monotone_in_temperature() {
        let mut last = 0.0;
        for t in [25.0, 40.0, 55.0, 70.0, 85.0, 100.0] {
            let af = acceleration_factor(Celsius::new(t));
            assert!(af > last);
            last = af;
        }
    }

    #[test]
    fn roughly_doubles_per_ten_kelvin() {
        let r = acceleration_factor(Celsius::new(65.0)) / acceleration_factor(Celsius::new(55.0));
        assert!(r > 1.7 && r < 2.3, "x{r} per 10 K");
    }

    #[test]
    fn skat_vs_taygeta_reliability_story() {
        // SKAT holds 55 °C; Taygeta ran at 72.9 °C. The immersion system
        // buys a ~3.5x wear-out margin.
        let gain = failure_rate_fit(Celsius::new(72.9)) / failure_rate_fit(Celsius::new(55.0));
        assert!(gain > 3.0, "gain = {gain}");
        assert!(within_reliable_range(
            FpgaFamily::UltraScale,
            Celsius::new(55.0)
        ));
        assert!(!within_reliable_range(
            FpgaFamily::Virtex7,
            Celsius::new(72.9)
        ));
    }

    #[test]
    fn field_mtbf_divides_by_population() {
        let one = field_mtbf_hours(Celsius::new(55.0), 1);
        let rack = field_mtbf_hours(Celsius::new(55.0), 1152);
        assert!((one / rack - 1152.0).abs() < 1e-9);
        // A 1152-chip rack at 55 °C still runs months between chip failures.
        assert!(rack > 30.0 * 24.0, "rack MTBF = {rack} h");
    }
}
