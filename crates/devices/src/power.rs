//! The FPGA power model: temperature-dependent leakage plus scaled
//! dynamic power.

use rcs_units::{Celsius, Power};

use crate::part::FpgaPart;

/// How hard one FPGA is being driven.
///
/// The paper characterizes RCS operating mode as "workload on the chips
/// reaches up to 85–95 % of the available hardware resource"; the
/// [`OperatingPoint::operating_mode`] constructor uses the 90 % midpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Fraction of the chip's logic resources in use, `[0, 1]`.
    pub utilization: f64,
    /// Achieved clock as a fraction of the part's design clock, `[0, 1]`.
    pub clock_fraction: f64,
}

impl OperatingPoint {
    /// The paper's operating mode: 90 % utilization at full design clock.
    #[must_use]
    pub fn operating_mode() -> Self {
        Self {
            utilization: 0.90,
            clock_fraction: 1.0,
        }
    }

    /// A configured but idle field (clock gated down).
    #[must_use]
    pub fn idle() -> Self {
        Self {
            utilization: 0.0,
            clock_fraction: 0.1,
        }
    }

    /// An explicit utilization at full clock.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    #[must_use]
    pub fn at_utilization(utilization: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization outside [0, 1]"
        );
        Self {
            utilization,
            clock_fraction: 1.0,
        }
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::operating_mode()
    }
}

/// Power model of one FPGA part.
///
/// Total power is `P_static(T_j) + P_dyn · utilization · clock_fraction`,
/// where leakage doubles every [`PowerModel::LEAKAGE_DOUBLING_K`] kelvins
/// of junction temperature — the coupling that makes badly cooled chips
/// draw even more power, and which the coupled solver in `rcs-core`
/// iterates to a fixed point.
///
/// # Examples
///
/// ```
/// use rcs_devices::{FpgaPart, OperatingPoint, PowerModel};
/// use rcs_units::Celsius;
///
/// let model = PowerModel::for_part(&FpgaPart::xcku095());
/// let p = model.power(OperatingPoint::operating_mode(), Celsius::new(55.0));
/// // the SKAT measurement: 91 W per FPGA in operating mode
/// assert!((p.watts() - 91.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    static_25: Power,
    dynamic_full: Power,
}

impl PowerModel {
    /// Junction-temperature interval over which leakage power doubles.
    pub const LEAKAGE_DOUBLING_K: f64 = 35.0;

    /// Builds the model for a catalog part.
    #[must_use]
    pub fn for_part(part: &FpgaPart) -> Self {
        Self {
            static_25: part.static_power_25(),
            dynamic_full: part.dynamic_power_full(),
        }
    }

    /// Static (leakage) power at the given junction temperature.
    #[must_use]
    pub fn static_power(&self, junction: Celsius) -> Power {
        let factor = 2f64.powf((junction.degrees() - 25.0) / Self::LEAKAGE_DOUBLING_K);
        Power::from_watts(self.static_25.watts() * factor)
    }

    /// Dynamic power at the given operating point (temperature
    /// independent).
    #[must_use]
    pub fn dynamic_power(&self, op: OperatingPoint) -> Power {
        Power::from_watts(
            self.dynamic_full.watts()
                * op.utilization.clamp(0.0, 1.0)
                * op.clock_fraction.clamp(0.0, 1.0),
        )
    }

    /// Total power at the given operating point and junction temperature.
    #[must_use]
    pub fn power(&self, op: OperatingPoint, junction: Celsius) -> Power {
        self.static_power(junction) + self.dynamic_power(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skat_anchor_91_watts() {
        let m = PowerModel::for_part(&FpgaPart::xcku095());
        let p = m.power(OperatingPoint::operating_mode(), Celsius::new(55.0));
        assert!((p.watts() - 91.0).abs() < 2.0, "P = {p}");
    }

    #[test]
    fn taygeta_anchor_39_watts() {
        // 32 chips x ~39 W = ~1246 W of FPGA power, 75 % of the 1661 W CM.
        let m = PowerModel::for_part(&FpgaPart::xc7vx485t());
        let p = m.power(OperatingPoint::operating_mode(), Celsius::new(72.9));
        assert!((p.watts() - 39.0).abs() < 2.0, "P = {p}");
    }

    #[test]
    fn rigel2_anchor_29_watts() {
        let m = PowerModel::for_part(&FpgaPart::xc6vlx240t());
        let p = m.power(OperatingPoint::operating_mode(), Celsius::new(58.1));
        assert!((p.watts() - 29.4).abs() < 2.0, "P = {p}");
    }

    #[test]
    fn leakage_doubles_per_interval() {
        let m = PowerModel::for_part(&FpgaPart::xcku095());
        let p25 = m.static_power(Celsius::new(25.0)).watts();
        let p60 = m
            .static_power(Celsius::new(25.0 + PowerModel::LEAKAGE_DOUBLING_K))
            .watts();
        assert!((p60 / p25 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_monotone_in_utilization_and_temperature() {
        let m = PowerModel::for_part(&FpgaPart::vu9p_class());
        let lo = m.power(OperatingPoint::at_utilization(0.5), Celsius::new(40.0));
        let hi_util = m.power(OperatingPoint::at_utilization(0.9), Celsius::new(40.0));
        let hi_temp = m.power(OperatingPoint::at_utilization(0.5), Celsius::new(70.0));
        assert!(hi_util > lo);
        assert!(hi_temp > lo);
    }

    #[test]
    fn idle_power_is_mostly_static() {
        let m = PowerModel::for_part(&FpgaPart::xcku095());
        let idle = m.power(OperatingPoint::idle(), Celsius::new(40.0));
        let static_only = m.static_power(Celsius::new(40.0));
        assert!(idle.watts() < 1.1 * static_only.watts());
    }

    #[test]
    fn ultrascale_power_approaches_100w_per_chip() {
        // §1: "Virtex UltraScale (with a power consumption of up to 100 W
        // for each chip)" — at 95 % utilization and a hot junction.
        let m = PowerModel::for_part(&FpgaPart::xcku095());
        let p = m.power(OperatingPoint::at_utilization(0.95), Celsius::new(70.0));
        assert!(p.watts() > 90.0 && p.watts() < 110.0, "P = {p}");
    }

    #[test]
    #[should_panic(expected = "utilization outside")]
    fn invalid_utilization_panics() {
        let _ = OperatingPoint::at_utilization(1.5);
    }
}
