//! FPGA families spanned by the paper's computational modules.

/// A Xilinx FPGA family, ordered by generation.
///
/// The ordering (`Virtex6 < Virtex7 < …`) follows production chronology,
/// which the paper uses to argue that each family transition adds
/// 10–15 °C of overheat under air cooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FpgaFamily {
    /// Virtex-6 (40 nm) — the Rigel-2 computational module.
    Virtex6,
    /// Virtex-7 (28 nm) — the Taygeta computational module.
    Virtex7,
    /// Kintex/Virtex UltraScale (20 nm) — the SKAT module.
    UltraScale,
    /// UltraScale+ (16 nm FinFET) — the SKAT+ design.
    UltraScalePlus,
    /// A projected next-generation family the paper calls "UltraScale 2".
    UltraScale2,
}

impl FpgaFamily {
    /// All families, oldest first.
    #[must_use]
    pub fn all() -> [FpgaFamily; 5] {
        [
            Self::Virtex6,
            Self::Virtex7,
            Self::UltraScale,
            Self::UltraScalePlus,
            Self::UltraScale2,
        ]
    }

    /// Process node in nanometers.
    #[must_use]
    pub fn process_nm(self) -> f64 {
        match self {
            Self::Virtex6 => 40.0,
            Self::Virtex7 => 28.0,
            Self::UltraScale => 20.0,
            Self::UltraScalePlus => 16.0,
            Self::UltraScale2 => 10.0,
        }
    }

    /// The junction temperature the paper considers compatible with "high
    /// reliability of the equipment during a long operation period"
    /// (65…70 °C): we use the midpoint as the design ceiling.
    #[must_use]
    pub fn reliable_junction_limit_c(self) -> f64 {
        67.5
    }

    /// Absolute commercial-grade junction limit.
    #[must_use]
    pub fn absolute_junction_limit_c(self) -> f64 {
        85.0
    }
}

impl core::fmt::Display for FpgaFamily {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Virtex6 => "Virtex-6",
            Self::Virtex7 => "Virtex-7",
            Self::UltraScale => "UltraScale",
            Self::UltraScalePlus => "UltraScale+",
            Self::UltraScale2 => "UltraScale 2",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_chronologically_ordered() {
        let all = FpgaFamily::all();
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].process_nm() > w[1].process_nm());
        }
    }

    #[test]
    fn reliability_window_is_the_papers() {
        let limit = FpgaFamily::UltraScale.reliable_junction_limit_c();
        assert!((65.0..=70.0).contains(&limit));
        assert!(FpgaFamily::UltraScale.absolute_junction_limit_c() > limit);
    }

    #[test]
    fn display_names() {
        assert_eq!(FpgaFamily::UltraScalePlus.to_string(), "UltraScale+");
    }
}
