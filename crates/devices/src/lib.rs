//! FPGA device models: catalog, power, performance and reliability.
//!
//! The paper's computational resource is an "FPGA computational field" of
//! six to eight large Xilinx parts per board, spanning five families:
//! Virtex-6 (the Rigel-2 module), Virtex-7 (Taygeta), Kintex UltraScale
//! (SKAT), UltraScale+ (SKAT+) and a projected "UltraScale 2". This crate
//! provides:
//!
//! - [`FpgaPart`] / [`FpgaFamily`] — a catalog of the specific parts named
//!   in the paper (XC6VLX240T, XC7VX485T, XCKU095, a VU9P-class
//!   UltraScale+) with logic capacity, clock, package geometry and
//!   junction limits.
//! - [`PowerModel`] — temperature-dependent static leakage plus
//!   utilization- and clock-scaled dynamic power; the coupling that makes
//!   hot chips draw more power, which the coupled solver in `rcs-core`
//!   iterates against the cooling system.
//! - [`performance`] — the logic-cells × clock performance estimate that
//!   reproduces the paper's ×8.7 (SKAT vs Taygeta) and ×3 (SKAT+ vs SKAT)
//!   claims, calibrated so that 12 SKAT+ class modules exceed 1 PFlops.
//! - [`reliability`] — Arrhenius junction-temperature acceleration and the
//!   paper's 65–70 °C "high reliability during a long operation period"
//!   rule.
//!
//! # Examples
//!
//! ```
//! use rcs_devices::{performance, FpgaPart};
//!
//! let taygeta_chip = FpgaPart::xc7vx485t();
//! let skat_chip = FpgaPart::xcku095();
//! let per_chip_gain = performance::peak_ops(&skat_chip).ops_per_second()
//!     / performance::peak_ops(&taygeta_chip).ops_per_second();
//! // x2.9 per chip; x3 more chips per module gives the paper's x8.7.
//! assert!((per_chip_gain - 2.9).abs() < 0.1);
//! ```

#![warn(missing_docs)]

mod family;
mod part;
pub mod performance;
mod power;
pub mod reliability;

pub use family::FpgaFamily;
pub use part::FpgaPart;
pub use performance::ComputeRate;
pub use power::{OperatingPoint, PowerModel};
