//! Property-based tests for the device models.

use rcs_devices::{performance, reliability, FpgaPart, OperatingPoint, PowerModel};
use rcs_testkit::check;
use rcs_units::Celsius;

fn parts() -> Vec<FpgaPart> {
    FpgaPart::catalog()
}

/// Power is monotone in junction temperature for every part.
#[test]
fn power_monotone_in_temperature() {
    check("power_monotone_in_temperature", |g| {
        let idx = g.draw(0usize..5);
        let t = g.draw(20.0..100.0f64);
        let dt = g.draw(0.5..30.0f64);
        let u = g.draw(0.0..1.0f64);
        let model = PowerModel::for_part(&parts()[idx]);
        let op = OperatingPoint::at_utilization(u);
        let lo = model.power(op, Celsius::new(t));
        let hi = model.power(op, Celsius::new(t + dt));
        assert!(hi >= lo);
    });
}

/// Power is monotone in utilization for every part.
#[test]
fn power_monotone_in_utilization() {
    check("power_monotone_in_utilization", |g| {
        let idx = g.draw(0usize..5);
        let t = g.draw(20.0..90.0f64);
        let u = g.draw(0.0..0.9f64);
        let du = g.draw(0.01..0.1f64);
        let model = PowerModel::for_part(&parts()[idx]);
        let lo = model.power(OperatingPoint::at_utilization(u), Celsius::new(t));
        let hi = model.power(OperatingPoint::at_utilization(u + du), Celsius::new(t));
        assert!(hi >= lo);
    });
}

/// Static power is never negative and never exceeds total.
#[test]
fn static_power_bounds() {
    check("static_power_bounds", |g| {
        let idx = g.draw(0usize..5);
        let t = g.draw(0.0..120.0f64);
        let u = g.draw(0.0..1.0f64);
        let model = PowerModel::for_part(&parts()[idx]);
        let tj = Celsius::new(t);
        let total = model.power(OperatingPoint::at_utilization(u), tj);
        let static_ = model.static_power(tj);
        assert!(static_.watts() > 0.0);
        assert!(static_ <= total);
    });
}

/// MTBF strictly decreases with junction temperature.
#[test]
fn mtbf_decreases_with_temperature() {
    check("mtbf_decreases_with_temperature", |g| {
        let t = g.draw(20.0..100.0f64);
        let dt = g.draw(0.5..20.0f64);
        assert!(
            reliability::mtbf_hours(Celsius::new(t + dt))
                < reliability::mtbf_hours(Celsius::new(t))
        );
    });
}

/// Arrhenius acceleration stays positive and finite over the whole
/// plausible junction range.
#[test]
fn acceleration_is_positive_and_finite() {
    check("acceleration_is_positive_and_finite", |g| {
        let t = g.draw(-20.0..150.0f64);
        let af = reliability::acceleration_factor(Celsius::new(t));
        assert!(af.is_finite() && af > 0.0);
    });
}

/// Sustained performance never exceeds peak and scales linearly.
#[test]
fn sustained_below_peak() {
    check("sustained_below_peak", |g| {
        let idx = g.draw(0usize..5);
        let u = g.draw(0.0..1.0f64);
        let c = g.draw(0.0..1.0f64);
        let part = &parts()[idx];
        let peak = performance::peak_ops(part).ops_per_second();
        let sustained = performance::sustained_ops(part, u, c).ops_per_second();
        assert!(sustained <= peak + 1e-6);
        assert!((sustained - peak * u * c).abs() <= 1e-6 * peak);
    });
}

/// Field MTBF scales inversely with population.
#[test]
fn field_mtbf_inverse_in_population() {
    check("field_mtbf_inverse_in_population", |g| {
        let t = g.draw(30.0..90.0f64);
        let n = g.draw(1usize..2000);
        let single = reliability::field_mtbf_hours(Celsius::new(t), 1);
        let field = reliability::field_mtbf_hours(Celsius::new(t), n);
        assert!((field * n as f64 - single).abs() < 1e-6 * single);
    });
}
