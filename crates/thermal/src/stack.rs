//! The per-chip heat path: junction → case → TIM → sink → coolant.

use rcs_fluids::FluidState;
use rcs_units::{Celsius, Power, ThermalResistance, Velocity};

use crate::sink::HeatSink;
use crate::tim::{ThermalInterface, TimAging};

/// The complete thermal stack of one packaged FPGA: internal
/// junction-to-case resistance, thermal interface, and heat sink into the
/// coolant.
///
/// # Examples
///
/// ```
/// use rcs_fluids::Coolant;
/// use rcs_thermal::{ChipStack, HeatSink, PinFinSink, ThermalInterface, TimMaterial};
/// use rcs_units::{Celsius, Length, Power, ThermalResistance, Velocity};
///
/// let stack = ChipStack::new(
///     ThermalResistance::from_kelvin_per_watt(0.09),
///     ThermalInterface::new(TimMaterial::SrcDesigned,
///                           Length::millimeters(0.05),
///                           Length::millimeters(42.5) * Length::millimeters(42.5)),
///     HeatSink::PinFin(PinFinSink::skat_default()),
/// );
/// let oil = Coolant::src_dielectric().state(Celsius::new(30.0));
/// let tj = stack.junction_temperature(
///     Power::from_watts(91.0), &oil,
///     Velocity::from_meters_per_second(0.4), Celsius::new(30.0));
/// assert!(tj.degrees() < 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipStack {
    r_junction_case: ThermalResistance,
    tim: ThermalInterface,
    sink: HeatSink,
    aging: TimAging,
}

impl ChipStack {
    /// Creates a stack from junction-to-case resistance, interface and sink.
    ///
    /// # Panics
    ///
    /// Panics if the junction-to-case resistance is not positive.
    #[must_use]
    pub fn new(r_junction_case: ThermalResistance, tim: ThermalInterface, sink: HeatSink) -> Self {
        assert!(
            r_junction_case.kelvin_per_watt() > 0.0,
            "junction-to-case resistance must be positive"
        );
        Self {
            r_junction_case,
            tim,
            sink,
            aging: TimAging::fresh(),
        }
    }

    /// Returns a copy of this stack with the given interface aging applied
    /// (used for service-life experiments).
    #[must_use]
    pub fn with_aging(mut self, aging: TimAging) -> Self {
        self.aging = aging;
        self
    }

    /// The junction-to-case resistance.
    #[must_use]
    pub fn r_junction_case(&self) -> ThermalResistance {
        self.r_junction_case
    }

    /// The thermal interface.
    #[must_use]
    pub fn tim(&self) -> &ThermalInterface {
        &self.tim
    }

    /// The heat sink.
    #[must_use]
    pub fn sink(&self) -> &HeatSink {
        &self.sink
    }

    /// Current interface aging.
    #[must_use]
    pub fn aging(&self) -> TimAging {
        self.aging
    }

    /// Total junction-to-coolant resistance in the given flow.
    #[must_use]
    pub fn total_resistance(&self, state: &FluidState, approach: Velocity) -> ThermalResistance {
        self.r_junction_case
            .in_series(self.tim.resistance(self.aging))
            .in_series(self.sink.resistance(state, approach))
    }

    /// Steady junction temperature at the given dissipation, coolant state,
    /// approach velocity and bulk coolant temperature.
    #[must_use]
    pub fn junction_temperature(
        &self,
        power: Power,
        state: &FluidState,
        approach: Velocity,
        coolant: Celsius,
    ) -> Celsius {
        coolant + power * self.total_resistance(state, approach)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{PinFinSink, PlateFinSink};
    use crate::tim::TimMaterial;
    use rcs_fluids::Coolant;
    use rcs_units::Length;

    fn skat_stack() -> ChipStack {
        ChipStack::new(
            ThermalResistance::from_kelvin_per_watt(0.09),
            ThermalInterface::new(
                TimMaterial::SrcDesigned,
                Length::millimeters(0.05),
                Length::millimeters(42.5) * Length::millimeters(42.5),
            ),
            HeatSink::PinFin(PinFinSink::skat_default()),
        )
    }

    #[test]
    fn skat_design_point_meets_55c() {
        // §3: 91 W per FPGA, heat-transfer agent <= 30 °C, FPGA max 55 °C.
        let oil = Coolant::src_dielectric().state(Celsius::new(30.0));
        let tj = skat_stack().junction_temperature(
            Power::from_watts(91.0),
            &oil,
            Velocity::from_meters_per_second(0.4),
            Celsius::new(30.0),
        );
        assert!(tj.degrees() <= 55.0, "Tj = {tj}");
        assert!(tj.degrees() > 35.0, "implausibly cold: {tj}");
    }

    #[test]
    fn washed_out_tim_raises_junction_temperature() {
        let oil = Coolant::mineral_oil_md45().state(Celsius::new(30.0));
        let v = Velocity::from_meters_per_second(0.4);
        let paste = ChipStack::new(
            ThermalResistance::from_kelvin_per_watt(0.09),
            ThermalInterface::new(
                TimMaterial::StandardPaste,
                Length::millimeters(0.05),
                Length::millimeters(42.5) * Length::millimeters(42.5),
            ),
            HeatSink::PinFin(PinFinSink::skat_default()),
        );
        let fresh =
            paste.junction_temperature(Power::from_watts(91.0), &oil, v, Celsius::new(30.0));
        let aged = paste
            .with_aging(TimAging::immersed_months(24.0))
            .junction_temperature(Power::from_watts(91.0), &oil, v, Celsius::new(30.0));
        assert!(aged > fresh);
        assert!(
            (aged - fresh).kelvins() > 1.0,
            "washout delta = {}",
            (aged - fresh)
        );
    }

    #[test]
    fn resistance_composition_is_series() {
        let oil = Coolant::src_dielectric().state(Celsius::new(30.0));
        let v = Velocity::from_meters_per_second(0.4);
        let s = skat_stack();
        let total = s.total_resistance(&oil, v).kelvin_per_watt();
        let parts = s.r_junction_case().kelvin_per_watt()
            + s.tim().resistance(TimAging::fresh()).kelvin_per_watt()
            + s.sink().resistance(&oil, v).kelvin_per_watt();
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn air_tower_vs_oil_pins() {
        // The motivating comparison: the same chip power through an air
        // tower at 3 m/s runs much hotter than through oil pins at 0.4 m/s.
        let air = Coolant::air().state(Celsius::new(25.0));
        let oil = Coolant::src_dielectric().state(Celsius::new(30.0));
        let tower = ChipStack::new(
            ThermalResistance::from_kelvin_per_watt(0.09),
            ThermalInterface::new(
                TimMaterial::StandardPaste,
                Length::millimeters(0.05),
                Length::millimeters(45.0) * Length::millimeters(45.0),
            ),
            HeatSink::PlateFin(PlateFinSink::air_tower_default()),
        );
        let t_air = tower.junction_temperature(
            Power::from_watts(91.0),
            &air,
            Velocity::from_meters_per_second(3.0),
            Celsius::new(25.0),
        );
        let t_oil = skat_stack().junction_temperature(
            Power::from_watts(91.0),
            &oil,
            Velocity::from_meters_per_second(0.4),
            Celsius::new(30.0),
        );
        assert!(t_air > t_oil, "air {t_air} should exceed oil {t_oil}");
    }
}
