//! Industrial chiller supplying the secondary cooling water.
//!
//! "As the secondary cooling liquid, it is possible to use water cooled by
//! an industrial chiller. The chiller can be placed outside the server
//! room" (§3). The model is deliberately simple: a temperature setpoint
//! held up to a rated capacity, a linear supply-temperature rise under
//! overload, and a coefficient of performance for the electrical overhead.

use rcs_units::{Celsius, Power, TempDelta};

/// An industrial water chiller.
///
/// # Examples
///
/// ```
/// use rcs_thermal::Chiller;
/// use rcs_units::{Celsius, Power};
///
/// let chiller = Chiller::new(Celsius::new(20.0), Power::kilowatts(150.0), 4.0);
/// // At SKAT rack load the setpoint holds:
/// assert_eq!(chiller.supply_temperature(Power::kilowatts(105.0)),
///            Celsius::new(20.0));
/// // Cooling 105 kW costs ~26 kW of electricity at COP 4:
/// assert!((chiller.electrical_power(Power::kilowatts(105.0)).as_kilowatts()
///          - 26.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chiller {
    setpoint: Celsius,
    capacity: Power,
    cop: f64,
}

impl Chiller {
    /// Creates a chiller with a supply setpoint, rated cooling capacity and
    /// coefficient of performance.
    ///
    /// # Panics
    ///
    /// Panics if capacity or COP is not positive.
    #[must_use]
    pub fn new(setpoint: Celsius, capacity: Power, cop: f64) -> Self {
        assert!(capacity.watts() > 0.0, "chiller capacity must be positive");
        assert!(cop > 0.0, "chiller COP must be positive");
        Self {
            setpoint,
            capacity,
            cop,
        }
    }

    /// Supply-water setpoint.
    #[must_use]
    pub fn setpoint(&self) -> Celsius {
        self.setpoint
    }

    /// Rated cooling capacity.
    #[must_use]
    pub fn capacity(&self) -> Power {
        self.capacity
    }

    /// Coefficient of performance (heat moved per electrical watt).
    #[must_use]
    pub fn cop(&self) -> f64 {
        self.cop
    }

    /// Supply-water temperature at the given heat load.
    ///
    /// Holds the setpoint up to rated capacity; past it, the supply
    /// temperature rises 1 K for every additional 10 % of rated load (the
    /// compressor is maxed out and the loop equilibrates hotter).
    #[must_use]
    pub fn supply_temperature(&self, load: Power) -> Celsius {
        if load <= self.capacity {
            self.setpoint
        } else {
            let overload_fraction = (load - self.capacity) / self.capacity;
            self.setpoint + TempDelta::from_kelvins(10.0 * overload_fraction)
        }
    }

    /// `true` if the load is within rated capacity.
    #[must_use]
    pub fn within_capacity(&self, load: Power) -> bool {
        load <= self.capacity
    }

    /// A degraded copy with its rated capacity scaled by
    /// `capacity_factor` (refrigerant loss, a failed compressor stage).
    ///
    /// The setpoint and COP are untouched: a derated chiller still
    /// *tries* to hold its setpoint, it just overloads — and therefore
    /// supplies warmer water — at a lower heat load. The factor is
    /// clamped to a small positive floor to keep the overload model
    /// well-defined.
    #[must_use]
    pub fn derated(&self, capacity_factor: f64) -> Self {
        Self {
            setpoint: self.setpoint,
            capacity: Power::from_watts(self.capacity.watts() * capacity_factor.max(1e-3)),
            cop: self.cop,
        }
    }

    /// A copy with the supply setpoint shifted by `offset` (a drifting
    /// or mis-commanded setpoint — the controller fault, as opposed to
    /// the compressor fault modeled by [`Chiller::derated`]).
    #[must_use]
    pub fn with_setpoint_offset(&self, offset: TempDelta) -> Self {
        Self {
            setpoint: self.setpoint + offset,
            capacity: self.capacity,
            cop: self.cop,
        }
    }

    /// Electrical power drawn to move the given heat load.
    #[must_use]
    pub fn electrical_power(&self, load: Power) -> Power {
        Power::from_watts(load.watts().max(0.0) / self.cop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chiller() -> Chiller {
        Chiller::new(Celsius::new(20.0), Power::kilowatts(100.0), 4.0)
    }

    #[test]
    fn holds_setpoint_within_capacity() {
        let c = chiller();
        assert_eq!(
            c.supply_temperature(Power::kilowatts(99.0)),
            Celsius::new(20.0)
        );
        assert_eq!(
            c.supply_temperature(Power::kilowatts(100.0)),
            Celsius::new(20.0)
        );
        assert!(c.within_capacity(Power::kilowatts(100.0)));
    }

    #[test]
    fn overload_raises_supply_temperature() {
        let c = chiller();
        let t = c.supply_temperature(Power::kilowatts(120.0));
        // 20 % overload -> +2 K
        assert!((t.degrees() - 22.0).abs() < 1e-9);
        assert!(!c.within_capacity(Power::kilowatts(120.0)));
    }

    #[test]
    fn electrical_power_scales_with_load() {
        let c = chiller();
        assert!((c.electrical_power(Power::kilowatts(80.0)).as_kilowatts() - 20.0).abs() < 1e-12);
        assert_eq!(c.electrical_power(Power::from_watts(-5.0)).watts(), 0.0);
    }

    #[test]
    #[should_panic(expected = "COP must be positive")]
    fn zero_cop_panics() {
        let _ = Chiller::new(Celsius::new(20.0), Power::kilowatts(1.0), 0.0);
    }

    #[test]
    fn derated_chiller_overloads_sooner() {
        let c = chiller();
        let half = c.derated(0.5);
        assert_eq!(half.capacity(), Power::kilowatts(50.0));
        assert_eq!(half.setpoint(), c.setpoint());
        // the same 80 kW load is within capacity when healthy, an
        // overload (warmer supply) when derated
        assert_eq!(c.supply_temperature(Power::kilowatts(80.0)), c.setpoint());
        assert!(half.supply_temperature(Power::kilowatts(80.0)) > c.setpoint());
        // the floor keeps a "fully failed" chiller well-defined
        assert!(c.derated(0.0).capacity().watts() > 0.0);
    }

    #[test]
    fn setpoint_offset_shifts_supply() {
        let c = chiller().with_setpoint_offset(TempDelta::from_kelvins(7.0));
        assert_eq!(c.setpoint(), Celsius::new(27.0));
        assert_eq!(
            c.supply_temperature(Power::kilowatts(10.0)),
            Celsius::new(27.0)
        );
    }
}
