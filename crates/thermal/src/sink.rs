//! Heat-sink geometries: bare lids, plate fins and the paper's pin-fin
//! turbulator design.
//!
//! §3 of the paper: "Specialists at SRC SC & NC have performed heat
//! engineering research and suggested a fundamentally new design of a
//! heat-sink with original solder pins which create a local turbulent flow
//! of the heat-transfer agent." The [`PinFinSink`] models that geometry: a
//! staggered field of cylindrical pins whose inter-pin acceleration raises
//! the local Reynolds number, evaluated with the Zukauskas bank
//! correlation.

use rcs_fluids::{correlations, FluidState};
use rcs_units::{Area, Length, ThermalResistance, Velocity};

/// Fin/base material of a heat sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkMaterial {
    /// Aluminum alloy, k ≈ 205 W/(m·K).
    Aluminum,
    /// Copper, k ≈ 400 W/(m·K).
    Copper,
}

impl SinkMaterial {
    /// Thermal conductivity of the material in W/(m·K).
    #[must_use]
    pub fn conductivity_w_per_m_k(self) -> f64 {
        match self {
            Self::Aluminum => 205.0,
            Self::Copper => 400.0,
        }
    }
}

/// A package lid with no sink at all: convection from the bare top area
/// only. The baseline the paper's sinks are compared against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarePlate {
    /// Exposed (wetted) area.
    pub area: Area,
    /// Streamwise length of the plate, the characteristic length for the
    /// flat-plate correlation.
    pub length: Length,
}

impl BarePlate {
    /// Convective resistance of the bare plate in the given flow.
    #[must_use]
    pub fn resistance(&self, state: &FluidState, velocity: Velocity) -> ThermalResistance {
        let h = correlations::htc_flat_plate(state, velocity, self.length);
        (h * self.area).to_resistance()
    }
}

/// A conventional straight plate-fin sink with parallel channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateFinSink {
    /// Base footprint width (across the flow).
    pub width: Length,
    /// Base footprint length (along the flow).
    pub length: Length,
    /// Fin height above the base.
    pub fin_height: Length,
    /// Fin thickness.
    pub fin_thickness: Length,
    /// Number of fins.
    pub fin_count: usize,
    /// Material of base and fins.
    pub material: SinkMaterial,
}

impl PlateFinSink {
    /// A tall air-cooling sink of the kind fitted to Rigel-2 / Taygeta
    /// boards: 40 mm fins on the package footprint.
    #[must_use]
    pub fn air_tower_default() -> Self {
        Self {
            width: Length::millimeters(45.0),
            length: Length::millimeters(45.0),
            fin_height: Length::millimeters(40.0),
            fin_thickness: Length::millimeters(0.8),
            fin_count: 18,
            material: SinkMaterial::Aluminum,
        }
    }

    /// Gap between adjacent fins.
    #[must_use]
    pub fn channel_width(&self) -> Length {
        let fins = self.fin_count.max(1) as f64;
        let total_fin = self.fin_thickness * fins;
        Length::from_meters(((self.width - total_fin) / fins).meters().max(1e-5))
    }

    /// Total wetted fin area (both faces of every fin).
    #[must_use]
    pub fn fin_area(&self) -> Area {
        self.fin_height * self.length * (2.0 * self.fin_count as f64)
    }

    /// Exposed base area between fins.
    #[must_use]
    pub fn base_area(&self) -> Area {
        let covered = self.fin_thickness * self.length * (self.fin_count as f64);
        let total = self.width * self.length;
        Area::from_square_meters((total - covered).square_meters().max(0.0))
    }

    /// Straight-fin efficiency `tanh(mL)/(mL)` with
    /// `m = sqrt(2h / (k t))`.
    #[must_use]
    pub fn fin_efficiency(&self, h_w_per_m2_k: f64) -> f64 {
        let k = self.material.conductivity_w_per_m_k();
        let t = self.fin_thickness.meters();
        let m = (2.0 * h_w_per_m2_k / (k * t)).sqrt();
        let ml = m * self.fin_height.meters();
        if ml < 1e-9 {
            1.0
        } else {
            ml.tanh() / ml
        }
    }

    /// Convective resistance of the finned surface in the given flow.
    ///
    /// The channel heat-transfer coefficient comes from the duct
    /// correlation at the inter-fin hydraulic diameter; the velocity is the
    /// approach velocity accelerated by the blockage ratio.
    #[must_use]
    pub fn resistance(&self, state: &FluidState, approach: Velocity) -> ThermalResistance {
        let gap = self.channel_width();
        let blockage = (self.width.meters()
            / (self.width.meters() - self.fin_thickness.meters() * self.fin_count as f64))
            .clamp(1.0, 20.0);
        let channel_velocity =
            Velocity::from_meters_per_second(approach.meters_per_second() * blockage);
        // hydraulic diameter of a tall rectangular channel ~ 2 * gap
        let d_h = Length::from_meters(2.0 * gap.meters());
        let h = correlations::htc_duct_developing(state, channel_velocity, d_h, self.length);
        let eta = self.fin_efficiency(h.watts_per_square_meter_kelvin());
        let effective = Area::from_square_meters(
            self.base_area().square_meters() + eta * self.fin_area().square_meters(),
        );
        (h * effective).to_resistance()
    }
}

/// The SRC solder **pin-fin turbulator** sink: a staggered field of short
/// cylindrical pins on a low-profile base, sized to fit between immersed
/// boards while tripping local turbulence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinFinSink {
    /// Base footprint width (across the flow).
    pub width: Length,
    /// Base footprint length (along the flow).
    pub length: Length,
    /// Pin diameter.
    pub pin_diameter: Length,
    /// Pin height above the base.
    pub pin_height: Length,
    /// Center-to-center pitch of the (square, staggered) pin grid.
    pub pitch: Length,
    /// Material of base and pins.
    pub material: SinkMaterial,
}

impl PinFinSink {
    /// The low-height sink the paper fits to each Kintex UltraScale FPGA
    /// of a SKAT computational circuit board: 3 mm copper pins at 6 mm
    /// pitch, 12 mm tall, on the 42.5 mm package footprint.
    #[must_use]
    pub fn skat_default() -> Self {
        Self {
            width: Length::millimeters(42.5),
            length: Length::millimeters(42.5),
            pin_diameter: Length::millimeters(3.0),
            pin_height: Length::millimeters(12.0),
            pitch: Length::millimeters(6.0),
            material: SinkMaterial::Copper,
        }
    }

    /// Number of pin columns across the flow.
    #[must_use]
    pub fn columns(&self) -> usize {
        (self.width.meters() / self.pitch.meters()).floor().max(1.0) as usize
    }

    /// Number of pin rows along the flow.
    #[must_use]
    pub fn rows(&self) -> usize {
        (self.length.meters() / self.pitch.meters())
            .floor()
            .max(1.0) as usize
    }

    /// Total pin count.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.columns() * self.rows()
    }

    /// Total wetted pin surface (cylindrical side walls plus tips).
    #[must_use]
    pub fn pin_area(&self) -> Area {
        let side = core::f64::consts::PI * self.pin_diameter.meters() * self.pin_height.meters();
        let tip = core::f64::consts::PI * self.pin_diameter.meters().powi(2) / 4.0;
        Area::from_square_meters((side + tip) * self.pin_count() as f64)
    }

    /// Exposed base area between pins.
    #[must_use]
    pub fn base_area(&self) -> Area {
        let covered = core::f64::consts::PI * self.pin_diameter.meters().powi(2) / 4.0
            * self.pin_count() as f64;
        let total = (self.width * self.length).square_meters();
        Area::from_square_meters((total - covered).max(0.0))
    }

    /// Maximum inter-pin velocity given the free-stream approach velocity:
    /// flow accelerates through the transverse gap `pitch − d`.
    #[must_use]
    pub fn max_velocity(&self, approach: Velocity) -> Velocity {
        let ratio = self.pitch.meters() / (self.pitch.meters() - self.pin_diameter.meters());
        Velocity::from_meters_per_second(approach.meters_per_second() * ratio.clamp(1.0, 20.0))
    }

    /// Pin (spine) fin efficiency `tanh(mL)/(mL)` with
    /// `m = sqrt(4h / (k d))`.
    #[must_use]
    pub fn fin_efficiency(&self, h_w_per_m2_k: f64) -> f64 {
        let k = self.material.conductivity_w_per_m_k();
        let d = self.pin_diameter.meters();
        let m = (4.0 * h_w_per_m2_k / (k * d)).sqrt();
        let ml = m * self.pin_height.meters();
        if ml < 1e-9 {
            1.0
        } else {
            ml.tanh() / ml
        }
    }

    /// Convective resistance of the pin field in the given flow, using the
    /// Zukauskas staggered-bank correlation at the maximum inter-pin
    /// velocity.
    #[must_use]
    pub fn resistance(&self, state: &FluidState, approach: Velocity) -> ThermalResistance {
        let v_max = self.max_velocity(approach);
        let h = correlations::htc_pin_bank(state, v_max, self.pin_diameter, self.rows());
        let eta = self.fin_efficiency(h.watts_per_square_meter_kelvin());
        let effective = Area::from_square_meters(
            self.base_area().square_meters() + eta * self.pin_area().square_meters(),
        );
        (h * effective).to_resistance()
    }
}

/// Any of the supported heat-sink designs.
///
/// # Examples
///
/// In 30 °C oil at 0.4 m/s, the pin-fin turbulator beats a bare lid by an
/// order of magnitude:
///
/// ```
/// use rcs_fluids::Coolant;
/// use rcs_thermal::{BarePlate, HeatSink, PinFinSink};
/// use rcs_units::{Celsius, Length, Velocity};
///
/// let oil = Coolant::mineral_oil_md45().state(Celsius::new(30.0));
/// let v = Velocity::from_meters_per_second(0.4);
/// let lid = HeatSink::Bare(BarePlate {
///     area: Length::millimeters(42.5) * Length::millimeters(42.5),
///     length: Length::millimeters(42.5),
/// });
/// let pins = HeatSink::PinFin(PinFinSink::skat_default());
/// let r_lid = lid.resistance(&oil, v).kelvin_per_watt();
/// let r_pins = pins.resistance(&oil, v).kelvin_per_watt();
/// assert!(r_pins < r_lid / 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeatSink {
    /// No sink: bare package lid.
    Bare(BarePlate),
    /// Conventional plate-fin sink.
    PlateFin(PlateFinSink),
    /// SRC pin-fin turbulator sink.
    PinFin(PinFinSink),
}

impl HeatSink {
    /// Convective sink-to-coolant resistance in the given flow.
    #[must_use]
    pub fn resistance(&self, state: &FluidState, approach: Velocity) -> ThermalResistance {
        match self {
            Self::Bare(s) => s.resistance(state, approach),
            Self::PlateFin(s) => s.resistance(state, approach),
            Self::PinFin(s) => s.resistance(state, approach),
        }
    }

    /// Height of the sink above the board, the packing-density constraint
    /// for immersed boards.
    #[must_use]
    pub fn height(&self) -> Length {
        match self {
            Self::Bare(_) => Length::from_meters(0.0),
            Self::PlateFin(s) => s.fin_height,
            Self::PinFin(s) => s.pin_height,
        }
    }

    /// Short human-readable description.
    #[must_use]
    pub fn description(&self) -> &'static str {
        match self {
            Self::Bare(_) => "bare lid",
            Self::PlateFin(_) => "plate-fin sink",
            Self::PinFin(_) => "pin-fin turbulator sink",
        }
    }
}

impl core::fmt::Display for HeatSink {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcs_fluids::Coolant;
    use rcs_units::Celsius;

    fn oil30() -> FluidState {
        Coolant::mineral_oil_md45().state(Celsius::new(30.0))
    }

    fn air25() -> FluidState {
        Coolant::air().state(Celsius::new(25.0))
    }

    #[test]
    fn skat_pin_geometry() {
        let s = PinFinSink::skat_default();
        assert_eq!(s.columns(), 7);
        assert_eq!(s.rows(), 7);
        assert_eq!(s.pin_count(), 49);
        assert!(s.pin_area().square_meters() > s.base_area().square_meters());
    }

    #[test]
    fn pin_max_velocity_accelerates_flow() {
        let s = PinFinSink::skat_default();
        let v = s.max_velocity(Velocity::from_meters_per_second(0.4));
        assert!((v.meters_per_second() - 0.8).abs() < 1e-12); // pitch/(pitch-d) = 2
    }

    #[test]
    fn fin_efficiency_bounds() {
        let s = PinFinSink::skat_default();
        for h in [10.0, 100.0, 1000.0, 10_000.0] {
            let eta = s.fin_efficiency(h);
            assert!(eta > 0.0 && eta <= 1.0, "eta({h}) = {eta}");
        }
        // efficiency decreases with h
        assert!(s.fin_efficiency(100.0) > s.fin_efficiency(5000.0));
    }

    #[test]
    fn pin_sink_resistance_small_enough_for_91_w() {
        // SKAT design point: 91 W per FPGA, oil at <= 30 °C, junction <= 55 °C.
        // The sink alone must stay well under (55-30)/91 = 0.27 K/W.
        let r =
            PinFinSink::skat_default().resistance(&oil30(), Velocity::from_meters_per_second(0.4));
        assert!(r.kelvin_per_watt() < 0.2, "R_sink = {r}");
        assert!(r.kelvin_per_watt() > 0.005);
    }

    #[test]
    fn plate_fin_air_tower_plausible() {
        // A 45x45x40 mm tower in a 3 m/s airflow: expect 0.2..1.5 K/W.
        let r = PlateFinSink::air_tower_default()
            .resistance(&air25(), Velocity::from_meters_per_second(3.0));
        assert!(
            r.kelvin_per_watt() > 0.1 && r.kelvin_per_watt() < 1.5,
            "R = {r}"
        );
    }

    #[test]
    fn more_flow_means_less_resistance() {
        let s = PinFinSink::skat_default();
        let slow = s.resistance(&oil30(), Velocity::from_meters_per_second(0.1));
        let fast = s.resistance(&oil30(), Velocity::from_meters_per_second(1.0));
        assert!(fast.kelvin_per_watt() < slow.kelvin_per_watt());
    }

    #[test]
    fn copper_beats_aluminum() {
        let mut al = PinFinSink::skat_default();
        al.material = SinkMaterial::Aluminum;
        let cu = PinFinSink::skat_default();
        let v = Velocity::from_meters_per_second(0.4);
        assert!(
            cu.resistance(&oil30(), v).kelvin_per_watt()
                <= al.resistance(&oil30(), v).kelvin_per_watt()
        );
    }

    #[test]
    fn bare_plate_is_worst() {
        let v = Velocity::from_meters_per_second(0.4);
        let bare = BarePlate {
            area: Length::millimeters(42.5) * Length::millimeters(42.5),
            length: Length::millimeters(42.5),
        };
        let r_bare = bare.resistance(&oil30(), v).kelvin_per_watt();
        let r_pin = PinFinSink::skat_default()
            .resistance(&oil30(), v)
            .kelvin_per_watt();
        assert!(r_bare > 3.0 * r_pin);
    }

    #[test]
    fn sink_heights_for_packing() {
        assert_eq!(
            HeatSink::PinFin(PinFinSink::skat_default()).height(),
            Length::millimeters(12.0)
        );
        assert_eq!(
            HeatSink::PlateFin(PlateFinSink::air_tower_default()).height(),
            Length::millimeters(40.0)
        );
    }

    #[test]
    fn plate_fin_channel_geometry() {
        let s = PlateFinSink::air_tower_default();
        // 18 fins x 0.8 mm = 14.4 mm of metal in 45 mm width
        let gap = s.channel_width().as_millimeters();
        assert!((gap - (45.0 - 14.4) / 18.0).abs() < 1e-9);
        assert!(s.fin_area().square_meters() > 10.0 * s.base_area().square_meters());
    }
}
