//! Thermal modeling substrate for immersion-cooled reconfigurable systems.
//!
//! This crate provides the heat-path physics the paper's prototypes were
//! measured against:
//!
//! - [`ThermalNetwork`] — lumped thermal resistance networks with named
//!   nodes, boundary temperatures and heat sources, solved to steady state
//!   by dense elimination ([`ThermalNetwork::solve_steady`]) or integrated
//!   in time with per-node capacitances
//!   ([`ThermalNetwork::solve_transient`]).
//! - [`HeatSink`] — bare-lid, plate-fin and the paper's solder **pin-fin
//!   turbulator** sink geometries, turning coolant state + velocity into a
//!   sink thermal resistance via the `rcs-fluids` correlations.
//! - [`ThermalInterface`] — thermal interface materials including the §2
//!   washout-degradation model for ordinary paste immersed in oil, and the
//!   SRC-designed washout-proof interface.
//! - [`PlateHeatExchanger`] — ε-NTU counterflow/parallel plate exchanger
//!   (the heat-exchange section of a SKAT computational module), with an
//!   LMTD cross-check.
//! - [`Chiller`] — the external industrial chiller supplying secondary
//!   cooling water.
//! - [`ChipStack`] — the junction→case→TIM→sink→coolant path of one FPGA,
//!   composing the above into a per-chip resistance.
//!
//! # Examples
//!
//! A single 91 W FPGA in 30 °C oil through a pin-fin sink:
//!
//! ```
//! use rcs_fluids::Coolant;
//! use rcs_thermal::{ChipStack, HeatSink, PinFinSink, ThermalInterface, TimMaterial};
//! use rcs_units::{Celsius, Length, Power, ThermalResistance, Velocity};
//!
//! let stack = ChipStack::new(
//!     ThermalResistance::from_kelvin_per_watt(0.09),
//!     ThermalInterface::new(TimMaterial::SrcDesigned,
//!                           Length::millimeters(0.05),
//!                           Length::millimeters(42.5) * Length::millimeters(42.5)),
//!     HeatSink::PinFin(PinFinSink::skat_default()),
//! );
//! let oil = Coolant::src_dielectric().state(Celsius::new(30.0));
//! let tj = stack.junction_temperature(
//!     rcs_units::Power::from_watts(91.0), &oil,
//!     Velocity::from_meters_per_second(0.4), Celsius::new(30.0));
//! assert!(tj < Celsius::new(60.0));
//! ```

#![warn(missing_docs)]

mod chiller;
mod error;
mod exchanger;
mod network;
mod sink;
mod stack;
mod tim;
mod transient;

pub use chiller::Chiller;
pub use error::ThermalError;
pub use exchanger::{lmtd, FlowArrangement, HxOutcome, PlateHeatExchanger};
pub use network::{NodeId, ResistorId, SteadySolution, ThermalNetwork};
pub use sink::{BarePlate, HeatSink, PinFinSink, PlateFinSink, SinkMaterial};
pub use stack::ChipStack;
pub use tim::{ThermalInterface, TimAging, TimMaterial};
pub use transient::{TransientSession, TransientTrace, TRANSIENT_SNAPSHOT_KIND};
