//! Transient integration of thermal networks with nodal capacitances.
//!
//! The integration loop itself lives on the `rcs-kernel` stepping
//! kernel: [`TransientSession`] owns the integrator state, advances it
//! one [`rcs_kernel::Clock`] tick at a time, and can be checkpointed to
//! bytes and resumed with bitwise-identical results. The
//! [`ThermalNetwork::solve_transient`] family is a thin
//! run-to-completion wrapper over a session, so the public API (and
//! every golden number it produces) is unchanged.

use rcs_kernel::{Clock, SinkState, SnapReader, SnapWriter, SnapshotError};
use rcs_numeric::ode::{rk4_step, Rk4Scratch};
use rcs_obs::span::SpanSink;
use rcs_obs::trace::TraceRecorder;
use rcs_obs::Registry;
use rcs_units::{Celsius, Seconds};

use crate::error::ThermalError;
use crate::network::{NodeId, NodeKind, ThermalNetwork};

/// Snapshot kind tag for [`TransientSession`] checkpoints.
pub const TRANSIENT_SNAPSHOT_KIND: &str = "thermal.transient";

/// Time series produced by [`ThermalNetwork::solve_transient`]: node
/// temperatures sampled after every integration step.
#[derive(Debug, Clone)]
pub struct TransientTrace {
    times: Vec<Seconds>,
    /// `temperatures[sample][node]`
    temperatures: Vec<Vec<Celsius>>,
}

impl TransientTrace {
    /// Sample times, starting at zero.
    #[must_use]
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Temperature of `node` at sample `sample`, or `None` if either the
    /// sample index or the node id is out of range — the checked
    /// counterpart of [`TransientTrace::temperature`].
    #[must_use]
    pub fn get(&self, sample: usize, node: NodeId) -> Option<Celsius> {
        self.temperatures.get(sample)?.get(node.0).copied()
    }

    /// Temperature of `node` at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if the sample index or node id is out of range; use
    /// [`TransientTrace::get`] to handle that case.
    #[must_use]
    pub fn temperature(&self, i: usize, node: NodeId) -> Celsius {
        self.get(i, node)
            .expect("sample index and node id in range")
    }

    /// Final temperature of `node`, or `None` on an empty trace or a
    /// foreign node id.
    #[must_use]
    pub fn last(&self, node: NodeId) -> Option<Celsius> {
        self.get(self.temperatures.len().checked_sub(1)?, node)
    }

    /// Final temperature of `node`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace or foreign node id; use
    /// [`TransientTrace::last`] to handle that case.
    #[must_use]
    pub fn final_temperature(&self, node: NodeId) -> Celsius {
        self.last(node).expect("non-empty trace and known node id")
    }

    /// The full time series of one node; empty for a foreign node id.
    #[must_use]
    pub fn series(&self, node: NodeId) -> Vec<(Seconds, Celsius)> {
        self.times
            .iter()
            .zip(&self.temperatures)
            .filter_map(|(&t, temps)| Some((t, *temps.get(node.0)?)))
            .collect()
    }

    /// Time at which `node` first reaches within `tolerance` kelvins of
    /// its final value and stays there, i.e. the settling time; `None`
    /// on an empty trace or foreign node id.
    #[must_use]
    pub fn settling_time(&self, node: NodeId, tolerance_k: f64) -> Option<Seconds> {
        let target = self.last(node)?.degrees();
        let mut settled_at = *self.times.last()?;
        for i in (0..self.len()).rev() {
            if (self.get(i, node)?.degrees() - target).abs() > tolerance_k {
                break;
            }
            settled_at = self.times[i];
        }
        Some(settled_at)
    }
}

impl ThermalNetwork {
    /// Integrates the network in time from a uniform initial temperature.
    ///
    /// Every internal node must carry a heat capacitance
    /// (see [`ThermalNetwork::add_node_with_capacitance`]); boundary nodes
    /// hold their imposed temperatures. Heat sources are constant over the
    /// window; chain multiple calls for step changes.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::MissingCapacitance`] if any internal node has
    /// no capacitance, and [`ThermalError::NonPositiveParameter`] for a
    /// non-positive duration or step.
    pub fn solve_transient(
        &self,
        initial: Celsius,
        duration: Seconds,
        max_step: Seconds,
    ) -> Result<TransientTrace, ThermalError> {
        self.solve_transient_observed(initial, duration, max_step, Registry::disabled())
    }

    /// [`ThermalNetwork::solve_transient`] with telemetry recorded into
    /// `obs` (see [`ThermalNetwork::solve_transient_from_observed`] for
    /// the counters).
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient`].
    pub fn solve_transient_observed(
        &self,
        initial: Celsius,
        duration: Seconds,
        max_step: Seconds,
        obs: &Registry,
    ) -> Result<TransientTrace, ThermalError> {
        let initial_temps = self.uniform_initial(initial);
        self.solve_transient_from_observed(&initial_temps, duration, max_step, obs)
    }

    /// The per-node initial state of a uniform cold start: boundary
    /// nodes at their fixed temperatures, every internal node at
    /// `initial`. This is the state [`ThermalNetwork::solve_transient`]
    /// starts from; exposed so resumable callers (e.g. warm-up
    /// sessions) can seed a [`TransientSession`] identically.
    #[must_use]
    pub fn uniform_initial(&self, initial: Celsius) -> Vec<Celsius> {
        self.nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Boundary { temperature } => temperature,
                NodeKind::Internal { .. } => initial,
            })
            .collect()
    }

    /// Integrates the network from an explicit per-node initial state
    /// (e.g. the final sample of a previous window, enabling step-change
    /// experiments such as pump-failure transients).
    ///
    /// # Errors
    ///
    /// As [`ThermalNetwork::solve_transient`], plus a dimension check on
    /// `initial`.
    pub fn solve_transient_from(
        &self,
        initial: &[Celsius],
        duration: Seconds,
        max_step: Seconds,
    ) -> Result<TransientTrace, ThermalError> {
        self.solve_transient_from_observed(initial, duration, max_step, Registry::disabled())
    }

    /// [`ThermalNetwork::solve_transient_from`] with telemetry recorded
    /// into `obs` — all golden-channel integers:
    ///
    /// - `thermal.transient.calls` / `.errors` counters;
    /// - `thermal.transient.steps` — integration samples produced (a
    ///   function of duration and step size only);
    /// - `thermal.transient.nodes` histogram of network size.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient_from`].
    pub fn solve_transient_from_observed(
        &self,
        initial: &[Celsius],
        duration: Seconds,
        max_step: Seconds,
        obs: &Registry,
    ) -> Result<TransientTrace, ThermalError> {
        obs.inc("thermal.transient.calls");
        match TransientSession::new(self, initial, duration, max_step) {
            Ok(mut session) => {
                while session.step(self) {}
                Ok(session.finish_observed(self, obs))
            }
            Err(e) => {
                obs.inc("thermal.transient.errors");
                Err(e)
            }
        }
    }

    /// [`ThermalNetwork::solve_transient_observed`] plus trace
    /// recording: on success every node's temperature series is pushed
    /// into the channel `thermal.<node name>` of `trace` (bounded — long
    /// transients are decimated deterministically).
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient`].
    pub fn solve_transient_traced(
        &self,
        initial: Celsius,
        duration: Seconds,
        max_step: Seconds,
        obs: &Registry,
        trace: &rcs_obs::trace::TraceRecorder,
    ) -> Result<TransientTrace, ThermalError> {
        let result = self.solve_transient_observed(initial, duration, max_step, obs);
        if let Ok(t) = &result {
            if trace.is_enabled() {
                for (node, data) in self.nodes.iter().enumerate() {
                    let channel = trace.channel(
                        &format!("thermal.{}", data.name),
                        rcs_obs::trace::ChannelKind::Temperature,
                    );
                    for (time, temp) in t.series(NodeId(node)) {
                        trace.record(channel, time.seconds(), temp.degrees());
                    }
                }
            }
        }
        result
    }
}

/// Derived integrator structure, rebuilt from the network on resume —
/// pure functions of the [`ThermalNetwork`], so they are not part of
/// the checkpointed state.
#[derive(Debug)]
struct TransientEnv {
    /// Node indices of the internal (capacitive) nodes, in node order.
    internal: Vec<usize>,
    /// Heat capacitance per internal row, J/K.
    capacitance: Vec<f64>,
    /// node index → internal row.
    index_of: std::collections::HashMap<usize, usize>,
    scratch: Rk4Scratch,
}

impl TransientEnv {
    fn build(net: &ThermalNetwork) -> Result<Self, ThermalError> {
        let internal: Vec<usize> = net
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Internal { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut capacitance = vec![0.0; internal.len()];
        for (row, &node) in internal.iter().enumerate() {
            match net.nodes[node].kind {
                NodeKind::Internal {
                    capacitance_j_per_k: Some(c),
                } if c > 0.0 => {
                    capacitance[row] = c;
                }
                _ => {
                    return Err(ThermalError::MissingCapacitance {
                        node: net.nodes[node].name.clone(),
                    })
                }
            }
        }
        let index_of: std::collections::HashMap<usize, usize> = internal
            .iter()
            .enumerate()
            .map(|(row, &node)| (node, row))
            .collect();
        let scratch = Rk4Scratch::new(internal.len());
        Ok(Self {
            internal,
            capacitance,
            index_of,
            scratch,
        })
    }
}

/// A resumable transient integration: the thermal network's RK4 loop
/// hoisted onto the `rcs-kernel` stepping kernel.
///
/// The session owns everything the loop mutates — the internal-node
/// state vector, the accumulated sample trace and the kernel
/// [`Clock`] — while the network itself is passed into every call as
/// the immutable environment. [`TransientSession::checkpoint`] seals
/// the mutable state (plus the observability sinks) into versioned
/// bytes; [`TransientSession::resume`] reconstructs a session that
/// finishes **bitwise** identically to one that was never interrupted.
#[derive(Debug)]
pub struct TransientSession {
    clock: Clock,
    /// Internal-node temperatures, °C, in internal-row order.
    state: Vec<f64>,
    /// Per-node observation baseline: boundary temperatures for
    /// boundary nodes, the initial temperature for internal ones
    /// (overwritten by `state` in every sample).
    boundary_temp: Vec<f64>,
    times: Vec<Seconds>,
    temperatures: Vec<Vec<Celsius>>,
    env: TransientEnv,
}

impl TransientSession {
    /// Validates the problem and records the initial sample, exactly as
    /// the uninterrupted solver does before its first step.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient_from`].
    pub fn new(
        net: &ThermalNetwork,
        initial: &[Celsius],
        duration: Seconds,
        max_step: Seconds,
    ) -> Result<Self, ThermalError> {
        if duration.seconds() < 0.0 || max_step.seconds() <= 0.0 {
            return Err(ThermalError::NonPositiveParameter {
                parameter: "duration/step",
            });
        }
        if initial.len() != net.nodes.len() {
            return Err(ThermalError::UnknownNode {
                index: initial.len(),
            });
        }
        let env = TransientEnv::build(net)?;
        let state: Vec<f64> = env
            .internal
            .iter()
            .map(|&node| initial[node].degrees())
            .collect();
        let boundary_temp: Vec<f64> = net
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match n.kind {
                NodeKind::Boundary { temperature } => temperature.degrees(),
                NodeKind::Internal { .. } => initial[i].degrees(),
            })
            .collect();

        // The legacy step-count arithmetic, preserved bitwise: a zero
        // span observes the initial state once and schedules nothing.
        let span = duration.seconds();
        let clock = if span == 0.0 {
            Clock::counted(0)
        } else {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let steps = (span / max_step.seconds()).ceil().max(1.0) as u64;
            #[allow(clippy::cast_precision_loss)]
            let dt = span / steps as f64;
            Clock::uniform(0.0, dt, steps)
        };

        let mut session = Self {
            clock,
            state,
            boundary_temp,
            times: Vec::new(),
            temperatures: Vec::new(),
            env,
        };
        session.observe(0.0);
        Ok(session)
    }

    fn observe(&mut self, t: f64) {
        self.times.push(Seconds::new(t));
        let mut sample: Vec<Celsius> = self
            .boundary_temp
            .iter()
            .map(|&b| Celsius::new(b))
            .collect();
        for (row, &node) in self.env.internal.iter().enumerate() {
            sample[node] = Celsius::new(self.state[row]);
        }
        self.temperatures.push(sample);
    }

    /// Advances one RK4 step. Returns `false` once the horizon is
    /// reached (the call is then a no-op).
    pub fn step(&mut self, net: &ThermalNetwork) -> bool {
        let Some(tick) = self.clock.tick() else {
            return false;
        };
        let TransientEnv {
            internal,
            capacitance,
            index_of,
            scratch,
        } = &mut self.env;
        let boundary_temp = &self.boundary_temp;
        let mut derivative = |_t: f64, y: &[f64], dy: &mut [f64]| {
            for (row, &node) in internal.iter().enumerate() {
                dy[row] = net.nodes[node].heat.watts();
            }
            for r in &net.resistors {
                let g = 1.0 / r.resistance.kelvin_per_watt();
                let ta = index_of
                    .get(&r.a.0)
                    .map_or(boundary_temp[r.a.0], |&row| y[row]);
                let tb = index_of
                    .get(&r.b.0)
                    .map_or(boundary_temp[r.b.0], |&row| y[row]);
                let q = g * (ta - tb);
                if let Some(&row) = index_of.get(&r.a.0) {
                    dy[row] -= q;
                }
                if let Some(&row) = index_of.get(&r.b.0) {
                    dy[row] += q;
                }
            }
            for (row, c) in capacitance.iter().enumerate() {
                dy[row] /= c;
            }
        };
        rk4_step(&mut self.state, tick.t, tick.dt, &mut derivative, scratch);
        let t_after = self.clock.now();
        self.observe(t_after);
        true
    }

    /// Advances at most `max_steps` steps; returns how many ran.
    pub fn run(&mut self, net: &ThermalNetwork, max_steps: u64) -> u64 {
        let mut taken = 0;
        while taken < max_steps && self.step(net) {
            taken += 1;
        }
        taken
    }

    /// `true` once the horizon is reached.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.clock.is_finished()
    }

    /// Samples produced so far (initial state included).
    #[must_use]
    pub fn samples(&self) -> usize {
        self.times.len()
    }

    /// Consumes the session, yielding the trace accumulated so far.
    #[must_use]
    pub fn into_trace(self) -> TransientTrace {
        TransientTrace {
            times: self.times,
            temperatures: self.temperatures,
        }
    }

    /// [`TransientSession::into_trace`] plus the end-of-run golden
    /// accounting the uninterrupted solver records on success:
    /// `thermal.transient.steps`, the `thermal.transient.nodes`
    /// histogram and the `thermal.ode_steps` / `thermal.ode_node_steps`
    /// work profile.
    #[must_use]
    pub fn finish_observed(self, net: &ThermalNetwork, obs: &Registry) -> TransientTrace {
        let trace = self.into_trace();
        obs.add("thermal.transient.steps", trace.len() as u64);
        obs.record_histogram(
            "thermal.transient.nodes",
            &[2, 4, 8, 16, 64],
            net.nodes.len() as u64,
        );
        // work profile: RK4 samples, and samples × nodes (the figure
        // the right-hand-side evaluation scales with)
        obs.work("thermal.ode_steps", trace.len() as u64);
        obs.work(
            "thermal.ode_node_steps",
            trace.len() as u64 * net.nodes.len() as u64,
        );
        trace
    }

    /// Seals the session — clock, state vector, accumulated samples —
    /// plus the current contents of `obs` and `trace` into versioned
    /// snapshot bytes.
    #[must_use]
    pub fn checkpoint(&self, obs: &Registry, trace: &TraceRecorder) -> Vec<u8> {
        self.checkpoint_spanned(obs, trace, SpanSink::disabled())
    }

    /// [`TransientSession::checkpoint`] that additionally seals the
    /// span sink's state — closed tree and **open stack** — so a span
    /// bracketing this session survives the checkpoint and closes on
    /// the restored sink exactly where the straight run closes it.
    #[must_use]
    pub fn checkpoint_spanned(
        &self,
        obs: &Registry,
        trace: &TraceRecorder,
        spans: &SpanSink,
    ) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.clock.write_into(&mut w);
        w.f64_slice(&self.state);
        w.f64_slice(&self.boundary_temp);
        w.count(self.times.len());
        for t in &self.times {
            w.f64(t.seconds());
        }
        for sample in &self.temperatures {
            for c in sample {
                w.f64(c.degrees());
            }
        }
        SinkState::capture_spanned(obs, trace, spans).write_into(&mut w);
        rcs_kernel::seal(TRANSIENT_SNAPSHOT_KIND, &w.into_bytes())
    }

    /// Reconstructs a session from [`TransientSession::checkpoint`]
    /// bytes, restoring the captured telemetry into the (fresh) `obs`
    /// and `trace` sinks. The resumed session finishes bitwise
    /// identically to the uninterrupted one.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on corrupted or truncated bytes, a snapshot of
    /// a different kind, or a snapshot inconsistent with `net` (node
    /// counts must match).
    pub fn resume(
        net: &ThermalNetwork,
        bytes: &[u8],
        obs: &Registry,
        trace: &TraceRecorder,
    ) -> Result<Self, SnapshotError> {
        Self::resume_spanned(net, bytes, obs, trace, SpanSink::disabled())
    }

    /// [`TransientSession::resume`] that additionally restores the
    /// sealed span tree — open stack included — into `spans`.
    ///
    /// # Errors
    ///
    /// See [`TransientSession::resume`].
    pub fn resume_spanned(
        net: &ThermalNetwork,
        bytes: &[u8],
        obs: &Registry,
        trace: &TraceRecorder,
        spans: &SpanSink,
    ) -> Result<Self, SnapshotError> {
        let payload = rcs_kernel::open(TRANSIENT_SNAPSHOT_KIND, bytes)?;
        let mut r = SnapReader::new(payload);
        let clock = Clock::read_from(&mut r)?;
        let state = r.f64_vec()?;
        let boundary_temp = r.f64_vec()?;
        let n_samples = r.count()?;
        let mut times = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            times.push(Seconds::new(r.f64()?));
        }
        let mut temperatures = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let mut sample = Vec::with_capacity(boundary_temp.len());
            for _ in 0..boundary_temp.len() {
                sample.push(Celsius::new(r.f64()?));
            }
            temperatures.push(sample);
        }
        let sinks = SinkState::read_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed(
                "trailing bytes after transient session state".to_owned(),
            ));
        }
        let env = TransientEnv::build(net)
            .map_err(|e| SnapshotError::Malformed(format!("network rejected on resume: {e}")))?;
        if state.len() != env.internal.len() || boundary_temp.len() != net.nodes.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot is for a different network: {} internal / {} total nodes in snapshot, \
                 {} / {} in the network",
                state.len(),
                boundary_temp.len(),
                env.internal.len(),
                net.nodes.len()
            )));
        }
        sinks.restore_spanned(obs, trace, spans)?;
        Ok(Self {
            clock,
            state,
            boundary_temp,
            times,
            temperatures,
            env,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcs_units::{Power, ThermalResistance};

    /// RC step response: T(t) = T_inf (1 - exp(-t/RC)) with T_inf = P*R.
    #[test]
    fn rc_step_response_matches_analytic() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 50.0); // 50 J/K
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(0.5))
            .unwrap();
        net.add_heat(j, Power::from_watts(100.0)).unwrap();

        let tau: f64 = 0.5 * 50.0; // RC = 25 s
        let trace = net
            .solve_transient(Celsius::new(0.0), Seconds::new(50.0), Seconds::new(0.05))
            .unwrap();
        let analytic = 50.0 * (1.0 - (-50.0 / tau).exp());
        let got = trace.final_temperature(j).degrees();
        assert!((got - analytic).abs() < 1e-3, "got {got}, want {analytic}");
    }

    #[test]
    fn transient_settles_to_steady_state() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node_with_capacitance("a", 10.0);
        let b = net.add_node_with_capacitance("b", 20.0);
        let amb = net.add_boundary("amb", Celsius::new(25.0));
        net.connect(a, b, ThermalResistance::from_kelvin_per_watt(0.4))
            .unwrap();
        net.connect(b, amb, ThermalResistance::from_kelvin_per_watt(0.6))
            .unwrap();
        net.add_heat(a, Power::from_watts(30.0)).unwrap();

        let steady = net.solve_steady().unwrap();
        let trace = net
            .solve_transient(Celsius::new(25.0), Seconds::new(400.0), Seconds::new(0.1))
            .unwrap();
        for node in [a, b] {
            let t_inf = steady.temperature(node).degrees();
            let t_end = trace.final_temperature(node).degrees();
            assert!((t_end - t_inf).abs() < 1e-3, "{t_end} vs {t_inf}");
        }
    }

    #[test]
    fn missing_capacitance_is_reported() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("no-cap");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(a, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        let err = net
            .solve_transient(Celsius::new(0.0), Seconds::new(1.0), Seconds::new(0.1))
            .unwrap_err();
        assert!(matches!(err, ThermalError::MissingCapacitance { node } if node == "no-cap"));
    }

    #[test]
    fn chained_windows_continue_smoothly() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 30.0);
        let amb = net.add_boundary("amb", Celsius::new(20.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        net.add_heat(j, Power::from_watts(10.0)).unwrap();

        let first = net
            .solve_transient(Celsius::new(20.0), Seconds::new(30.0), Seconds::new(0.05))
            .unwrap();
        let handoff: Vec<Celsius> = (0..net.node_count())
            .map(|i| first.temperature(first.len() - 1, crate::NodeId(i)))
            .collect();
        let second = net
            .solve_transient_from(&handoff, Seconds::new(400.0), Seconds::new(0.05))
            .unwrap();
        let steady = net.solve_steady().unwrap().temperature(j).degrees();
        assert!((second.final_temperature(j).degrees() - steady).abs() < 1e-3);
        // continuity at the seam
        assert!(
            (second.temperature(0, j).degrees() - first.final_temperature(j).degrees()).abs()
                < 1e-12
        );
    }

    #[test]
    fn settling_time_is_monotone_in_capacitance() {
        let settle = |cap: f64| {
            let mut net = ThermalNetwork::new();
            let j = net.add_node_with_capacitance("j", cap);
            let amb = net.add_boundary("amb", Celsius::new(0.0));
            net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
                .unwrap();
            net.add_heat(j, Power::from_watts(10.0)).unwrap();
            net.solve_transient(Celsius::new(0.0), Seconds::new(500.0), Seconds::new(0.1))
                .unwrap()
                .settling_time(j, 0.1)
                .unwrap()
                .seconds()
        };
        assert!(settle(40.0) > settle(10.0));
    }

    #[test]
    fn observed_transient_counts_calls_steps_and_errors() {
        let obs = Registry::new();
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 50.0);
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(0.5))
            .unwrap();
        net.add_heat(j, Power::from_watts(100.0)).unwrap();
        let trace = net
            .solve_transient_observed(
                Celsius::new(0.0),
                Seconds::new(10.0),
                Seconds::new(0.1),
                &obs,
            )
            .unwrap();
        // a bad step records an error, not steps
        let _ = net
            .solve_transient_observed(
                Celsius::new(0.0),
                Seconds::new(10.0),
                Seconds::new(0.0),
                &obs,
            )
            .unwrap_err();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("thermal.transient.calls"), 2);
        assert_eq!(snap.counter("thermal.transient.errors"), 1);
        assert_eq!(snap.counter("thermal.transient.steps"), trace.len() as u64);
        assert_eq!(
            snap.histogram("thermal.transient.nodes").unwrap().total(),
            1
        );
    }

    #[test]
    fn session_checkpoint_resume_is_bitwise_identical() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node_with_capacitance("a", 10.0);
        let b = net.add_node_with_capacitance("b", 20.0);
        let amb = net.add_boundary("amb", Celsius::new(25.0));
        net.connect(a, b, ThermalResistance::from_kelvin_per_watt(0.4))
            .unwrap();
        net.connect(b, amb, ThermalResistance::from_kelvin_per_watt(0.6))
            .unwrap();
        net.add_heat(a, Power::from_watts(30.0)).unwrap();

        let initial: Vec<Celsius> = vec![Celsius::new(25.0); net.node_count()];
        let straight = net
            .solve_transient_from(&initial, Seconds::new(40.0), Seconds::new(0.1))
            .unwrap();

        for k in [0u64, 1, 7, 399, 400] {
            let obs = Registry::new();
            let trace = rcs_obs::trace::TraceRecorder::new();
            let mut front =
                TransientSession::new(&net, &initial, Seconds::new(40.0), Seconds::new(0.1))
                    .unwrap();
            front.run(&net, k);
            let bytes = front.checkpoint(&obs, &trace);

            let obs2 = Registry::new();
            let trace2 = rcs_obs::trace::TraceRecorder::new();
            let mut back = TransientSession::resume(&net, &bytes, &obs2, &trace2).unwrap();
            while back.step(&net) {}
            let resumed = back.into_trace();

            assert_eq!(resumed.len(), straight.len(), "split at {k}");
            for i in 0..straight.len() {
                assert_eq!(
                    resumed.times[i].seconds().to_bits(),
                    straight.times[i].seconds().to_bits(),
                    "time {i}, split {k}"
                );
                for node in 0..net.node_count() {
                    assert_eq!(
                        resumed.temperatures[i][node].degrees().to_bits(),
                        straight.temperatures[i][node].degrees().to_bits(),
                        "sample {i} node {node}, split {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_session_bytes_are_a_structured_error() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 50.0);
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(0.5))
            .unwrap();
        net.add_heat(j, Power::from_watts(100.0)).unwrap();
        let initial = vec![Celsius::new(0.0); net.node_count()];
        let session =
            TransientSession::new(&net, &initial, Seconds::new(5.0), Seconds::new(0.1)).unwrap();
        let obs = Registry::new();
        let trace = rcs_obs::trace::TraceRecorder::new();
        let bytes = session.checkpoint(&obs, &trace);

        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(TransientSession::resume(&net, &corrupt, &obs, &trace).is_err());
        assert!(TransientSession::resume(&net, &bytes[..bytes.len() - 9], &obs, &trace).is_err());

        // A valid snapshot against the wrong network is rejected too.
        let mut other = ThermalNetwork::new();
        let x = other.add_node_with_capacitance("x", 1.0);
        let y = other.add_node_with_capacitance("y", 1.0);
        let oamb = other.add_boundary("amb", Celsius::new(0.0));
        other
            .connect(x, y, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        other
            .connect(y, oamb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        assert!(TransientSession::resume(&other, &bytes, &obs, &trace).is_err());
    }

    #[test]
    fn boundary_nodes_hold_their_temperature() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 5.0);
        let amb = net.add_boundary("amb", Celsius::new(33.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        let trace = net
            .solve_transient(Celsius::new(80.0), Seconds::new(10.0), Seconds::new(0.1))
            .unwrap();
        for i in 0..trace.len() {
            assert_eq!(trace.temperature(i, amb).degrees(), 33.0);
        }
        // the hot unheated node cools toward the boundary
        assert!(trace.final_temperature(j) < Celsius::new(80.0));
        assert!(trace.final_temperature(j) > Celsius::new(33.0));
    }
}
