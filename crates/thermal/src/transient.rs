//! Transient integration of thermal networks with nodal capacitances.

use rcs_obs::Registry;
use rcs_units::{Celsius, Seconds};

use crate::error::ThermalError;
use crate::network::{NodeId, NodeKind, ThermalNetwork};

/// Time series produced by [`ThermalNetwork::solve_transient`]: node
/// temperatures sampled after every integration step.
#[derive(Debug, Clone)]
pub struct TransientTrace {
    times: Vec<Seconds>,
    /// `temperatures[sample][node]`
    temperatures: Vec<Vec<Celsius>>,
}

impl TransientTrace {
    /// Sample times, starting at zero.
    #[must_use]
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Temperature of `node` at sample `sample`, or `None` if either the
    /// sample index or the node id is out of range — the checked
    /// counterpart of [`TransientTrace::temperature`].
    #[must_use]
    pub fn get(&self, sample: usize, node: NodeId) -> Option<Celsius> {
        self.temperatures.get(sample)?.get(node.0).copied()
    }

    /// Temperature of `node` at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if the sample index or node id is out of range; use
    /// [`TransientTrace::get`] to handle that case.
    #[must_use]
    pub fn temperature(&self, i: usize, node: NodeId) -> Celsius {
        self.get(i, node)
            .expect("sample index and node id in range")
    }

    /// Final temperature of `node`, or `None` on an empty trace or a
    /// foreign node id.
    #[must_use]
    pub fn last(&self, node: NodeId) -> Option<Celsius> {
        self.get(self.temperatures.len().checked_sub(1)?, node)
    }

    /// Final temperature of `node`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace or foreign node id; use
    /// [`TransientTrace::last`] to handle that case.
    #[must_use]
    pub fn final_temperature(&self, node: NodeId) -> Celsius {
        self.last(node).expect("non-empty trace and known node id")
    }

    /// The full time series of one node; empty for a foreign node id.
    #[must_use]
    pub fn series(&self, node: NodeId) -> Vec<(Seconds, Celsius)> {
        self.times
            .iter()
            .zip(&self.temperatures)
            .filter_map(|(&t, temps)| Some((t, *temps.get(node.0)?)))
            .collect()
    }

    /// Time at which `node` first reaches within `tolerance` kelvins of
    /// its final value and stays there, i.e. the settling time; `None`
    /// on an empty trace or foreign node id.
    #[must_use]
    pub fn settling_time(&self, node: NodeId, tolerance_k: f64) -> Option<Seconds> {
        let target = self.last(node)?.degrees();
        let mut settled_at = *self.times.last()?;
        for i in (0..self.len()).rev() {
            if (self.get(i, node)?.degrees() - target).abs() > tolerance_k {
                break;
            }
            settled_at = self.times[i];
        }
        Some(settled_at)
    }
}

impl ThermalNetwork {
    /// Integrates the network in time from a uniform initial temperature.
    ///
    /// Every internal node must carry a heat capacitance
    /// (see [`ThermalNetwork::add_node_with_capacitance`]); boundary nodes
    /// hold their imposed temperatures. Heat sources are constant over the
    /// window; chain multiple calls for step changes.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::MissingCapacitance`] if any internal node has
    /// no capacitance, and [`ThermalError::NonPositiveParameter`] for a
    /// non-positive duration or step.
    pub fn solve_transient(
        &self,
        initial: Celsius,
        duration: Seconds,
        max_step: Seconds,
    ) -> Result<TransientTrace, ThermalError> {
        self.solve_transient_observed(initial, duration, max_step, Registry::disabled())
    }

    /// [`ThermalNetwork::solve_transient`] with telemetry recorded into
    /// `obs` (see [`ThermalNetwork::solve_transient_from_observed`] for
    /// the counters).
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient`].
    pub fn solve_transient_observed(
        &self,
        initial: Celsius,
        duration: Seconds,
        max_step: Seconds,
        obs: &Registry,
    ) -> Result<TransientTrace, ThermalError> {
        let initial_temps: Vec<Celsius> = self
            .nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Boundary { temperature } => temperature,
                NodeKind::Internal { .. } => initial,
            })
            .collect();
        self.solve_transient_from_observed(&initial_temps, duration, max_step, obs)
    }

    /// Integrates the network from an explicit per-node initial state
    /// (e.g. the final sample of a previous window, enabling step-change
    /// experiments such as pump-failure transients).
    ///
    /// # Errors
    ///
    /// As [`ThermalNetwork::solve_transient`], plus a dimension check on
    /// `initial`.
    pub fn solve_transient_from(
        &self,
        initial: &[Celsius],
        duration: Seconds,
        max_step: Seconds,
    ) -> Result<TransientTrace, ThermalError> {
        self.solve_transient_from_observed(initial, duration, max_step, Registry::disabled())
    }

    /// [`ThermalNetwork::solve_transient_from`] with telemetry recorded
    /// into `obs` — all golden-channel integers:
    ///
    /// - `thermal.transient.calls` / `.errors` counters;
    /// - `thermal.transient.steps` — integration samples produced (a
    ///   function of duration and step size only);
    /// - `thermal.transient.nodes` histogram of network size.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient_from`].
    pub fn solve_transient_from_observed(
        &self,
        initial: &[Celsius],
        duration: Seconds,
        max_step: Seconds,
        obs: &Registry,
    ) -> Result<TransientTrace, ThermalError> {
        obs.inc("thermal.transient.calls");
        let result = self.transient_inner(initial, duration, max_step);
        match &result {
            Ok(trace) => {
                obs.add("thermal.transient.steps", trace.len() as u64);
                obs.record_histogram(
                    "thermal.transient.nodes",
                    &[2, 4, 8, 16, 64],
                    self.nodes.len() as u64,
                );
                // work profile: RK4 samples, and samples × nodes (the
                // figure the right-hand-side evaluation scales with)
                obs.work("thermal.ode_steps", trace.len() as u64);
                obs.work(
                    "thermal.ode_node_steps",
                    trace.len() as u64 * self.nodes.len() as u64,
                );
            }
            Err(_) => obs.inc("thermal.transient.errors"),
        }
        result
    }

    /// [`ThermalNetwork::solve_transient_observed`] plus trace
    /// recording: on success every node's temperature series is pushed
    /// into the channel `thermal.<node name>` of `trace` (bounded — long
    /// transients are decimated deterministically).
    ///
    /// # Errors
    ///
    /// Same contract as [`ThermalNetwork::solve_transient`].
    pub fn solve_transient_traced(
        &self,
        initial: Celsius,
        duration: Seconds,
        max_step: Seconds,
        obs: &Registry,
        trace: &rcs_obs::trace::TraceRecorder,
    ) -> Result<TransientTrace, ThermalError> {
        let result = self.solve_transient_observed(initial, duration, max_step, obs);
        if let Ok(t) = &result {
            if trace.is_enabled() {
                for (node, data) in self.nodes.iter().enumerate() {
                    let channel = trace.channel(
                        &format!("thermal.{}", data.name),
                        rcs_obs::trace::ChannelKind::Temperature,
                    );
                    for (time, temp) in t.series(NodeId(node)) {
                        trace.record(channel, time.seconds(), temp.degrees());
                    }
                }
            }
        }
        result
    }

    fn transient_inner(
        &self,
        initial: &[Celsius],
        duration: Seconds,
        max_step: Seconds,
    ) -> Result<TransientTrace, ThermalError> {
        if duration.seconds() < 0.0 || max_step.seconds() <= 0.0 {
            return Err(ThermalError::NonPositiveParameter {
                parameter: "duration/step",
            });
        }
        if initial.len() != self.nodes.len() {
            return Err(ThermalError::UnknownNode {
                index: initial.len(),
            });
        }

        let internal: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Internal { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut capacitance = vec![0.0; internal.len()];
        for (row, &node) in internal.iter().enumerate() {
            match self.nodes[node].kind {
                NodeKind::Internal {
                    capacitance_j_per_k: Some(c),
                } if c > 0.0 => {
                    capacitance[row] = c;
                }
                _ => {
                    return Err(ThermalError::MissingCapacitance {
                        node: self.nodes[node].name.clone(),
                    })
                }
            }
        }
        let index_of: std::collections::HashMap<usize, usize> = internal
            .iter()
            .enumerate()
            .map(|(row, &node)| (node, row))
            .collect();

        let mut state: Vec<f64> = internal
            .iter()
            .map(|&node| initial[node].degrees())
            .collect();
        let boundary_temp: Vec<f64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match n.kind {
                NodeKind::Boundary { temperature } => temperature.degrees(),
                NodeKind::Internal { .. } => initial[i].degrees(),
            })
            .collect();

        let mut times = Vec::new();
        let mut temperatures: Vec<Vec<Celsius>> = Vec::new();

        let derivative = |_t: f64, y: &[f64], dy: &mut [f64]| {
            for (row, &node) in internal.iter().enumerate() {
                dy[row] = self.nodes[node].heat.watts();
            }
            for r in &self.resistors {
                let g = 1.0 / r.resistance.kelvin_per_watt();
                let ta = index_of
                    .get(&r.a.0)
                    .map_or(boundary_temp[r.a.0], |&row| y[row]);
                let tb = index_of
                    .get(&r.b.0)
                    .map_or(boundary_temp[r.b.0], |&row| y[row]);
                let q = g * (ta - tb);
                if let Some(&row) = index_of.get(&r.a.0) {
                    dy[row] -= q;
                }
                if let Some(&row) = index_of.get(&r.b.0) {
                    dy[row] += q;
                }
            }
            for (row, c) in capacitance.iter().enumerate() {
                dy[row] /= c;
            }
        };

        rcs_numeric::ode::rk4(
            &mut state,
            0.0,
            duration.seconds(),
            max_step.seconds(),
            derivative,
            |t, y| {
                times.push(Seconds::new(t));
                let mut sample: Vec<Celsius> =
                    boundary_temp.iter().map(|&b| Celsius::new(b)).collect();
                for (row, &node) in internal.iter().enumerate() {
                    sample[node] = Celsius::new(y[row]);
                }
                temperatures.push(sample);
            },
        );

        Ok(TransientTrace {
            times,
            temperatures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcs_units::{Power, ThermalResistance};

    /// RC step response: T(t) = T_inf (1 - exp(-t/RC)) with T_inf = P*R.
    #[test]
    fn rc_step_response_matches_analytic() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 50.0); // 50 J/K
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(0.5))
            .unwrap();
        net.add_heat(j, Power::from_watts(100.0)).unwrap();

        let tau: f64 = 0.5 * 50.0; // RC = 25 s
        let trace = net
            .solve_transient(Celsius::new(0.0), Seconds::new(50.0), Seconds::new(0.05))
            .unwrap();
        let analytic = 50.0 * (1.0 - (-50.0 / tau).exp());
        let got = trace.final_temperature(j).degrees();
        assert!((got - analytic).abs() < 1e-3, "got {got}, want {analytic}");
    }

    #[test]
    fn transient_settles_to_steady_state() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node_with_capacitance("a", 10.0);
        let b = net.add_node_with_capacitance("b", 20.0);
        let amb = net.add_boundary("amb", Celsius::new(25.0));
        net.connect(a, b, ThermalResistance::from_kelvin_per_watt(0.4))
            .unwrap();
        net.connect(b, amb, ThermalResistance::from_kelvin_per_watt(0.6))
            .unwrap();
        net.add_heat(a, Power::from_watts(30.0)).unwrap();

        let steady = net.solve_steady().unwrap();
        let trace = net
            .solve_transient(Celsius::new(25.0), Seconds::new(400.0), Seconds::new(0.1))
            .unwrap();
        for node in [a, b] {
            let t_inf = steady.temperature(node).degrees();
            let t_end = trace.final_temperature(node).degrees();
            assert!((t_end - t_inf).abs() < 1e-3, "{t_end} vs {t_inf}");
        }
    }

    #[test]
    fn missing_capacitance_is_reported() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("no-cap");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(a, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        let err = net
            .solve_transient(Celsius::new(0.0), Seconds::new(1.0), Seconds::new(0.1))
            .unwrap_err();
        assert!(matches!(err, ThermalError::MissingCapacitance { node } if node == "no-cap"));
    }

    #[test]
    fn chained_windows_continue_smoothly() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 30.0);
        let amb = net.add_boundary("amb", Celsius::new(20.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        net.add_heat(j, Power::from_watts(10.0)).unwrap();

        let first = net
            .solve_transient(Celsius::new(20.0), Seconds::new(30.0), Seconds::new(0.05))
            .unwrap();
        let handoff: Vec<Celsius> = (0..net.node_count())
            .map(|i| first.temperature(first.len() - 1, crate::NodeId(i)))
            .collect();
        let second = net
            .solve_transient_from(&handoff, Seconds::new(400.0), Seconds::new(0.05))
            .unwrap();
        let steady = net.solve_steady().unwrap().temperature(j).degrees();
        assert!((second.final_temperature(j).degrees() - steady).abs() < 1e-3);
        // continuity at the seam
        assert!(
            (second.temperature(0, j).degrees() - first.final_temperature(j).degrees()).abs()
                < 1e-12
        );
    }

    #[test]
    fn settling_time_is_monotone_in_capacitance() {
        let settle = |cap: f64| {
            let mut net = ThermalNetwork::new();
            let j = net.add_node_with_capacitance("j", cap);
            let amb = net.add_boundary("amb", Celsius::new(0.0));
            net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
                .unwrap();
            net.add_heat(j, Power::from_watts(10.0)).unwrap();
            net.solve_transient(Celsius::new(0.0), Seconds::new(500.0), Seconds::new(0.1))
                .unwrap()
                .settling_time(j, 0.1)
                .unwrap()
                .seconds()
        };
        assert!(settle(40.0) > settle(10.0));
    }

    #[test]
    fn observed_transient_counts_calls_steps_and_errors() {
        let obs = Registry::new();
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 50.0);
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(0.5))
            .unwrap();
        net.add_heat(j, Power::from_watts(100.0)).unwrap();
        let trace = net
            .solve_transient_observed(
                Celsius::new(0.0),
                Seconds::new(10.0),
                Seconds::new(0.1),
                &obs,
            )
            .unwrap();
        // a bad step records an error, not steps
        let _ = net
            .solve_transient_observed(
                Celsius::new(0.0),
                Seconds::new(10.0),
                Seconds::new(0.0),
                &obs,
            )
            .unwrap_err();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("thermal.transient.calls"), 2);
        assert_eq!(snap.counter("thermal.transient.errors"), 1);
        assert_eq!(snap.counter("thermal.transient.steps"), trace.len() as u64);
        assert_eq!(
            snap.histogram("thermal.transient.nodes").unwrap().total(),
            1
        );
    }

    #[test]
    fn boundary_nodes_hold_their_temperature() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node_with_capacitance("j", 5.0);
        let amb = net.add_boundary("amb", Celsius::new(33.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        let trace = net
            .solve_transient(Celsius::new(80.0), Seconds::new(10.0), Seconds::new(0.1))
            .unwrap();
        for i in 0..trace.len() {
            assert_eq!(trace.temperature(i, amb).degrees(), 33.0);
        }
        // the hot unheated node cools toward the boundary
        assert!(trace.final_temperature(j) < Celsius::new(80.0));
        assert!(trace.final_temperature(j) > Celsius::new(33.0));
    }
}
