//! Plate heat exchangers via the effectiveness-NTU method.
//!
//! The paper's heat-exchange section couples the module-internal oil loop
//! to the external chilled-water loop through "a plate heat exchanger in
//! which the first and the second loops are separated" (§3). SRC's research
//! found "the most suitable design of the heat exchanger is a plate-type
//! one designed for cooling mineral oil in hydraulic systems of industrial
//! equipment" (§2).

use rcs_units::{Celsius, Power, TempDelta, ThermalCapacityRate};

/// Flow arrangement of the exchanger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowArrangement {
    /// Counterflow: the highest effectiveness for a given NTU.
    Counterflow,
    /// Parallel flow: both streams enter on the same side.
    ParallelFlow,
}

/// Outcome of a heat-exchanger solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HxOutcome {
    /// Hot-side outlet temperature.
    pub hot_out: Celsius,
    /// Cold-side outlet temperature.
    pub cold_out: Celsius,
    /// Heat duty transferred from hot to cold.
    pub duty: Power,
    /// Achieved effectiveness in `[0, 1]`.
    pub effectiveness: f64,
}

/// A plate heat exchanger characterized by its overall conductance UA.
///
/// # Examples
///
/// Oil at 35 °C rejecting heat to 20 °C chiller water:
///
/// ```
/// use rcs_thermal::{FlowArrangement, PlateHeatExchanger};
/// use rcs_units::{Celsius, ThermalCapacityRate};
///
/// let hx = PlateHeatExchanger::new(
///     ThermalCapacityRate::new(2500.0), FlowArrangement::Counterflow);
/// let out = hx.outlet_temperatures(
///     Celsius::new(35.0), ThermalCapacityRate::new(3000.0),
///     Celsius::new(20.0), ThermalCapacityRate::new(4000.0));
/// assert!(out.duty.watts() > 0.0);
/// assert!(out.hot_out < Celsius::new(35.0));
/// assert!(out.cold_out > Celsius::new(20.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateHeatExchanger {
    ua: ThermalCapacityRate,
    arrangement: FlowArrangement,
}

impl PlateHeatExchanger {
    /// Creates an exchanger from its overall conductance and arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `ua` is not positive.
    #[must_use]
    pub fn new(ua: ThermalCapacityRate, arrangement: FlowArrangement) -> Self {
        assert!(ua.watts_per_kelvin() > 0.0, "UA must be positive");
        Self { ua, arrangement }
    }

    /// Builds the UA of a gasketed plate stack from per-side film
    /// coefficients (W/(m²·K)), plate area (m²), count, thickness and
    /// conductivity — `1/UA = 1/(h_h·A) + t/(k·A) + 1/(h_c·A)` over the
    /// total effective area.
    #[must_use]
    pub fn from_plates(
        plate_count: usize,
        plate_area_m2: f64,
        h_hot: f64,
        h_cold: f64,
        plate_thickness_m: f64,
        plate_conductivity: f64,
        arrangement: FlowArrangement,
    ) -> Self {
        let area = plate_area_m2 * plate_count.max(1) as f64;
        let r = 1.0 / (h_hot * area)
            + plate_thickness_m / (plate_conductivity * area)
            + 1.0 / (h_cold * area);
        Self::new(ThermalCapacityRate::new(1.0 / r), arrangement)
    }

    /// Overall conductance.
    #[must_use]
    pub fn ua(&self) -> ThermalCapacityRate {
        self.ua
    }

    /// A fouled copy of this exchanger: the given fouling resistance
    /// (K/W) is added in series with the clean surface, so
    /// `UA' = 1 / (1/UA + R_f)`.
    ///
    /// This is the fault-injection hook for fouling drift — scale
    /// deposits on the water side and varnish on the oil side grow a
    /// resistance on top of the clean plate stack. Negative resistances
    /// are clamped to zero (an exchanger cannot be cleaner than clean).
    #[must_use]
    pub fn with_fouling(&self, fouling_resistance_k_per_w: f64) -> Self {
        let r_clean = 1.0 / self.ua.watts_per_kelvin();
        Self {
            ua: ThermalCapacityRate::new(1.0 / (r_clean + fouling_resistance_k_per_w.max(0.0))),
            arrangement: self.arrangement,
        }
    }

    /// Flow arrangement.
    #[must_use]
    pub fn arrangement(&self) -> FlowArrangement {
        self.arrangement
    }

    /// Effectiveness for the given capacity rates (ε-NTU method).
    #[must_use]
    pub fn effectiveness(&self, hot: ThermalCapacityRate, cold: ThermalCapacityRate) -> f64 {
        let c_min = hot.watts_per_kelvin().min(cold.watts_per_kelvin());
        let c_max = hot.watts_per_kelvin().max(cold.watts_per_kelvin());
        if c_min <= 0.0 {
            return 0.0;
        }
        let cr = c_min / c_max;
        let ntu = self.ua.watts_per_kelvin() / c_min;
        match self.arrangement {
            FlowArrangement::Counterflow => {
                if (cr - 1.0).abs() < 1e-9 {
                    ntu / (1.0 + ntu)
                } else {
                    let e = (-ntu * (1.0 - cr)).exp();
                    (1.0 - e) / (1.0 - cr * e)
                }
            }
            FlowArrangement::ParallelFlow => (1.0 - (-ntu * (1.0 + cr)).exp()) / (1.0 + cr),
        }
    }

    /// Solves outlet temperatures and duty for the given inlets.
    #[must_use]
    pub fn outlet_temperatures(
        &self,
        hot_in: Celsius,
        hot_rate: ThermalCapacityRate,
        cold_in: Celsius,
        cold_rate: ThermalCapacityRate,
    ) -> HxOutcome {
        let eps = self.effectiveness(hot_rate, cold_rate);
        let c_min = ThermalCapacityRate::new(
            hot_rate
                .watts_per_kelvin()
                .min(cold_rate.watts_per_kelvin()),
        );
        let q_max = c_min * (hot_in - cold_in);
        let duty = Power::from_watts(q_max.watts() * eps);
        HxOutcome {
            hot_out: hot_in - duty / hot_rate,
            cold_out: cold_in + duty / cold_rate,
            duty,
            effectiveness: eps,
        }
    }
}

/// Log-mean temperature difference for the given terminal temperatures.
///
/// Used as a cross-check on the ε-NTU solution: `duty ≈ UA · LMTD`.
/// Returns zero if either temperature difference is non-positive (the
/// exchanger is pinched).
#[must_use]
pub fn lmtd(
    hot_in: Celsius,
    hot_out: Celsius,
    cold_in: Celsius,
    cold_out: Celsius,
    arrangement: FlowArrangement,
) -> TempDelta {
    let (dt1, dt2) = match arrangement {
        FlowArrangement::Counterflow => {
            ((hot_in - cold_out).kelvins(), (hot_out - cold_in).kelvins())
        }
        FlowArrangement::ParallelFlow => {
            ((hot_in - cold_in).kelvins(), (hot_out - cold_out).kelvins())
        }
    };
    if dt1 <= 0.0 || dt2 <= 0.0 {
        return TempDelta::from_kelvins(0.0);
    }
    if (dt1 - dt2).abs() < 1e-12 {
        return TempDelta::from_kelvins(dt1);
    }
    TempDelta::from_kelvins((dt1 - dt2) / (dt1 / dt2).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hx(ua: f64) -> PlateHeatExchanger {
        PlateHeatExchanger::new(ThermalCapacityRate::new(ua), FlowArrangement::Counterflow)
    }

    #[test]
    fn effectiveness_limits() {
        // NTU -> 0: eps -> 0. NTU -> inf (counterflow): eps -> 1.
        let small = hx(1e-6).effectiveness(
            ThermalCapacityRate::new(1000.0),
            ThermalCapacityRate::new(2000.0),
        );
        let large = hx(1e9).effectiveness(
            ThermalCapacityRate::new(1000.0),
            ThermalCapacityRate::new(2000.0),
        );
        assert!(small < 1e-6);
        assert!((large - 1.0).abs() < 1e-6);
    }

    #[test]
    fn balanced_counterflow_formula() {
        // Cr = 1: eps = NTU/(1+NTU); UA = C -> NTU = 1 -> eps = 0.5.
        let eps = hx(1000.0).effectiveness(
            ThermalCapacityRate::new(1000.0),
            ThermalCapacityRate::new(1000.0),
        );
        assert!((eps - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_flow_never_beats_counterflow() {
        for ua in [100.0, 1000.0, 5000.0] {
            let c = hx(ua);
            let p = PlateHeatExchanger::new(
                ThermalCapacityRate::new(ua),
                FlowArrangement::ParallelFlow,
            );
            let hot = ThermalCapacityRate::new(1500.0);
            let cold = ThermalCapacityRate::new(2500.0);
            assert!(p.effectiveness(hot, cold) <= c.effectiveness(hot, cold) + 1e-12);
        }
    }

    #[test]
    fn energy_balance_holds() {
        let out = hx(2500.0).outlet_temperatures(
            Celsius::new(35.0),
            ThermalCapacityRate::new(3000.0),
            Celsius::new(20.0),
            ThermalCapacityRate::new(4000.0),
        );
        let hot_loss = (Celsius::new(35.0) - out.hot_out).kelvins() * 3000.0;
        let cold_gain = (out.cold_out - Celsius::new(20.0)).kelvins() * 4000.0;
        assert!((hot_loss - out.duty.watts()).abs() < 1e-6);
        assert!((cold_gain - out.duty.watts()).abs() < 1e-6);
    }

    #[test]
    fn lmtd_cross_checks_entu() {
        let exchanger = hx(2500.0);
        let out = exchanger.outlet_temperatures(
            Celsius::new(35.0),
            ThermalCapacityRate::new(3000.0),
            Celsius::new(20.0),
            ThermalCapacityRate::new(4000.0),
        );
        let dt = lmtd(
            Celsius::new(35.0),
            out.hot_out,
            Celsius::new(20.0),
            out.cold_out,
            FlowArrangement::Counterflow,
        );
        let duty_lmtd = exchanger.ua().watts_per_kelvin() * dt.kelvins();
        assert!(
            (duty_lmtd - out.duty.watts()).abs() / out.duty.watts() < 1e-3,
            "LMTD duty {duty_lmtd}, eNTU duty {}",
            out.duty.watts()
        );
    }

    #[test]
    fn no_transfer_at_equal_inlets() {
        let out = hx(2500.0).outlet_temperatures(
            Celsius::new(25.0),
            ThermalCapacityRate::new(3000.0),
            Celsius::new(25.0),
            ThermalCapacityRate::new(4000.0),
        );
        assert!(out.duty.watts().abs() < 1e-9);
    }

    #[test]
    fn fouling_adds_series_resistance() {
        let clean = hx(2000.0);
        // R_f equal to the clean resistance halves the conductance
        let fouled = clean.with_fouling(1.0 / 2000.0);
        assert!((fouled.ua().watts_per_kelvin() - 1000.0).abs() < 1e-9);
        // zero fouling is the identity; negative fouling clamps to clean
        assert_eq!(clean.with_fouling(0.0), clean);
        assert_eq!(clean.with_fouling(-1.0), clean);
        // effectiveness strictly degrades
        let hot = ThermalCapacityRate::new(1500.0);
        let cold = ThermalCapacityRate::new(2500.0);
        assert!(fouled.effectiveness(hot, cold) < clean.effectiveness(hot, cold));
    }

    #[test]
    fn from_plates_builds_sane_ua() {
        let hx = PlateHeatExchanger::from_plates(
            40,     // plates
            0.05,   // m² per plate
            1200.0, // oil side
            4500.0, // water side
            0.5e-3, // 0.5 mm stainless plate
            16.0,   // stainless conductivity
            FlowArrangement::Counterflow,
        );
        let ua = hx.ua().watts_per_kelvin();
        assert!(ua > 1000.0 && ua < 4000.0, "UA = {ua}");
    }

    #[test]
    fn lmtd_equal_deltas_degenerate_case() {
        let dt = lmtd(
            Celsius::new(40.0),
            Celsius::new(30.0),
            Celsius::new(20.0),
            Celsius::new(30.0),
            FlowArrangement::Counterflow,
        );
        assert!((dt.kelvins() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pinched_exchanger_reports_zero_lmtd() {
        let dt = lmtd(
            Celsius::new(30.0),
            Celsius::new(20.0),
            Celsius::new(20.0),
            Celsius::new(35.0),
            FlowArrangement::Counterflow,
        );
        assert_eq!(dt.kelvins(), 0.0);
    }
}
