//! Lumped thermal resistance networks and their steady-state solution.

use rcs_numeric::Matrix;
use rcs_units::{Celsius, Power, ThermalResistance};

use crate::error::ThermalError;

/// Handle to a node in a [`ThermalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Handle to a resistor in a [`ThermalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResistorId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    /// Unknown temperature, solved for. Capacitance (J/K) enables transient
    /// integration.
    Internal { capacitance_j_per_k: Option<f64> },
    /// Imposed temperature.
    Boundary { temperature: Celsius },
}

#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) heat: Power,
}

#[derive(Debug, Clone)]
pub(crate) struct ResistorData {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) resistance: ThermalResistance,
}

/// A lumped thermal network: nodes connected by thermal resistances, with
/// heat sources on internal nodes and imposed temperatures on boundary
/// nodes.
///
/// # Examples
///
/// One chip dissipating into a coolant boundary through a 0.3 K/W path:
///
/// ```
/// use rcs_thermal::ThermalNetwork;
/// use rcs_units::{Celsius, Power, ThermalResistance};
///
/// let mut net = ThermalNetwork::new();
/// let junction = net.add_node("junction");
/// let coolant = net.add_boundary("coolant", Celsius::new(30.0));
/// net.connect(junction, coolant, ThermalResistance::from_kelvin_per_watt(0.3))?;
/// net.add_heat(junction, Power::from_watts(100.0))?;
///
/// let solution = net.solve_steady()?;
/// assert!((solution.temperature(junction).degrees() - 60.0).abs() < 1e-9);
/// # Ok::<(), rcs_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThermalNetwork {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) resistors: Vec<ResistorData>,
}

impl ThermalNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an internal (solved-for) node without heat capacitance.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(NodeData {
            name: name.into(),
            kind: NodeKind::Internal {
                capacitance_j_per_k: None,
            },
            heat: Power::ZERO,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds an internal node carrying a heat capacitance in J/K, enabling
    /// transient integration.
    pub fn add_node_with_capacitance(
        &mut self,
        name: impl Into<String>,
        capacitance_j_per_k: f64,
    ) -> NodeId {
        self.nodes.push(NodeData {
            name: name.into(),
            kind: NodeKind::Internal {
                capacitance_j_per_k: Some(capacitance_j_per_k),
            },
            heat: Power::ZERO,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a boundary node with an imposed temperature.
    pub fn add_boundary(&mut self, name: impl Into<String>, temperature: Celsius) -> NodeId {
        self.nodes.push(NodeData {
            name: name.into(),
            kind: NodeKind::Boundary { temperature },
            heat: Power::ZERO,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Changes the imposed temperature of a boundary node.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for a foreign id and
    /// [`ThermalError::HeatOnBoundary`]-style misuse is prevented by only
    /// accepting boundary nodes (internal nodes return `UnknownNode`).
    pub fn set_boundary_temperature(
        &mut self,
        node: NodeId,
        temperature: Celsius,
    ) -> Result<(), ThermalError> {
        let data = self
            .nodes
            .get_mut(node.0)
            .ok_or(ThermalError::UnknownNode { index: node.0 })?;
        match &mut data.kind {
            NodeKind::Boundary { temperature: t } => {
                *t = temperature;
                Ok(())
            }
            NodeKind::Internal { .. } => Err(ThermalError::UnknownNode { index: node.0 }),
        }
    }

    /// Connects two nodes with a thermal resistance.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids, self-loops and non-positive resistances.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        resistance: ThermalResistance,
    ) -> Result<ResistorId, ThermalError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(ThermalError::SelfLoop { index: a.0 });
        }
        if resistance.kelvin_per_watt() <= 0.0 {
            return Err(ThermalError::NonPositiveParameter {
                parameter: "resistance",
            });
        }
        self.resistors.push(ResistorData { a, b, resistance });
        Ok(ResistorId(self.resistors.len() - 1))
    }

    /// Replaces the resistance of an existing resistor (used by coupled
    /// solvers whose convection coefficients change between iterations).
    ///
    /// # Errors
    ///
    /// Rejects unknown resistor ids and non-positive resistances.
    pub fn set_resistance(
        &mut self,
        resistor: ResistorId,
        resistance: ThermalResistance,
    ) -> Result<(), ThermalError> {
        if resistance.kelvin_per_watt() <= 0.0 {
            return Err(ThermalError::NonPositiveParameter {
                parameter: "resistance",
            });
        }
        let r = self
            .resistors
            .get_mut(resistor.0)
            .ok_or(ThermalError::UnknownNode { index: resistor.0 })?;
        r.resistance = resistance;
        Ok(())
    }

    /// Adds heat generation to an internal node (accumulates).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::HeatOnBoundary`] if the node is a boundary.
    pub fn add_heat(&mut self, node: NodeId, power: Power) -> Result<(), ThermalError> {
        let data = self
            .nodes
            .get_mut(node.0)
            .ok_or(ThermalError::UnknownNode { index: node.0 })?;
        if matches!(data.kind, NodeKind::Boundary { .. }) {
            return Err(ThermalError::HeatOnBoundary {
                node: data.name.clone(),
            });
        }
        data.heat += power;
        Ok(())
    }

    /// Replaces the heat generation of an internal node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThermalNetwork::add_heat`].
    pub fn set_heat(&mut self, node: NodeId, power: Power) -> Result<(), ThermalError> {
        let data = self
            .nodes
            .get_mut(node.0)
            .ok_or(ThermalError::UnknownNode { index: node.0 })?;
        if matches!(data.kind, NodeKind::Boundary { .. }) {
            return Err(ThermalError::HeatOnBoundary {
                node: data.name.clone(),
            });
        }
        data.heat = power;
        Ok(())
    }

    /// Number of nodes (internal + boundary).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of resistors.
    #[must_use]
    pub fn resistor_count(&self) -> usize {
        self.resistors.len()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Total heat injected into the network.
    #[must_use]
    pub fn total_heat(&self) -> Power {
        self.nodes.iter().map(|n| n.heat).sum()
    }

    fn check_node(&self, n: NodeId) -> Result<(), ThermalError> {
        if n.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(ThermalError::UnknownNode { index: n.0 })
        }
    }

    /// Solves the steady-state temperature field.
    ///
    /// Assembles nodal conductance equations for every internal node and
    /// solves the dense linear system.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::FloatingNetwork`] when a heated component has
    /// no path to any boundary (the matrix is singular), and propagates
    /// numeric failures.
    pub fn solve_steady(&self) -> Result<SteadySolution, ThermalError> {
        let internal: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Internal { .. }))
            .map(|(i, _)| i)
            .collect();
        let index_of: std::collections::HashMap<usize, usize> = internal
            .iter()
            .enumerate()
            .map(|(row, &node)| (node, row))
            .collect();

        let n = internal.len();
        let mut temperatures: Vec<Celsius> = self
            .nodes
            .iter()
            .map(|node| match node.kind {
                NodeKind::Boundary { temperature } => temperature,
                NodeKind::Internal { .. } => Celsius::new(0.0),
            })
            .collect();

        if n > 0 {
            let mut a = Matrix::zeros(n, n);
            let mut rhs = vec![0.0; n];
            for (row, &node) in internal.iter().enumerate() {
                rhs[row] = self.nodes[node].heat.watts();
            }
            for r in &self.resistors {
                let g = 1.0 / r.resistance.kelvin_per_watt();
                let (ia, ib) = (r.a.0, r.b.0);
                match (index_of.get(&ia), index_of.get(&ib)) {
                    (Some(&ra), Some(&rb)) => {
                        a[(ra, ra)] += g;
                        a[(rb, rb)] += g;
                        a[(ra, rb)] -= g;
                        a[(rb, ra)] -= g;
                    }
                    (Some(&ra), None) => {
                        a[(ra, ra)] += g;
                        rhs[ra] += g * temperatures[ib].degrees();
                    }
                    (None, Some(&rb)) => {
                        a[(rb, rb)] += g;
                        rhs[rb] += g * temperatures[ia].degrees();
                    }
                    (None, None) => {}
                }
            }
            // Isolated internal nodes (no resistor at all) have a zero row.
            // Unheated ones are harmless — pin them to 0 °C rather than
            // failing the whole solve; heated ones are a genuine floating
            // network.
            for row in 0..n {
                if a[(row, row)] == 0.0 {
                    let only_diagonal = (0..n).all(|c| c == row || a[(row, c)] == 0.0);
                    if only_diagonal {
                        if rhs[row] != 0.0 {
                            return Err(ThermalError::FloatingNetwork);
                        }
                        a[(row, row)] = 1.0;
                    }
                }
            }
            let solved = a.solve(&rhs).map_err(|e| match e {
                rcs_numeric::NumericError::SingularMatrix { .. } => ThermalError::FloatingNetwork,
                other => ThermalError::Numeric(other),
            })?;
            for (row, &node) in internal.iter().enumerate() {
                temperatures[node] = Celsius::new(solved[row]);
            }
        }

        let flows = self
            .resistors
            .iter()
            .map(|r| (temperatures[r.a.0] - temperatures[r.b.0]) / r.resistance)
            .collect();

        Ok(SteadySolution {
            temperatures,
            flows,
            network: self.clone(),
        })
    }
}

/// Result of a steady-state solve: per-node temperatures and per-resistor
/// heat flows.
#[derive(Debug, Clone)]
pub struct SteadySolution {
    temperatures: Vec<Celsius>,
    flows: Vec<Power>,
    network: ThermalNetwork,
}

impl SteadySolution {
    /// Temperature of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the solved network.
    #[must_use]
    pub fn temperature(&self, node: NodeId) -> Celsius {
        self.temperatures[node.0]
    }

    /// Heat flow through a resistor, positive from its first to its second
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the solved network.
    #[must_use]
    pub fn flow(&self, resistor: ResistorId) -> Power {
        self.flows[resistor.0]
    }

    /// The hottest node and its temperature.
    ///
    /// Returns `None` for an empty network.
    ///
    /// # Panics
    ///
    /// Panics if any solved node temperature is non-finite — a NaN here
    /// means an upstream solver bug, and silently ranking it as
    /// "hottest" (or not) would forward garbage to the safety logic
    /// that consumes this readout.
    #[must_use]
    pub fn hottest(&self) -> Option<(NodeId, Celsius)> {
        self.temperatures
            .iter()
            .enumerate()
            .max_by(|a, b| {
                let (ta, tb) = (a.1.degrees(), b.1.degrees());
                assert!(
                    ta.is_finite() && tb.is_finite(),
                    "non-finite node temperature in solved network: \
                     node {} = {ta} C, node {} = {tb} C",
                    a.0,
                    b.0
                );
                ta.total_cmp(&tb)
            })
            .map(|(i, &t)| (NodeId(i), t))
    }

    /// Net heat absorbed by a boundary node (positive into the boundary).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the solved network.
    #[must_use]
    pub fn boundary_heat(&self, node: NodeId) -> Power {
        let mut total = Power::ZERO;
        for (r, &flow) in self.network.resistors.iter().zip(&self.flows) {
            if r.a == node {
                total -= flow;
            }
            if r.b == node {
                total += flow;
            }
        }
        total
    }

    /// Energy-balance residual: injected heat minus heat absorbed by all
    /// boundaries. Should be ~0 for a correct solve.
    #[must_use]
    pub fn energy_residual(&self) -> Power {
        let absorbed: Power = self
            .network
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Boundary { .. }))
            .map(|(i, _)| self.boundary_heat(NodeId(i)))
            .sum();
        self.network.total_heat() - absorbed
    }

    /// Iterates over `(NodeId, name, temperature)` for all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str, Celsius)> + '_ {
        self.network
            .nodes
            .iter()
            .enumerate()
            .map(move |(i, n)| (NodeId(i), n.name.as_str(), self.temperatures[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_resistor_hand_checked() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node("junction");
        let amb = net.add_boundary("ambient", Celsius::new(25.0));
        let r = net
            .connect(j, amb, ThermalResistance::from_kelvin_per_watt(0.5))
            .unwrap();
        net.add_heat(j, Power::from_watts(100.0)).unwrap();
        let s = net.solve_steady().unwrap();
        assert!((s.temperature(j).degrees() - 75.0).abs() < 1e-9);
        assert!((s.flow(r).watts() - 100.0).abs() < 1e-9);
        assert!((s.boundary_heat(amb).watts() - 100.0).abs() < 1e-9);
        assert!(s.energy_residual().watts().abs() < 1e-9);
    }

    #[test]
    fn series_chain_divides_temperature() {
        // junction -1K/W- case -1K/W- sink -1K/W- ambient(0), 10 W
        let mut net = ThermalNetwork::new();
        let j = net.add_node("j");
        let c = net.add_node("c");
        let s = net.add_node("s");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        let r = ThermalResistance::from_kelvin_per_watt(1.0);
        net.connect(j, c, r).unwrap();
        net.connect(c, s, r).unwrap();
        net.connect(s, amb, r).unwrap();
        net.add_heat(j, Power::from_watts(10.0)).unwrap();
        let sol = net.solve_steady().unwrap();
        assert!((sol.temperature(j).degrees() - 30.0).abs() < 1e-9);
        assert!((sol.temperature(c).degrees() - 20.0).abs() < 1e-9);
        assert!((sol.temperature(s).degrees() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_split_heat() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node("j");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        let r1 = net
            .connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        let r2 = net
            .connect(j, amb, ThermalResistance::from_kelvin_per_watt(3.0))
            .unwrap();
        net.add_heat(j, Power::from_watts(40.0)).unwrap();
        let s = net.solve_steady().unwrap();
        // parallel R = 0.75, T = 30; flows 30 and 10
        assert!((s.temperature(j).degrees() - 30.0).abs() < 1e-9);
        assert!((s.flow(r1).watts() - 30.0).abs() < 1e-9);
        assert!((s.flow(r2).watts() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_boundaries_superpose() {
        // hot(100) -1- mid -1- cold(0): mid should be 50
        let mut net = ThermalNetwork::new();
        let hot = net.add_boundary("hot", Celsius::new(100.0));
        let cold = net.add_boundary("cold", Celsius::new(0.0));
        let mid = net.add_node("mid");
        let r = ThermalResistance::from_kelvin_per_watt(1.0);
        net.connect(hot, mid, r).unwrap();
        net.connect(mid, cold, r).unwrap();
        let s = net.solve_steady().unwrap();
        assert!((s.temperature(mid).degrees() - 50.0).abs() < 1e-9);
        // 100 W flows in from hot boundary, out to cold boundary
        assert!((s.boundary_heat(cold).watts() - 50.0).abs() < 1e-9);
        assert!((s.boundary_heat(hot).watts() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn floating_network_is_detected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect(a, b, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        net.add_heat(a, Power::from_watts(1.0)).unwrap();
        assert_eq!(
            net.solve_steady().unwrap_err(),
            ThermalError::FloatingNetwork
        );
    }

    #[test]
    fn heat_on_boundary_rejected() {
        let mut net = ThermalNetwork::new();
        let b = net.add_boundary("amb", Celsius::new(25.0));
        assert!(matches!(
            net.add_heat(b, Power::from_watts(1.0)),
            Err(ThermalError::HeatOnBoundary { .. })
        ));
    }

    #[test]
    fn self_loop_rejected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        assert!(matches!(
            net.connect(a, a, ThermalResistance::from_kelvin_per_watt(1.0)),
            Err(ThermalError::SelfLoop { .. })
        ));
    }

    #[test]
    fn non_positive_resistance_rejected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_boundary("b", Celsius::new(0.0));
        assert!(net
            .connect(a, b, ThermalResistance::from_kelvin_per_watt(0.0))
            .is_err());
        assert!(net
            .connect(a, b, ThermalResistance::from_kelvin_per_watt(-1.0))
            .is_err());
    }

    #[test]
    fn set_resistance_updates_solution() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node("j");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        let r = net
            .connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        net.add_heat(j, Power::from_watts(10.0)).unwrap();
        assert!((net.solve_steady().unwrap().temperature(j).degrees() - 10.0).abs() < 1e-9);
        net.set_resistance(r, ThermalResistance::from_kelvin_per_watt(2.0))
            .unwrap();
        assert!((net.solve_steady().unwrap().temperature(j).degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn set_boundary_temperature_shifts_solution() {
        let mut net = ThermalNetwork::new();
        let j = net.add_node("j");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        net.connect(j, amb, ThermalResistance::from_kelvin_per_watt(1.0))
            .unwrap();
        net.add_heat(j, Power::from_watts(10.0)).unwrap();
        net.set_boundary_temperature(amb, Celsius::new(25.0))
            .unwrap();
        assert!((net.solve_steady().unwrap().temperature(j).degrees() - 35.0).abs() < 1e-9);
        // internal node can't be used as a boundary
        assert!(net.set_boundary_temperature(j, Celsius::new(1.0)).is_err());
    }

    #[test]
    fn hottest_finds_heated_node() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let amb = net.add_boundary("amb", Celsius::new(0.0));
        let r = ThermalResistance::from_kelvin_per_watt(1.0);
        net.connect(a, amb, r).unwrap();
        net.connect(b, amb, r).unwrap();
        net.add_heat(a, Power::from_watts(5.0)).unwrap();
        net.add_heat(b, Power::from_watts(50.0)).unwrap();
        let s = net.solve_steady().unwrap();
        assert_eq!(s.hottest().unwrap().0, b);
    }

    #[test]
    #[should_panic(expected = "non-finite node temperature")]
    fn hottest_rejects_non_finite_temperatures() {
        // A NaN boundary temperature flows straight into the solved
        // temperature vector; `hottest` must refuse to rank it rather
        // than silently report an arbitrary "hottest node".
        let mut net = ThermalNetwork::new();
        let _ok = net.add_boundary("ok", Celsius::new(20.0));
        let _poisoned = net.add_boundary("poisoned", Celsius::new(f64::NAN));
        let s = net.solve_steady().unwrap();
        let _ = s.hottest();
    }

    #[test]
    fn iter_reports_names() {
        let mut net = ThermalNetwork::new();
        let _ = net.add_node("chip0");
        let _ = net.add_boundary("oil", Celsius::new(30.0));
        let s = net.solve_steady().unwrap();
        let names: Vec<&str> = s.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["chip0", "oil"]);
    }
}
