//! Thermal interface materials, including immersion washout degradation.
//!
//! §2 of the paper lists as a key failing of existing immersion
//! technologies that "the thermal paste between FPGA chips and heat-sinks
//! is washed out during long-term maintenance", and §3 answers it: "SRC
//! SC & NC specialists have created an effective thermal interface ... its
//! coefficient of heat conductivity can remain permanently high."
//! [`TimMaterial`] models both: ordinary silicone paste whose filler
//! migrates into the surrounding oil over months of immersion, and the
//! SRC-designed interface that does not.

use rcs_units::{Area, Length, Seconds, ThermalResistance};

/// Exposure state used to evaluate interface aging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimAging {
    /// Cumulative service time.
    pub service_time: Seconds,
    /// `true` if the interface is immersed in circulating oil (open-loop
    /// cooling); `false` for air or cold-plate systems.
    pub immersed_in_oil: bool,
}

impl TimAging {
    /// A fresh, never-exposed interface.
    #[must_use]
    pub fn fresh() -> Self {
        Self {
            service_time: Seconds::new(0.0),
            immersed_in_oil: false,
        }
    }

    /// `months` of continuous immersed service.
    #[must_use]
    pub fn immersed_months(months: f64) -> Self {
        Self {
            service_time: Seconds::days(months * 30.44),
            immersed_in_oil: true,
        }
    }
}

/// Thermal interface material family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimMaterial {
    /// Commodity silicone-based thermal grease. Good when fresh, but its
    /// filler is soluble in mineral oil: conductivity decays over immersed
    /// months toward a residual floor.
    StandardPaste,
    /// The SRC-designed washout-proof interface (§3): slightly better than
    /// fresh paste, and stable in oil indefinitely.
    SrcDesigned,
    /// An elastomeric gap pad: washout-immune but mediocre conductivity.
    GapPad,
}

impl TimMaterial {
    /// Bulk thermal conductivity of the fresh material in W/(m·K).
    #[must_use]
    pub fn fresh_conductivity_w_per_m_k(self) -> f64 {
        match self {
            Self::StandardPaste => 3.5,
            Self::SrcDesigned => 4.0,
            Self::GapPad => 1.5,
        }
    }

    /// `true` if the material's filler washes out in circulating oil.
    #[must_use]
    pub fn is_washout_susceptible(self) -> bool {
        matches!(self, Self::StandardPaste)
    }

    /// Effective conductivity after the given aging.
    ///
    /// Susceptible materials decay exponentially with time constant
    /// ~6 months toward 25 % of fresh conductivity; immune materials (and
    /// any material not immersed) keep full conductivity.
    #[must_use]
    pub fn conductivity_after(self, aging: TimAging) -> f64 {
        let k0 = self.fresh_conductivity_w_per_m_k();
        if !aging.immersed_in_oil || !self.is_washout_susceptible() {
            return k0;
        }
        const FLOOR: f64 = 0.25;
        let tau = Seconds::days(6.0 * 30.44).seconds();
        let f = FLOOR + (1.0 - FLOOR) * (-aging.service_time.seconds() / tau).exp();
        k0 * f
    }
}

impl core::fmt::Display for TimMaterial {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Self::StandardPaste => "standard thermal paste",
            Self::SrcDesigned => "SRC washout-proof interface",
            Self::GapPad => "elastomeric gap pad",
        };
        f.write_str(name)
    }
}

/// One applied thermal interface: a material at a bond-line thickness over
/// a contact area.
///
/// # Examples
///
/// ```
/// use rcs_thermal::{ThermalInterface, TimAging, TimMaterial};
/// use rcs_units::Length;
///
/// let tim = ThermalInterface::new(
///     TimMaterial::StandardPaste,
///     Length::millimeters(0.05),
///     Length::millimeters(42.5) * Length::millimeters(42.5),
/// );
/// let fresh = tim.resistance(TimAging::fresh());
/// let aged = tim.resistance(TimAging::immersed_months(24.0));
/// assert!(aged.kelvin_per_watt() > 3.0 * fresh.kelvin_per_watt());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalInterface {
    material: TimMaterial,
    thickness: Length,
    area: Area,
}

impl ThermalInterface {
    /// Creates an interface from material, bond-line thickness and contact
    /// area.
    ///
    /// # Panics
    ///
    /// Panics if thickness or area is not positive.
    #[must_use]
    pub fn new(material: TimMaterial, thickness: Length, area: Area) -> Self {
        assert!(thickness.meters() > 0.0, "TIM thickness must be positive");
        assert!(area.square_meters() > 0.0, "TIM area must be positive");
        Self {
            material,
            thickness,
            area,
        }
    }

    /// The interface material.
    #[must_use]
    pub fn material(&self) -> TimMaterial {
        self.material
    }

    /// Bond-line thickness.
    #[must_use]
    pub fn thickness(&self) -> Length {
        self.thickness
    }

    /// Contact area.
    #[must_use]
    pub fn area(&self) -> Area {
        self.area
    }

    /// Conductive resistance `t / (k(t_age) · A)` after the given aging.
    #[must_use]
    pub fn resistance(&self, aging: TimAging) -> ThermalResistance {
        let k = self.material.conductivity_after(aging);
        ThermalResistance::from_kelvin_per_watt(
            self.thickness.meters() / (k * self.area.square_meters()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skat_area() -> Area {
        Length::millimeters(42.5) * Length::millimeters(42.5)
    }

    #[test]
    fn fresh_resistance_hand_checked() {
        let tim = ThermalInterface::new(
            TimMaterial::SrcDesigned,
            Length::millimeters(0.05),
            skat_area(),
        );
        // R = 5e-5 / (4.0 * 1.80625e-3) = 6.92e-3 K/W
        let r = tim.resistance(TimAging::fresh()).kelvin_per_watt();
        assert!((r - 6.92e-3).abs() < 1e-4, "R = {r}");
    }

    #[test]
    fn paste_washes_out_in_oil_only() {
        let m = TimMaterial::StandardPaste;
        let immersed = m.conductivity_after(TimAging::immersed_months(12.0));
        let dry = m.conductivity_after(TimAging {
            service_time: Seconds::days(365.0),
            immersed_in_oil: false,
        });
        assert!(immersed < 0.5 * m.fresh_conductivity_w_per_m_k());
        assert_eq!(dry, m.fresh_conductivity_w_per_m_k());
    }

    #[test]
    fn washout_approaches_floor_not_zero() {
        let m = TimMaterial::StandardPaste;
        let k = m.conductivity_after(TimAging::immersed_months(600.0));
        assert!((k - 0.25 * m.fresh_conductivity_w_per_m_k()).abs() < 1e-6);
    }

    #[test]
    fn src_interface_is_immune() {
        let m = TimMaterial::SrcDesigned;
        let aged = m.conductivity_after(TimAging::immersed_months(60.0));
        assert_eq!(aged, m.fresh_conductivity_w_per_m_k());
    }

    #[test]
    fn washout_is_monotone_in_time() {
        let m = TimMaterial::StandardPaste;
        let mut last = f64::INFINITY;
        for months in [0.0, 1.0, 3.0, 6.0, 12.0, 24.0, 48.0] {
            let k = m.conductivity_after(TimAging::immersed_months(months));
            assert!(k <= last);
            last = k;
        }
    }

    #[test]
    fn gap_pad_worse_than_fresh_paste_better_than_washed_out() {
        let area = skat_area();
        let t = Length::millimeters(0.05);
        let pad = ThermalInterface::new(TimMaterial::GapPad, t, area)
            .resistance(TimAging::immersed_months(24.0));
        let fresh_paste = ThermalInterface::new(TimMaterial::StandardPaste, t, area)
            .resistance(TimAging::fresh());
        let old_paste = ThermalInterface::new(TimMaterial::StandardPaste, t, area)
            .resistance(TimAging::immersed_months(24.0));
        assert!(pad.kelvin_per_watt() > fresh_paste.kelvin_per_watt());
        assert!(pad.kelvin_per_watt() < old_paste.kelvin_per_watt());
    }

    #[test]
    #[should_panic(expected = "thickness must be positive")]
    fn zero_thickness_panics() {
        let _ = ThermalInterface::new(TimMaterial::GapPad, Length::from_meters(0.0), skat_area());
    }
}
