//! Error type for the thermal solvers.

use rcs_numeric::NumericError;

/// Error returned by thermal network construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A node id does not belong to this network.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// A resistor connects a node to itself.
    SelfLoop {
        /// The node in question.
        index: usize,
    },
    /// A resistance, capacitance or other parameter was not positive.
    NonPositiveParameter {
        /// Name of the parameter.
        parameter: &'static str,
    },
    /// The network has no boundary (fixed-temperature) node reachable from
    /// some heated node, so no steady state exists.
    FloatingNetwork,
    /// Transient integration requires every internal node to carry a heat
    /// capacitance.
    MissingCapacitance {
        /// Name of the node without a capacitance.
        node: String,
    },
    /// Heat was attached to a boundary node, which is contradictory (its
    /// temperature is imposed).
    HeatOnBoundary {
        /// Name of the boundary node.
        node: String,
    },
    /// An underlying numeric kernel failed.
    Numeric(NumericError),
}

impl core::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownNode { index } => write!(f, "unknown node index {index}"),
            Self::SelfLoop { index } => write!(f, "resistor connects node {index} to itself"),
            Self::NonPositiveParameter { parameter } => {
                write!(f, "non-positive {parameter}")
            }
            Self::FloatingNetwork => {
                write!(
                    f,
                    "network has no boundary temperature; steady state is undefined"
                )
            }
            Self::MissingCapacitance { node } => {
                write!(f, "transient solve requires a capacitance on node '{node}'")
            }
            Self::HeatOnBoundary { node } => {
                write!(f, "heat source attached to boundary node '{node}'")
            }
            Self::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for ThermalError {
    fn from(e: NumericError) -> Self {
        Self::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_concise() {
        let e = ThermalError::FloatingNetwork;
        assert!(e.to_string().contains("boundary"));
        let e = ThermalError::from(NumericError::SingularMatrix { pivot: 3 });
        assert!(e.to_string().contains("pivot column 3"));
    }

    #[test]
    fn source_chains_numeric_errors() {
        use std::error::Error;
        let e = ThermalError::from(NumericError::SingularMatrix { pivot: 0 });
        assert!(e.source().is_some());
        assert!(ThermalError::FloatingNetwork.source().is_none());
    }
}
