//! Property-based tests for thermal networks: conservation, linearity,
//! and transient/steady agreement on randomized topologies.

use rcs_testkit::{check_cases, Gen};
use rcs_thermal::{ThermalNetwork, TimAging, TimMaterial};
use rcs_units::{Celsius, Power, Seconds, ThermalResistance};

/// Builds a random star-of-chains network: every heated node hangs off
/// the boundary through 1–3 series resistors.
fn star_network(
    chains: &[(f64, Vec<f64>)],
    ambient: f64,
) -> (ThermalNetwork, Vec<rcs_thermal::NodeId>) {
    let mut net = ThermalNetwork::new();
    let boundary = net.add_boundary("ambient", Celsius::new(ambient));
    let mut heated = Vec::new();
    for (i, (power, resistances)) in chains.iter().enumerate() {
        let mut prev = boundary;
        for (j, r) in resistances.iter().enumerate() {
            let node = net.add_node(format!("n{i}.{j}"));
            net.connect(node, prev, ThermalResistance::from_kelvin_per_watt(*r))
                .unwrap();
            prev = node;
        }
        net.add_heat(prev, Power::from_watts(*power)).unwrap();
        heated.push(prev);
    }
    (net, heated)
}

/// One random chain: a heat load and 1–3 series resistances.
fn chain(g: &mut Gen) -> (f64, Vec<f64>) {
    let power = g.draw(1.0..200.0f64);
    let resistances = g.vec_f64_in(0.01..2.0, 1..4);
    (power, resistances)
}

fn chains(g: &mut Gen, count: core::ops::Range<usize>) -> Vec<(f64, Vec<f64>)> {
    let n = g.draw(count);
    (0..n).map(|_| chain(g)).collect()
}

/// Whatever the topology, injected heat equals heat absorbed by the
/// boundary.
#[test]
fn energy_is_conserved() {
    check_cases("energy_is_conserved", 64, |g| {
        let chains = chains(g, 1..6);
        let ambient = g.draw(-10.0..40.0f64);
        let (net, _) = star_network(&chains, ambient);
        let s = net.solve_steady().unwrap();
        let total: f64 = chains.iter().map(|(p, _)| *p).sum();
        assert!(s.energy_residual().watts().abs() < 1e-6 * total.max(1.0));
    });
}

/// Every heated node sits above ambient, by exactly P * sum(R) for its
/// own chain (chains are independent in a star).
#[test]
fn chain_superposition() {
    check_cases("chain_superposition", 64, |g| {
        let chains = chains(g, 1..6);
        let ambient = g.draw(-10.0..40.0f64);
        let (net, heated) = star_network(&chains, ambient);
        let s = net.solve_steady().unwrap();
        for ((power, resistances), node) in chains.iter().zip(&heated) {
            let expected = ambient + power * resistances.iter().sum::<f64>();
            assert!(
                (s.temperature(*node).degrees() - expected).abs() < 1e-6,
                "node {:?}: {} vs {}",
                node,
                s.temperature(*node),
                expected
            );
        }
    });
}

/// Doubling every heat source doubles every overheat (the network is
/// linear).
#[test]
fn solution_is_linear_in_power() {
    check_cases("solution_is_linear_in_power", 64, |g| {
        let chains = chains(g, 1..5);
        let ambient = g.draw(0.0..30.0f64);
        let (net, heated) = star_network(&chains, ambient);
        let s1 = net.solve_steady().unwrap();
        let doubled: Vec<(f64, Vec<f64>)> =
            chains.iter().map(|(p, r)| (2.0 * p, r.clone())).collect();
        let (net2, heated2) = star_network(&doubled, ambient);
        let s2 = net2.solve_steady().unwrap();
        for (a, b) in heated.iter().zip(&heated2) {
            let d1 = s1.temperature(*a).degrees() - ambient;
            let d2 = s2.temperature(*b).degrees() - ambient;
            assert!((d2 - 2.0 * d1).abs() < 1e-6);
        }
    });
}

/// The transient solution settles to the steady solution for randomized
/// RC chains.
#[test]
fn transient_settles_to_steady() {
    check_cases("transient_settles_to_steady", 64, |g| {
        let power = g.draw(5.0..100.0f64);
        let r1 = g.draw(0.05..1.0f64);
        let r2 = g.draw(0.05..1.0f64);
        let c1 = g.draw(5.0..50.0f64);
        let c2 = g.draw(5.0..50.0f64);
        let mut net = ThermalNetwork::new();
        let amb = net.add_boundary("amb", Celsius::new(20.0));
        let a = net.add_node_with_capacitance("a", c1);
        let b = net.add_node_with_capacitance("b", c2);
        net.connect(a, b, ThermalResistance::from_kelvin_per_watt(r1))
            .unwrap();
        net.connect(b, amb, ThermalResistance::from_kelvin_per_watt(r2))
            .unwrap();
        net.add_heat(a, Power::from_watts(power)).unwrap();

        let steady = net.solve_steady().unwrap();
        // integrate long enough: ~12 time constants of the slowest pole
        let tau = (r1 + r2) * (c1 + c2);
        let trace = net
            .solve_transient(
                Celsius::new(20.0),
                Seconds::new(12.0 * tau),
                Seconds::new(tau / 400.0),
            )
            .unwrap();
        for node in [a, b] {
            assert!(
                (trace.final_temperature(node).degrees() - steady.temperature(node).degrees())
                    .abs()
                    < 0.05,
                "node {node:?}"
            );
        }
    });
}

/// TIM washout: resistance after any immersion time is bounded between
/// fresh and the 4x floor, monotonically.
#[test]
fn washout_bounds() {
    check_cases("washout_bounds", 64, |g| {
        let months = g.draw(0.0..240.0f64);
        let m = TimMaterial::StandardPaste;
        let k = m.conductivity_after(TimAging::immersed_months(months));
        let fresh = m.fresh_conductivity_w_per_m_k();
        assert!(k <= fresh + 1e-12);
        assert!(k >= 0.25 * fresh - 1e-12);
    });
}
