//! The design-query service: a long-running front end over the solvers.
//!
//! A designer (or a batch driver such as the `query_cli` binary) asks
//! "what does a SKAT-class module in this bath at this utilization look
//! like?" many times over a session, and most of those questions repeat.
//! This crate turns each question into a [`DesignQuery`] with a
//! *canonical encoding* — fixed field order, length-prefixed strings,
//! canonicalized float bits — hashed by the vendored
//! [`rcs_numeric::hash::Fnv1a`] into a 64-bit content address. A bounded
//! [`QueryCache`] maps that address to the solved [`DesignVerdict`]
//! (steady-state temperatures, availability, annual energy, compliance),
//! and the [`QueryEngine`] batch scheduler answers whole request lists:
//! hits are served from the cache, in-batch duplicates are coalesced,
//! and the remaining distinct misses are solved concurrently over
//! [`rcs_parallel::par_map_observed`].
//!
//! # Determinism contract
//!
//! Everything observable is a pure function of the request list and the
//! cache state — never of `RCS_THREADS`:
//!
//! - the lookup pass is sequential in request order, against the cache
//!   state at batch entry (inserts happen only after every lookup), so
//!   the hit/miss/coalesced partition is thread-independent;
//! - misses are solved in parallel but collected in first-occurrence
//!   order, and inserted into the cache in that order, so FIFO eviction
//!   follows insertion order exactly;
//! - a cached verdict is returned as stored — bit-identical to the
//!   solve that produced it — and the solvers themselves are
//!   deterministic, so a warm cache and a cold cache produce the same
//!   bytes.
//!
//! The golden `query.*` counters ([`QueryEngine::run_batch`]) and their
//! `profile.query.*` work mirrors make the cache behaviour a pinned,
//! diffable artifact of every run.
//!
//! # Examples
//!
//! ```
//! use rcs_query::{DesignQuery, QueryEngine};
//!
//! let q = DesignQuery::parse("family=skat util=0.85 trials=64 seed=7")?;
//! let mut engine = QueryEngine::new(8);
//! let obs = rcs_obs::Registry::new();
//! let verdicts = engine.run_batch(&[q.clone(), q], 1, &obs)?;
//! assert_eq!(verdicts.len(), 2);
//! assert!(verdicts[0].junction_c < 85.0);
//! // The duplicate was coalesced into one solve.
//! assert_eq!(obs.snapshot().counter("query.cache.misses"), 1);
//! # Ok::<(), rcs_query::QueryError>(())
//! ```

#![warn(missing_docs)]

pub mod e18_query_service;

use std::collections::{HashMap, VecDeque};

use rcs_cooling::{availability, risk, CoolingArchitecture, ImmersionBath};
use rcs_core::{rules, ImmersionModel};
use rcs_devices::OperatingPoint;
use rcs_fluids::Coolant;
use rcs_numeric::hash::Fnv1a;
use rcs_obs::Registry;
use rcs_platform::{presets, ComputeModule};
use rcs_units::{Power, Seconds};

/// Version tag folded into every canonical hash, so a change to the
/// encoding (new field, new scalar format) can never alias an old
/// address.
const CANON_TAG: &str = "rcs.query.v1";

/// Availability horizon every verdict is judged over, in years.
pub const HORIZON_YEARS: f64 = 3.0;

/// Errors of the query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A query spec string failed to parse.
    Parse(String),
    /// The solvers rejected the design point.
    Solve(String),
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Parse(msg) => write!(f, "query parse error: {msg}"),
            Self::Solve(msg) => write!(f, "query solve error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Device family of a query — one of the paper's module generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFamily {
    /// Virtex-6 RIGEL-2 module.
    Rigel2,
    /// Virtex-7 TAYGETA module.
    Taygeta,
    /// UltraScale SKAT module.
    Skat,
    /// UltraScale+ SKAT+ module.
    SkatPlus,
}

impl DeviceFamily {
    /// Stable canonical key (part of the hash preimage — never rename).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::Rigel2 => "rigel2",
            Self::Taygeta => "taygeta",
            Self::Skat => "skat",
            Self::SkatPlus => "skat_plus",
        }
    }

    /// The preset compute module of this family.
    #[must_use]
    pub fn module(self) -> ComputeModule {
        match self {
            Self::Rigel2 => presets::rigel2(),
            Self::Taygeta => presets::taygeta(),
            Self::Skat => presets::skat(),
            Self::SkatPlus => presets::skat_plus(),
        }
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        match s {
            "rigel2" => Ok(Self::Rigel2),
            "taygeta" => Ok(Self::Taygeta),
            "skat" => Ok(Self::Skat),
            "skat_plus" => Ok(Self::SkatPlus),
            other => Err(QueryError::Parse(format!(
                "unknown family {other:?} (expected rigel2|taygeta|skat|skat_plus)"
            ))),
        }
    }
}

/// Immersion coolant of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoolantChoice {
    /// The SRC dielectric blend (the paper's working fluid).
    SrcDielectric,
    /// MD-4,5 mineral transformer oil.
    MineralOilMd45,
}

impl CoolantChoice {
    /// Stable canonical key (part of the hash preimage — never rename).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::SrcDielectric => "src_dielectric",
            Self::MineralOilMd45 => "mineral_oil_md45",
        }
    }

    /// The fluid property model of this choice.
    #[must_use]
    pub fn coolant(self) -> Coolant {
        match self {
            Self::SrcDielectric => Coolant::src_dielectric(),
            Self::MineralOilMd45 => Coolant::mineral_oil_md45(),
        }
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        match s {
            "src_dielectric" => Ok(Self::SrcDielectric),
            "mineral_oil_md45" => Ok(Self::MineralOilMd45),
            other => Err(QueryError::Parse(format!(
                "unknown coolant {other:?} (expected src_dielectric|mineral_oil_md45)"
            ))),
        }
    }
}

/// Bath hardware variant of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BathVariant {
    /// The SKAT bath: one external pump, 1150 W/K exchanger.
    Skat,
    /// The SKAT+ bath: two immersed pumps, 1500 W/K exchanger.
    SkatPlus,
}

impl BathVariant {
    /// Stable canonical key (part of the hash preimage — never rename).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::Skat => "skat",
            Self::SkatPlus => "skat_plus",
        }
    }

    /// The preset bath with the query's coolant substituted in.
    #[must_use]
    pub fn bath_with(self, coolant: CoolantChoice) -> ImmersionBath {
        let mut bath = match self {
            Self::Skat => ImmersionBath::skat_default(),
            Self::SkatPlus => ImmersionBath::skat_plus_default(),
        };
        bath.coolant = coolant.coolant();
        bath
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        match s {
            "skat" => Ok(Self::Skat),
            "skat_plus" => Ok(Self::SkatPlus),
            other => Err(QueryError::Parse(format!(
                "unknown bath {other:?} (expected skat|skat_plus)"
            ))),
        }
    }
}

/// One design question: which module, in which bath, under which
/// workload, judged by how many reliability trials.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignQuery {
    /// Module generation.
    pub family: DeviceFamily,
    /// Immersion coolant.
    pub coolant: CoolantChoice,
    /// Bath hardware variant.
    pub bath: BathVariant,
    /// Workload profile as sustained FPGA utilization in `[0, 1]`.
    pub utilization: f64,
    /// Monte-Carlo trial budget for the availability verdict.
    pub trials: u32,
    /// Monte-Carlo seed.
    pub seed: u64,
}

impl DesignQuery {
    /// Parses a `key=value` spec, whitespace- or comma-separated, e.g.
    /// `"family=skat coolant=src_dielectric bath=skat util=0.85
    /// trials=256 seed=42"`. Field order is free — permuted specs of
    /// the same query parse to the same value and therefore the same
    /// [`canonical_hash`](Self::canonical_hash). `family` is required;
    /// the rest default to the SKAT-paper baseline (`src_dielectric`,
    /// `skat` bath, `util=0.85`, `trials=256`, `seed=42`).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Parse`] on unknown keys, duplicate keys,
    /// malformed numbers, out-of-range utilization, a zero trial
    /// budget, or a missing `family`.
    pub fn parse(spec: &str) -> Result<Self, QueryError> {
        let mut family = None;
        let mut coolant = None;
        let mut bath = None;
        let mut utilization = None;
        let mut trials = None;
        let mut seed = None;

        fn set<T>(slot: &mut Option<T>, key: &str, value: T) -> Result<(), QueryError> {
            if slot.is_some() {
                return Err(QueryError::Parse(format!("duplicate key {key:?}")));
            }
            *slot = Some(value);
            Ok(())
        }

        for token in spec.split(|c: char| c.is_whitespace() || c == ',') {
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| QueryError::Parse(format!("expected key=value, got {token:?}")))?;
            match key {
                "family" => set(&mut family, key, DeviceFamily::parse(value)?)?,
                "coolant" => set(&mut coolant, key, CoolantChoice::parse(value)?)?,
                "bath" => set(&mut bath, key, BathVariant::parse(value)?)?,
                "util" => {
                    let u: f64 = value
                        .parse()
                        .map_err(|_| QueryError::Parse(format!("bad util {value:?}")))?;
                    if !(0.0..=1.0).contains(&u) {
                        return Err(QueryError::Parse(format!("util {u} outside [0, 1]")));
                    }
                    set(&mut utilization, key, u)?;
                }
                "trials" => {
                    let t: u32 = value
                        .parse()
                        .map_err(|_| QueryError::Parse(format!("bad trials {value:?}")))?;
                    if t == 0 {
                        return Err(QueryError::Parse("trials must be positive".into()));
                    }
                    set(&mut trials, key, t)?;
                }
                "seed" => {
                    let s: u64 = value
                        .parse()
                        .map_err(|_| QueryError::Parse(format!("bad seed {value:?}")))?;
                    set(&mut seed, key, s)?;
                }
                other => return Err(QueryError::Parse(format!("unknown key {other:?}"))),
            }
        }

        Ok(Self {
            family: family
                .ok_or_else(|| QueryError::Parse("missing required key family".into()))?,
            coolant: coolant.unwrap_or(CoolantChoice::SrcDielectric),
            bath: bath.unwrap_or(BathVariant::Skat),
            utilization: utilization.unwrap_or(0.85),
            trials: trials.unwrap_or(256),
            seed: seed.unwrap_or(42),
        })
    }

    /// The canonical spec string — parsing it reproduces `self`.
    #[must_use]
    pub fn spec(&self) -> String {
        format!(
            "family={} coolant={} bath={} util={} trials={} seed={}",
            self.family.key(),
            self.coolant.key(),
            self.bath.key(),
            self.utilization,
            self.trials,
            self.seed
        )
    }

    /// The 64-bit content address of this query: the fields absorbed in
    /// one fixed order under a version tag, strings length-prefixed and
    /// floats canonicalized, finalized by the avalanche pass. Equal
    /// queries — however their specs were spelled — share one hash.
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(CANON_TAG);
        h.write_str(self.family.key());
        h.write_str(self.coolant.key());
        h.write_str(self.bath.key());
        h.write_f64(self.utilization);
        h.write_u32(self.trials);
        h.write_u64(self.seed);
        h.finish()
    }
}

/// The solved answer to one [`DesignQuery`] — everything a designer
/// needs to accept or reject the point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignVerdict {
    /// Content address of the query this verdict answers.
    pub query_hash: u64,
    /// Hottest junction temperature, °C.
    pub junction_c: f64,
    /// Bath bulk (hot-side) temperature, °C.
    pub coolant_hot_c: f64,
    /// Coolant temperature re-entering the bath, °C.
    pub coolant_cold_c: f64,
    /// Total heat rejected, W.
    pub total_heat_w: f64,
    /// Cooling power overhead fraction (pumping + chiller over IT).
    pub cooling_overhead: f64,
    /// Mean availability over the [`HORIZON_YEARS`] horizon.
    pub availability_mean: f64,
    /// 5th-percentile availability over the horizon.
    pub availability_p05: f64,
    /// Annual energy of the module incl. cooling, kWh.
    pub annual_energy_kwh: f64,
    /// Whether every operating and structural rule passes.
    pub compliant: bool,
}

impl DesignVerdict {
    /// Bit-exact equality: every float compared by its IEEE bits. The
    /// determinism suite uses this instead of `==` so that even
    /// sign-of-zero drift across thread counts or cache states fails.
    #[must_use]
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.query_hash == other.query_hash
            && self.compliant == other.compliant
            && [
                (self.junction_c, other.junction_c),
                (self.coolant_hot_c, other.coolant_hot_c),
                (self.coolant_cold_c, other.coolant_cold_c),
                (self.total_heat_w, other.total_heat_w),
                (self.cooling_overhead, other.cooling_overhead),
                (self.availability_mean, other.availability_mean),
                (self.availability_p05, other.availability_p05),
                (self.annual_energy_kwh, other.annual_energy_kwh),
            ]
            .iter()
            .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Solves one query against the coupled steady-state model, the
/// availability Monte-Carlo and the compliance rules. The Monte-Carlo
/// runs serially here — batch parallelism lives in
/// [`QueryEngine::run_batch`], and nesting pools would not change the
/// (thread-invariant) result anyway.
///
/// # Errors
///
/// Returns [`QueryError::Solve`] when the thermal solver rejects the
/// design point (e.g. a workload the bath cannot carry).
pub fn solve_query(query: &DesignQuery, obs: &Registry) -> Result<DesignVerdict, QueryError> {
    let bath = query.bath.bath_with(query.coolant);
    let classes = risk::failure_classes(&CoolingArchitecture::Immersion(bath.clone()));

    let model = ImmersionModel::new(query.family.module(), bath)
        .with_operating_point(OperatingPoint::at_utilization(query.utilization));
    let report = model
        .solve_robust_observed(obs)
        .map_err(|e| QueryError::Solve(e.to_string()))?;

    let avail = availability::monte_carlo_observed(
        &classes,
        HORIZON_YEARS,
        query.trials as usize,
        query.seed,
        1,
        obs,
    );

    let mut checks = rules::operating_rules(&report);
    checks.extend(rules::structural_rules(model.module()));

    let total_w =
        report.total_heat.watts() + report.circulation_power.watts() + report.chiller_power.watts();
    let annual_energy_kwh =
        (Power::from_watts(total_w) * Seconds::days(365.25)).as_kilowatt_hours();

    Ok(DesignVerdict {
        query_hash: query.canonical_hash(),
        junction_c: report.junction.degrees(),
        coolant_hot_c: report.coolant_hot.degrees(),
        coolant_cold_c: report.coolant_cold.degrees(),
        total_heat_w: report.total_heat.watts(),
        cooling_overhead: report.cooling_overhead(),
        availability_mean: avail.mean_availability,
        availability_p05: avail.p05_availability,
        annual_energy_kwh,
        compliant: rules::all_pass(&checks),
    })
}

#[derive(Clone)]
struct CacheEntry {
    query: DesignQuery,
    verdict: DesignVerdict,
}

/// Bounded content-addressed verdict cache with FIFO eviction.
///
/// Insertion order alone decides eviction — no recency, no clocks — so
/// the resident set after any request sequence is a pure function of
/// that sequence. Lookups verify the stored query against the probe
/// (`query == stored`), so a 64-bit hash collision degrades to a miss
/// instead of serving a wrong verdict.
#[derive(Clone)]
pub struct QueryCache {
    capacity: usize,
    order: VecDeque<u64>,
    map: HashMap<u64, CacheEntry>,
}

impl QueryCache {
    /// An empty cache holding at most `capacity` verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            order: VecDeque::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
        }
    }

    /// Maximum resident verdicts.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident verdicts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Resident hashes, oldest (next-to-evict) first.
    #[must_use]
    pub fn keys_in_eviction_order(&self) -> Vec<u64> {
        self.order.iter().copied().collect()
    }

    /// The cached verdict for `hash`, provided the stored query equals
    /// `query` (hash-collision guard).
    #[must_use]
    pub fn lookup(&self, hash: u64, query: &DesignQuery) -> Option<&DesignVerdict> {
        self.map
            .get(&hash)
            .filter(|e| e.query == *query)
            .map(|e| &e.verdict)
    }

    /// Inserts a verdict, evicting the oldest entry when full; returns
    /// the evicted hash, if any. Re-inserting a resident hash replaces
    /// the entry in place and keeps its eviction position.
    pub fn insert(&mut self, hash: u64, query: DesignQuery, verdict: DesignVerdict) -> Option<u64> {
        if let Some(entry) = self.map.get_mut(&hash) {
            *entry = CacheEntry { query, verdict };
            return None;
        }
        let evicted = if self.order.len() == self.capacity {
            let old = self.order.pop_front().expect("capacity > 0");
            self.map.remove(&old);
            Some(old)
        } else {
            None
        };
        self.order.push_back(hash);
        self.map.insert(hash, CacheEntry { query, verdict });
        evicted
    }
}

/// The batch scheduler: a [`QueryCache`] fronting [`solve_query`].
///
/// [`run_batch`](Self::run_batch) records the golden counters
/// `query.requests`, `query.batch.runs`, `query.batch.coalesced`,
/// `query.cache.hits`, `query.cache.misses` and
/// `query.cache.evictions`, each mirrored into `profile.query.*` work
/// so the E18 profile golden pins the hit/miss ratio.
#[derive(Clone)]
pub struct QueryEngine {
    cache: QueryCache,
}

impl QueryEngine {
    /// An engine with an empty cache of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            cache: QueryCache::new(capacity),
        }
    }

    /// The cache, for inspection.
    #[must_use]
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Answers a batch of queries in input order.
    ///
    /// Three phases, only the middle one parallel: (1) a sequential
    /// lookup pass partitions requests into cache hits, in-batch
    /// duplicates and distinct misses against the cache state at batch
    /// entry; (2) the misses solve concurrently over
    /// [`rcs_parallel::par_map_observed`] with per-shard telemetry
    /// absorbed in miss order; (3) the solved verdicts enter the cache
    /// in first-occurrence order, driving FIFO eviction. The returned
    /// verdicts — and every golden counter — are bit-identical at any
    /// `threads`.
    ///
    /// # Errors
    ///
    /// Returns the first (in miss order) [`QueryError::Solve`] if a
    /// query's design point does not converge; earlier misses of the
    /// batch remain cached.
    pub fn run_batch(
        &mut self,
        queries: &[DesignQuery],
        threads: usize,
        obs: &Registry,
    ) -> Result<Vec<DesignVerdict>, QueryError> {
        obs.inc("query.batch.runs");
        obs.add("query.requests", queries.len() as u64);
        obs.work("query.requests", queries.len() as u64);

        // Phase 1: sequential lookup against the batch-entry cache state.
        enum Slot {
            Hit(DesignVerdict),
            Miss(usize),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(u64, DesignQuery)> = Vec::new();
        let mut miss_index: HashMap<u64, usize> = HashMap::new();
        let mut hits = 0u64;
        let mut coalesced = 0u64;
        for query in queries {
            let hash = query.canonical_hash();
            if let Some(verdict) = self.cache.lookup(hash, query) {
                hits += 1;
                slots.push(Slot::Hit(verdict.clone()));
            } else if let Some(&i) = miss_index.get(&hash).filter(|&&i| misses[i].1 == *query) {
                coalesced += 1;
                slots.push(Slot::Miss(i));
            } else {
                let i = misses.len();
                miss_index.insert(hash, i);
                misses.push((hash, query.clone()));
                slots.push(Slot::Miss(i));
            }
        }
        obs.add("query.cache.hits", hits);
        obs.work("query.cache.hits", hits);
        obs.add("query.cache.misses", misses.len() as u64);
        obs.work("query.cache.misses", misses.len() as u64);
        obs.add("query.batch.coalesced", coalesced);
        obs.work("query.batch.coalesced", coalesced);

        // Phase 2: solve distinct misses concurrently; results and
        // telemetry shards come back in miss order.
        let solved =
            rcs_parallel::par_map_observed(misses, threads, obs, |_, (hash, query), shard| {
                solve_query(&query, shard).map(|verdict| (hash, query, verdict))
            });

        // Phase 3: sequential insertion in miss order drives FIFO
        // eviction deterministically.
        let mut evictions = 0u64;
        let mut fresh: Vec<DesignVerdict> = Vec::with_capacity(solved.len());
        let mut first_error = None;
        for result in solved {
            match result {
                Ok((hash, query, verdict)) => {
                    if self.cache.insert(hash, query, verdict.clone()).is_some() {
                        evictions += 1;
                    }
                    fresh.push(verdict);
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        obs.add("query.cache.evictions", evictions);
        obs.work("query.cache.evictions", evictions);
        if let Some(e) = first_error {
            return Err(e);
        }

        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(v) => v,
                Slot::Miss(i) => fresh[i].clone(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(spec: &str) -> DesignQuery {
        DesignQuery::parse(spec).expect("valid spec")
    }

    #[test]
    fn spec_round_trips() {
        let a = q(
            "family=skat_plus coolant=mineral_oil_md45 bath=skat_plus util=0.7 trials=32 seed=9",
        );
        assert_eq!(q(&a.spec()), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DesignQuery::parse("family=skat util=1.5").is_err());
        assert!(DesignQuery::parse("family=skat trials=0").is_err());
        assert!(DesignQuery::parse("family=skat family=skat").is_err());
        assert!(
            DesignQuery::parse("util=0.5").is_err(),
            "family is required"
        );
        assert!(DesignQuery::parse("family=skat color=red").is_err());
        assert!(DesignQuery::parse("family skat").is_err());
    }

    #[test]
    fn distinct_queries_get_distinct_hashes() {
        let base = q("family=skat");
        for other in [
            q("family=taygeta"),
            q("family=skat util=0.8"),
            q("family=skat trials=255"),
            q("family=skat seed=43"),
            q("family=skat bath=skat_plus"),
            q("family=skat coolant=mineral_oil_md45"),
        ] {
            assert_ne!(base.canonical_hash(), other.canonical_hash(), "{other:?}");
        }
    }

    #[test]
    fn cache_fifo_evicts_in_insertion_order() {
        let mut cache = QueryCache::new(2);
        let mk = |seed: u64| {
            let query = q(&format!("family=skat seed={seed}"));
            let hash = query.canonical_hash();
            let verdict = DesignVerdict {
                query_hash: hash,
                junction_c: 0.0,
                coolant_hot_c: 0.0,
                coolant_cold_c: 0.0,
                total_heat_w: 0.0,
                cooling_overhead: 0.0,
                availability_mean: 1.0,
                availability_p05: 1.0,
                annual_energy_kwh: 0.0,
                compliant: true,
            };
            (hash, query, verdict)
        };
        let (h1, q1, v1) = mk(1);
        let (h2, q2, v2) = mk(2);
        let (h3, q3, v3) = mk(3);
        assert_eq!(cache.insert(h1, q1.clone(), v1), None);
        assert_eq!(cache.insert(h2, q2, v2), None);
        assert_eq!(
            cache.insert(h3, q3.clone(), v3),
            Some(h1),
            "oldest goes first"
        );
        assert_eq!(cache.keys_in_eviction_order(), vec![h2, h3]);
        assert!(cache.lookup(h1, &q1).is_none());
        assert!(cache.lookup(h3, &q3).is_some());
    }

    #[test]
    fn cache_lookup_guards_against_collisions() {
        let mut cache = QueryCache::new(2);
        let stored = q("family=skat seed=1");
        let probe = q("family=skat seed=2");
        let hash = stored.canonical_hash();
        let verdict = DesignVerdict {
            query_hash: hash,
            junction_c: 0.0,
            coolant_hot_c: 0.0,
            coolant_cold_c: 0.0,
            total_heat_w: 0.0,
            cooling_overhead: 0.0,
            availability_mean: 1.0,
            availability_p05: 1.0,
            annual_energy_kwh: 0.0,
            compliant: true,
        };
        cache.insert(hash, stored.clone(), verdict);
        // Pretend probe collided onto the same hash: equality must veto.
        assert!(cache.lookup(hash, &probe).is_none());
        assert!(cache.lookup(hash, &stored).is_some());
    }
}
