//! The design-query service: a long-running front end over the solvers.
//!
//! A designer (or a batch driver such as the `query_cli` binary) asks
//! "what does a SKAT-class module in this bath at this utilization look
//! like?" many times over a session, and most of those questions repeat.
//! This crate turns each question into a [`DesignQuery`] with a
//! *canonical encoding* — fixed field order, length-prefixed strings,
//! canonicalized float bits — hashed by the vendored
//! [`rcs_numeric::hash::Fnv1a`] into a 64-bit content address. A bounded
//! [`QueryCache`] maps that address to the solved [`DesignVerdict`]
//! (steady-state temperatures, availability, annual energy, compliance),
//! and the [`QueryEngine`] batch scheduler answers whole request lists:
//! hits are served from the cache, in-batch duplicates are coalesced,
//! and the remaining distinct misses are solved concurrently over
//! [`rcs_parallel::par_map_observed`].
//!
//! # Determinism contract
//!
//! Everything observable is a pure function of the request list and the
//! cache state — never of `RCS_THREADS`:
//!
//! - the lookup pass is sequential in request order, against the cache
//!   state at batch entry (inserts happen only after every lookup), so
//!   the hit/miss/coalesced partition is thread-independent;
//! - misses are solved in parallel but collected in first-occurrence
//!   order, and inserted into the cache in that order, so FIFO eviction
//!   follows insertion order exactly;
//! - a cached verdict is returned as stored — bit-identical to the
//!   solve that produced it — and the solvers themselves are
//!   deterministic, so a warm cache and a cold cache produce the same
//!   bytes.
//!
//! The golden `query.*` counters ([`QueryEngine::run_batch`]) and their
//! `profile.query.*` work mirrors make the cache behaviour a pinned,
//! diffable artifact of every run.
//!
//! # Resilience
//!
//! `run_batch` never fails wholesale: it returns one [`QueryOutcome`]
//! per request — `Ok`, `Degraded` (a near-enough cached verdict served
//! with [`DegradedProvenance`] after a terminal failure), or `Failed`
//! with a structured, retry-classified [`QueryError`]. Behind each miss
//! sits [`solve_query_resilient`]: per-attempt panic isolation
//! ([`rcs_parallel::isolate`]), a bounded retry ladder that re-solves
//! retryable errors under progressively heavier damping, and a
//! per-query *work-unit* deadline ([`ResiliencePolicy::work_budget`],
//! measured in `profile.*` counters — never wall clock). Faults,
//! retries, budgets and degradations are all pure functions of the
//! request list and cache state, so every outcome and every
//! `resilience.*` counter is bit-identical at any `RCS_THREADS`.
//!
//! # Examples
//!
//! ```
//! use rcs_query::{DesignQuery, QueryEngine};
//!
//! let q = DesignQuery::parse("family=skat util=0.85 trials=64 seed=7")?;
//! let mut engine = QueryEngine::new(8);
//! let obs = rcs_obs::Registry::new();
//! let outcomes = engine.run_batch(&[q.clone(), q], 1, &obs);
//! assert_eq!(outcomes.len(), 2);
//! let verdict = outcomes[0].verdict().ok_or("in-budget point solves")?;
//! assert!(verdict.junction_c < 85.0);
//! // The duplicate was coalesced into one solve.
//! assert_eq!(obs.snapshot().counter("query.cache.misses"), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Resilience gate: non-test code in this crate must never take the
// panic shortcut — a panic in the engine is a lost request, not a bug
// report. (Unit tests under cfg(test) may still unwrap freely.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod e18_query_service;

use std::collections::{HashMap, VecDeque};

use rcs_cooling::{availability, risk, CoolingArchitecture, ImmersionBath};
use rcs_core::{rules, CoreError, ImmersionModel};
use rcs_devices::OperatingPoint;
use rcs_fluids::Coolant;
use rcs_numeric::hash::Fnv1a;
use rcs_obs::span::SpanSink;
use rcs_obs::Registry;
use rcs_platform::{presets, ComputeModule};
use rcs_units::{Power, Seconds};

/// Version tag folded into every canonical hash, so a change to the
/// encoding (new field, new scalar format) can never alias an old
/// address.
const CANON_TAG: &str = "rcs.query.v1";

/// Availability horizon every verdict is judged over, in years.
pub const HORIZON_YEARS: f64 = 3.0;

/// Structured post-mortem of a solve that did not converge: how far the
/// retry machinery got, so a retry policy can classify the failure
/// without string matching.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveDiagnostics {
    /// Damping rungs the solver ladder attempted (0 for an injected or
    /// synthetic non-convergence that never reached the solver).
    pub rungs_attempted: u32,
    /// Fixed-point / Newton iterations spent by the last attempt.
    pub iterations: u64,
    /// Last recorded residual, in the failing solver's own units
    /// (kelvins for the coupled fixed point, m³/s for hydraulics);
    /// `None` when no usable residual was produced.
    pub last_residual: Option<f64>,
}

impl core::fmt::Display for SolveDiagnostics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} rung(s) attempted, {} iterations",
            self.rungs_attempted, self.iterations
        )?;
        match self.last_residual {
            Some(r) => write!(f, ", last residual {r:.3e}"),
            None => write!(f, ", no residual recorded"),
        }
    }
}

/// Errors of the query layer. Every variant is classified as retryable
/// or fatal by [`QueryError::is_retryable`] — the retry ladder consults
/// the structure, never the message.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A query spec string failed to parse.
    Parse(String),
    /// The solvers ran out of convergence headroom — **retryable**: a
    /// heavier-damped re-solve may still land it.
    NoConvergence {
        /// How far the failed solve got.
        diagnostics: SolveDiagnostics,
    },
    /// The design point itself is invalid (non-finite inputs, unphysical
    /// configuration, substrate rejection) — **fatal**: retrying cannot
    /// change a malformed question.
    InvalidDesign {
        /// Explanation, taken from the rejecting layer.
        reason: String,
    },
    /// A worker panicked while solving — **retryable** (isolated by
    /// `rcs_parallel::isolate`; a transient fault clears on re-solve,
    /// a deterministic one exhausts the ladder and degrades).
    WorkerPanic {
        /// The caught panic message.
        message: String,
    },
    /// The per-query work-unit deadline ran out before an answer —
    /// **fatal** for this solve (the request is shed to the degradation
    /// path instead of burning more budget).
    BudgetExhausted {
        /// Work units spent when the deadline tripped.
        spent: u64,
        /// The policy's work-unit budget.
        budget: u64,
    },
}

impl QueryError {
    /// `true` when a bounded re-solve might succeed (non-convergence,
    /// worker panic); `false` for malformed designs, exhausted budgets
    /// and parse errors.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::NoConvergence { .. } | Self::WorkerPanic { .. })
    }

    /// Bit-exact equality (float fields compared by IEEE bits) — the
    /// determinism suite's replacement for `==`, which would treat NaN
    /// residuals as unequal to themselves.
    #[must_use]
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Parse(a), Self::Parse(b)) => a == b,
            (Self::NoConvergence { diagnostics: a }, Self::NoConvergence { diagnostics: b }) => {
                a.rungs_attempted == b.rungs_attempted
                    && a.iterations == b.iterations
                    && a.last_residual.map(f64::to_bits) == b.last_residual.map(f64::to_bits)
            }
            (Self::InvalidDesign { reason: a }, Self::InvalidDesign { reason: b }) => a == b,
            (Self::WorkerPanic { message: a }, Self::WorkerPanic { message: b }) => a == b,
            (
                Self::BudgetExhausted {
                    spent: sa,
                    budget: ba,
                },
                Self::BudgetExhausted {
                    spent: sb,
                    budget: bb,
                },
            ) => sa == sb && ba == bb,
            _ => false,
        }
    }

    fn from_core(e: &CoreError) -> Self {
        match e {
            CoreError::NoConvergence {
                iterations,
                residual_k,
            } => Self::NoConvergence {
                diagnostics: SolveDiagnostics {
                    rungs_attempted: 1,
                    iterations: *iterations as u64,
                    last_residual: *residual_k,
                },
            },
            CoreError::Hydraulic(rcs_hydraulics::HydraulicError::Unsolvable { diagnostics }) => {
                Self::NoConvergence {
                    diagnostics: SolveDiagnostics {
                        rungs_attempted: diagnostics.attempts.len() as u32,
                        iterations: diagnostics.attempts.iter().map(|a| a.max_iter as u64).sum(),
                        last_residual: Some(diagnostics.residual),
                    },
                }
            }
            other => Self::InvalidDesign {
                reason: other.to_string(),
            },
        }
    }
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Parse(msg) => write!(f, "query parse error: {msg}"),
            // Solver-side variants keep the historical "query solve
            // error:" prefix — scripts that match on it stay stable.
            Self::NoConvergence { diagnostics } => {
                write!(f, "query solve error: no convergence ({diagnostics})")
            }
            Self::InvalidDesign { reason } => write!(f, "query solve error: {reason}"),
            Self::WorkerPanic { message } => write!(f, "query worker panic: {message}"),
            Self::BudgetExhausted { spent, budget } => write!(
                f,
                "query budget exhausted: {spent} of {budget} work units spent"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Device family of a query — one of the paper's module generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFamily {
    /// Virtex-6 RIGEL-2 module.
    Rigel2,
    /// Virtex-7 TAYGETA module.
    Taygeta,
    /// UltraScale SKAT module.
    Skat,
    /// UltraScale+ SKAT+ module.
    SkatPlus,
}

impl DeviceFamily {
    /// Stable canonical key (part of the hash preimage — never rename).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::Rigel2 => "rigel2",
            Self::Taygeta => "taygeta",
            Self::Skat => "skat",
            Self::SkatPlus => "skat_plus",
        }
    }

    /// The preset compute module of this family.
    #[must_use]
    pub fn module(self) -> ComputeModule {
        match self {
            Self::Rigel2 => presets::rigel2(),
            Self::Taygeta => presets::taygeta(),
            Self::Skat => presets::skat(),
            Self::SkatPlus => presets::skat_plus(),
        }
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        match s {
            "rigel2" => Ok(Self::Rigel2),
            "taygeta" => Ok(Self::Taygeta),
            "skat" => Ok(Self::Skat),
            "skat_plus" => Ok(Self::SkatPlus),
            other => Err(QueryError::Parse(format!(
                "unknown family {other:?} (expected rigel2|taygeta|skat|skat_plus)"
            ))),
        }
    }
}

/// Immersion coolant of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoolantChoice {
    /// The SRC dielectric blend (the paper's working fluid).
    SrcDielectric,
    /// MD-4,5 mineral transformer oil.
    MineralOilMd45,
}

impl CoolantChoice {
    /// Stable canonical key (part of the hash preimage — never rename).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::SrcDielectric => "src_dielectric",
            Self::MineralOilMd45 => "mineral_oil_md45",
        }
    }

    /// The fluid property model of this choice.
    #[must_use]
    pub fn coolant(self) -> Coolant {
        match self {
            Self::SrcDielectric => Coolant::src_dielectric(),
            Self::MineralOilMd45 => Coolant::mineral_oil_md45(),
        }
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        match s {
            "src_dielectric" => Ok(Self::SrcDielectric),
            "mineral_oil_md45" => Ok(Self::MineralOilMd45),
            other => Err(QueryError::Parse(format!(
                "unknown coolant {other:?} (expected src_dielectric|mineral_oil_md45)"
            ))),
        }
    }
}

/// Bath hardware variant of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BathVariant {
    /// The SKAT bath: one external pump, 1150 W/K exchanger.
    Skat,
    /// The SKAT+ bath: two immersed pumps, 1500 W/K exchanger.
    SkatPlus,
}

impl BathVariant {
    /// Stable canonical key (part of the hash preimage — never rename).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::Skat => "skat",
            Self::SkatPlus => "skat_plus",
        }
    }

    /// The preset bath with the query's coolant substituted in.
    #[must_use]
    pub fn bath_with(self, coolant: CoolantChoice) -> ImmersionBath {
        let mut bath = match self {
            Self::Skat => ImmersionBath::skat_default(),
            Self::SkatPlus => ImmersionBath::skat_plus_default(),
        };
        bath.coolant = coolant.coolant();
        bath
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        match s {
            "skat" => Ok(Self::Skat),
            "skat_plus" => Ok(Self::SkatPlus),
            other => Err(QueryError::Parse(format!(
                "unknown bath {other:?} (expected skat|skat_plus)"
            ))),
        }
    }
}

/// One design question: which module, in which bath, under which
/// workload, judged by how many reliability trials.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignQuery {
    /// Module generation.
    pub family: DeviceFamily,
    /// Immersion coolant.
    pub coolant: CoolantChoice,
    /// Bath hardware variant.
    pub bath: BathVariant,
    /// Workload profile as sustained FPGA utilization in `[0, 1]`.
    pub utilization: f64,
    /// Monte-Carlo trial budget for the availability verdict.
    pub trials: u32,
    /// Monte-Carlo seed.
    pub seed: u64,
}

impl DesignQuery {
    /// Parses a `key=value` spec, whitespace- or comma-separated, e.g.
    /// `"family=skat coolant=src_dielectric bath=skat util=0.85
    /// trials=256 seed=42"`. Field order is free — permuted specs of
    /// the same query parse to the same value and therefore the same
    /// [`canonical_hash`](Self::canonical_hash). `family` is required;
    /// the rest default to the SKAT-paper baseline (`src_dielectric`,
    /// `skat` bath, `util=0.85`, `trials=256`, `seed=42`).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Parse`] on unknown keys, duplicate keys,
    /// malformed numbers, out-of-range utilization, a zero trial
    /// budget, or a missing `family`.
    pub fn parse(spec: &str) -> Result<Self, QueryError> {
        let mut family = None;
        let mut coolant = None;
        let mut bath = None;
        let mut utilization = None;
        let mut trials = None;
        let mut seed = None;

        fn set<T>(slot: &mut Option<T>, key: &str, value: T) -> Result<(), QueryError> {
            if slot.is_some() {
                return Err(QueryError::Parse(format!("duplicate key {key:?}")));
            }
            *slot = Some(value);
            Ok(())
        }

        for token in spec.split(|c: char| c.is_whitespace() || c == ',') {
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| QueryError::Parse(format!("expected key=value, got {token:?}")))?;
            match key {
                "family" => set(&mut family, key, DeviceFamily::parse(value)?)?,
                "coolant" => set(&mut coolant, key, CoolantChoice::parse(value)?)?,
                "bath" => set(&mut bath, key, BathVariant::parse(value)?)?,
                "util" => {
                    let u: f64 = value
                        .parse()
                        .map_err(|_| QueryError::Parse(format!("bad util {value:?}")))?;
                    if !(0.0..=1.0).contains(&u) {
                        return Err(QueryError::Parse(format!("util {u} outside [0, 1]")));
                    }
                    set(&mut utilization, key, u)?;
                }
                "trials" => {
                    let t: u32 = value
                        .parse()
                        .map_err(|_| QueryError::Parse(format!("bad trials {value:?}")))?;
                    if t == 0 {
                        return Err(QueryError::Parse("trials must be positive".into()));
                    }
                    set(&mut trials, key, t)?;
                }
                "seed" => {
                    let s: u64 = value
                        .parse()
                        .map_err(|_| QueryError::Parse(format!("bad seed {value:?}")))?;
                    set(&mut seed, key, s)?;
                }
                other => return Err(QueryError::Parse(format!("unknown key {other:?}"))),
            }
        }

        Ok(Self {
            family: family
                .ok_or_else(|| QueryError::Parse("missing required key family".into()))?,
            coolant: coolant.unwrap_or(CoolantChoice::SrcDielectric),
            bath: bath.unwrap_or(BathVariant::Skat),
            utilization: utilization.unwrap_or(0.85),
            trials: trials.unwrap_or(256),
            seed: seed.unwrap_or(42),
        })
    }

    /// The canonical spec string — parsing it reproduces `self`.
    #[must_use]
    pub fn spec(&self) -> String {
        format!(
            "family={} coolant={} bath={} util={} trials={} seed={}",
            self.family.key(),
            self.coolant.key(),
            self.bath.key(),
            self.utilization,
            self.trials,
            self.seed
        )
    }

    /// The 64-bit content address of this query: the fields absorbed in
    /// one fixed order under a version tag, strings length-prefixed and
    /// floats canonicalized, finalized by the avalanche pass. Equal
    /// queries — however their specs were spelled — share one hash.
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(CANON_TAG);
        h.write_str(self.family.key());
        h.write_str(self.coolant.key());
        h.write_str(self.bath.key());
        h.write_f64(self.utilization);
        h.write_u32(self.trials);
        h.write_u64(self.seed);
        h.finish()
    }
}

/// The solved answer to one [`DesignQuery`] — everything a designer
/// needs to accept or reject the point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignVerdict {
    /// Content address of the query this verdict answers.
    pub query_hash: u64,
    /// Hottest junction temperature, °C.
    pub junction_c: f64,
    /// Bath bulk (hot-side) temperature, °C.
    pub coolant_hot_c: f64,
    /// Coolant temperature re-entering the bath, °C.
    pub coolant_cold_c: f64,
    /// Total heat rejected, W.
    pub total_heat_w: f64,
    /// Cooling power overhead fraction (pumping + chiller over IT).
    pub cooling_overhead: f64,
    /// Mean availability over the [`HORIZON_YEARS`] horizon.
    pub availability_mean: f64,
    /// 5th-percentile availability over the horizon.
    pub availability_p05: f64,
    /// Annual energy of the module incl. cooling, kWh.
    pub annual_energy_kwh: f64,
    /// Whether every operating and structural rule passes.
    pub compliant: bool,
}

impl DesignVerdict {
    /// Bit-exact equality: every float compared by its IEEE bits. The
    /// determinism suite uses this instead of `==` so that even
    /// sign-of-zero drift across thread counts or cache states fails.
    #[must_use]
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.query_hash == other.query_hash
            && self.compliant == other.compliant
            && [
                (self.junction_c, other.junction_c),
                (self.coolant_hot_c, other.coolant_hot_c),
                (self.coolant_cold_c, other.coolant_cold_c),
                (self.total_heat_w, other.total_heat_w),
                (self.cooling_overhead, other.cooling_overhead),
                (self.availability_mean, other.availability_mean),
                (self.availability_p05, other.availability_p05),
                (self.annual_energy_kwh, other.annual_energy_kwh),
            ]
            .iter()
            .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Damping rungs for retry attempts beyond the first: heavier damping
/// than the standard robust ladder's last rung (0.1), with matching
/// iteration headroom. Attempt `n ≥ 1` uses `RETRY_RUNGS[n - 1]`,
/// clamped to the last rung.
const RETRY_RUNGS: [(f64, usize); 2] = [(0.05, 2400), (0.02, 4800)];

/// Solves one query against the coupled steady-state model, the
/// availability Monte-Carlo and the compliance rules. The Monte-Carlo
/// runs serially here — batch parallelism lives in
/// [`QueryEngine::run_batch`], and nesting pools would not change the
/// (thread-invariant) result anyway.
///
/// Equivalent to attempt 0 of [`solve_query_at`] — the standard robust
/// solver ladder, no retry damping.
///
/// # Errors
///
/// Returns [`QueryError::InvalidDesign`] for malformed design points
/// and [`QueryError::NoConvergence`] when the solvers run out of
/// headroom (e.g. a workload the bath cannot carry).
pub fn solve_query(query: &DesignQuery, obs: &Registry) -> Result<DesignVerdict, QueryError> {
    solve_query_at(query, 0, obs)
}

/// [`solve_query`] at a given rung of the retry ladder. Attempt 0 is
/// the standard robust solve; attempts ≥ 1 re-run the coupled fixed
/// point under `RETRY_RUNGS` damping, trading iterations for
/// stability. Inputs are validated *before* any solver runs, so a
/// poisoned query (NaN utilization, zero trials) fails fast as the
/// fatal [`QueryError::InvalidDesign`] instead of panicking a worker.
///
/// # Errors
///
/// [`QueryError::InvalidDesign`] for malformed points,
/// [`QueryError::NoConvergence`] when the chosen rung fails to land.
pub fn solve_query_at(
    query: &DesignQuery,
    attempt: u32,
    obs: &Registry,
) -> Result<DesignVerdict, QueryError> {
    if !query.utilization.is_finite() || !(0.0..=1.0).contains(&query.utilization) {
        return Err(QueryError::InvalidDesign {
            reason: format!("utilization {} outside [0, 1]", query.utilization),
        });
    }
    if query.trials == 0 {
        return Err(QueryError::InvalidDesign {
            reason: "trials must be positive".into(),
        });
    }

    let bath = query.bath.bath_with(query.coolant);
    let classes = risk::failure_classes(&CoolingArchitecture::Immersion(bath.clone()));

    let model = ImmersionModel::new(query.family.module(), bath)
        .with_operating_point(OperatingPoint::at_utilization(query.utilization));
    let report = if attempt == 0 {
        model.solve_robust_observed(obs)
    } else {
        let (damping, max_iter) = RETRY_RUNGS[(attempt as usize - 1).min(RETRY_RUNGS.len() - 1)];
        model.solve_with_damping(damping, max_iter, obs)
    }
    .map_err(|e| QueryError::from_core(&e))?;

    let avail = availability::monte_carlo_observed(
        &classes,
        HORIZON_YEARS,
        query.trials as usize,
        query.seed,
        1,
        obs,
    );

    let mut checks = rules::operating_rules(&report);
    checks.extend(rules::structural_rules(model.module()));

    let total_w =
        report.total_heat.watts() + report.circulation_power.watts() + report.chiller_power.watts();
    let annual_energy_kwh =
        (Power::from_watts(total_w) * Seconds::days(365.25)).as_kilowatt_hours();

    Ok(DesignVerdict {
        query_hash: query.canonical_hash(),
        junction_c: report.junction.degrees(),
        coolant_hot_c: report.coolant_hot.degrees(),
        coolant_cold_c: report.coolant_cold.degrees(),
        total_heat_w: report.total_heat.watts(),
        cooling_overhead: report.cooling_overhead(),
        availability_mean: avail.mean_availability,
        availability_p05: avail.p05_availability,
        annual_energy_kwh,
        compliant: rules::all_pass(&checks),
    })
}

/// Knobs of the engine's resilience layer. Budgets are *work units*
/// (the `profile.*` counter total recorded by a query's own telemetry
/// shard) — never wall clock — so retry, shedding and degradation
/// decisions are bit-identical at every `RCS_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Solve attempts per query (first try + retries); clamped to ≥ 1.
    pub max_attempts: u32,
    /// Work-unit deadline per query, checked before each attempt; the
    /// default `u64::MAX` never trips.
    pub work_budget: u64,
    /// Half-width (±ε, in utilization) of the degradation window a
    /// failed request may be answered from.
    pub degrade_window: f64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            work_budget: u64::MAX,
            degrade_window: 0.1,
        }
    }
}

/// An engine fault injected by a [`FaultInjector`] (see `rcs-chaos`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic inside the worker closure, before the solve runs.
    Panic,
    /// Poison the query's utilization to NaN before the solve.
    PoisonUtilization,
    /// Replace the solve with a fabricated non-convergence report.
    ForceNoConvergence,
    /// Charge this many extra work units against the query's budget
    /// before the attempt (models a pathologically expensive request).
    InflateWork(u64),
}

/// Supplies the fault (if any) to inject into a given attempt of a
/// given query. Implementations must be pure functions of their
/// arguments — the engine calls them from worker threads in arbitrary
/// order, and the determinism contract extends to injected faults.
pub trait FaultInjector: Sync {
    /// The fault for `attempt` of `query`, or `None` for a clean run.
    fn fault_for(&self, query: &DesignQuery, attempt: u32) -> Option<InjectedFault>;
}

/// The production injector: never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn fault_for(&self, _query: &DesignQuery, _attempt: u32) -> Option<InjectedFault> {
        None
    }
}

/// Answers one query under a [`ResiliencePolicy`]: a bounded retry
/// ladder over [`solve_query_at`], each attempt wrapped in
/// [`rcs_parallel::isolate`] so a panicking solve becomes the retryable
/// [`QueryError::WorkerPanic`] instead of taking down the worker.
///
/// `obs` should be the query's *own* shard registry (as handed out by
/// [`rcs_parallel::par_map_isolated_observed`]): spent work is measured
/// as the shard's `profile.*` total, so the
/// [`work_budget`](ResiliencePolicy::work_budget) covers exactly this
/// query's attempts — including injected cost inflation.
///
/// Golden counters, recorded only when the events occur:
/// `resilience.retry.attempts`, `resilience.retry.recoveries`,
/// `resilience.worker.panics`, `resilience.budget.exhausted`,
/// `resilience.failures.fatal`, `resilience.failures.exhausted`, and
/// `resilience.injected.*` for injected faults — each mirrored into
/// `profile.*` work.
///
/// # Errors
///
/// The terminal [`QueryError`]: the first fatal error encountered, a
/// [`QueryError::BudgetExhausted`] deadline trip, or the last retryable
/// error once the ladder is exhausted.
pub fn solve_query_resilient(
    query: &DesignQuery,
    policy: &ResiliencePolicy,
    injector: &dyn FaultInjector,
    obs: &Registry,
) -> Result<DesignVerdict, QueryError> {
    solve_query_resilient_spanned(query, policy, injector, obs, SpanSink::disabled())
}

/// [`solve_query_resilient`] plus span attribution: every attempt of
/// the retry ladder runs inside an `attempt` span, and a tripped work
/// budget leaves a zero-width `budget` marker span inside the attempt
/// that tripped it — so span rollups show which attempt of which
/// request burned the work, and where budgets cut runs short.
/// Telemetry on `obs` is byte-identical to [`solve_query_resilient`].
///
/// # Errors
///
/// Same contract as [`solve_query_resilient`].
pub fn solve_query_resilient_spanned(
    query: &DesignQuery,
    policy: &ResiliencePolicy,
    injector: &dyn FaultInjector,
    obs: &Registry,
    spans: &SpanSink,
) -> Result<DesignVerdict, QueryError> {
    let max_attempts = policy.max_attempts.max(1);
    let mut last_err: Option<QueryError> = None;
    for attempt in 0..max_attempts {
        spans.enter("attempt", obs);
        if attempt > 0 {
            obs.inc("resilience.retry.attempts");
            obs.work("resilience.retry.attempts", 1);
        }
        let fault = injector.fault_for(query, attempt);
        if let Some(InjectedFault::InflateWork(units)) = fault {
            obs.add("resilience.injected.cost", units);
            obs.work("resilience.injected.cost", units);
        }
        let spent = rcs_obs::profile::tree(&obs.snapshot()).total;
        if spent >= policy.work_budget {
            obs.inc("resilience.budget.exhausted");
            obs.work("resilience.budget.exhausted", 1);
            spans.enter("budget", obs);
            spans.exit(obs);
            spans.exit(obs);
            return Err(QueryError::BudgetExhausted {
                spent,
                budget: policy.work_budget,
            });
        }
        let result = rcs_parallel::isolate(|| match fault {
            Some(InjectedFault::Panic) => {
                obs.inc("resilience.injected.panics");
                obs.work("resilience.injected.panics", 1);
                panic!("injected worker panic (attempt {attempt})");
            }
            Some(InjectedFault::PoisonUtilization) => {
                obs.inc("resilience.injected.poisoned");
                obs.work("resilience.injected.poisoned", 1);
                let mut poisoned = query.clone();
                poisoned.utilization = f64::NAN;
                solve_query_at(&poisoned, attempt, obs)
            }
            Some(InjectedFault::ForceNoConvergence) => {
                obs.inc("resilience.injected.no_convergence");
                obs.work("resilience.injected.no_convergence", 1);
                Err(QueryError::NoConvergence {
                    diagnostics: SolveDiagnostics {
                        rungs_attempted: 0,
                        iterations: 0,
                        last_residual: None,
                    },
                })
            }
            _ => solve_query_at(query, attempt, obs),
        });
        let err = match result {
            Ok(Ok(verdict)) => {
                if attempt > 0 {
                    obs.inc("resilience.retry.recoveries");
                    obs.work("resilience.retry.recoveries", 1);
                }
                spans.exit(obs);
                return Ok(verdict);
            }
            Ok(Err(e)) => e,
            Err(panic) => {
                obs.inc("resilience.worker.panics");
                obs.work("resilience.worker.panics", 1);
                QueryError::WorkerPanic {
                    message: panic.message,
                }
            }
        };
        if !err.is_retryable() {
            obs.inc("resilience.failures.fatal");
            obs.work("resilience.failures.fatal", 1);
            spans.exit(obs);
            return Err(err);
        }
        spans.exit(obs);
        last_err = Some(err);
    }
    obs.inc("resilience.failures.exhausted");
    obs.work("resilience.failures.exhausted", 1);
    Err(last_err
        .unwrap_or_else(|| unreachable!("max_attempts >= 1 guarantees at least one attempt")))
}

/// Provenance attached to a [`QueryOutcome::Degraded`] answer: which
/// cached design point stood in, how far off it was, and the terminal
/// error the substitution papered over.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedProvenance {
    /// Canonical hash of the query that was asked.
    pub requested_hash: u64,
    /// Canonical hash of the cached query whose verdict was served.
    pub source_hash: u64,
    /// `|source.utilization − requested.utilization|`.
    pub delta_utilization: f64,
    /// The error that forced degradation.
    pub error: QueryError,
}

impl DegradedProvenance {
    /// Bit-exact equality (floats by IEEE bits).
    #[must_use]
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.requested_hash == other.requested_hash
            && self.source_hash == other.source_hash
            && self.delta_utilization.to_bits() == other.delta_utilization.to_bits()
            && self.error.bitwise_eq(&other.error)
    }
}

/// Per-request result of [`QueryEngine::run_batch`]. A batch returns
/// one outcome per request, in request order — a failure never takes
/// its siblings down with it.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Solved (or cache-served) exactly as asked.
    Ok(DesignVerdict),
    /// The solve failed terminally, but a resident verdict within the
    /// policy's degradation window answered in its place.
    Degraded {
        /// The stand-in verdict (a *different* design point — check
        /// the provenance before trusting it blindly).
        verdict: DesignVerdict,
        /// Which entry stood in, and why it had to.
        provenance: DegradedProvenance,
    },
    /// No answer: the terminal error, with no cache entry close enough
    /// to degrade onto.
    Failed(QueryError),
}

impl QueryOutcome {
    /// The verdict, if any — exact for `Ok`, approximate for
    /// `Degraded`, `None` for `Failed`.
    #[must_use]
    pub fn verdict(&self) -> Option<&DesignVerdict> {
        match self {
            Self::Ok(v) | Self::Degraded { verdict: v, .. } => Some(v),
            Self::Failed(_) => None,
        }
    }

    /// The terminal error behind a `Failed` outcome.
    #[must_use]
    pub fn error(&self) -> Option<&QueryError> {
        match self {
            Self::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// `true` for an exact answer.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok(_))
    }

    /// `true` for a degraded stand-in answer.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::Degraded { .. })
    }

    /// `true` when the request got no answer at all.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self, Self::Failed(_))
    }

    /// Bit-exact equality across the whole outcome (verdict floats,
    /// provenance, error payloads) — the determinism suite's `==`.
    #[must_use]
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Ok(a), Self::Ok(b)) => a.bitwise_eq(b),
            (
                Self::Degraded {
                    verdict: va,
                    provenance: pa,
                },
                Self::Degraded {
                    verdict: vb,
                    provenance: pb,
                },
            ) => va.bitwise_eq(vb) && pa.bitwise_eq(pb),
            (Self::Failed(a), Self::Failed(b)) => a.bitwise_eq(b),
            _ => false,
        }
    }
}

#[derive(Clone)]
struct CacheEntry {
    query: DesignQuery,
    verdict: DesignVerdict,
}

/// Bounded content-addressed verdict cache with FIFO eviction.
///
/// Insertion order alone decides eviction — no recency, no clocks — so
/// the resident set after any request sequence is a pure function of
/// that sequence. Lookups verify the stored query against the probe
/// (`query == stored`), so a 64-bit hash collision degrades to a miss
/// instead of serving a wrong verdict.
#[derive(Clone)]
pub struct QueryCache {
    capacity: usize,
    order: VecDeque<u64>,
    map: HashMap<u64, CacheEntry>,
}

impl QueryCache {
    /// An empty cache holding at most `capacity` verdicts. A capacity
    /// of zero is a pure pass-through: every lookup misses, every
    /// insert is a no-op (no insert-then-evict churn, no eviction
    /// counts) — useful for benchmarking the uncached solve path.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            order: VecDeque::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
        }
    }

    /// Maximum resident verdicts.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident verdicts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Resident hashes, oldest (next-to-evict) first.
    #[must_use]
    pub fn keys_in_eviction_order(&self) -> Vec<u64> {
        self.order.iter().copied().collect()
    }

    /// The cached verdict for `hash`, provided the stored query equals
    /// `query` (hash-collision guard).
    #[must_use]
    pub fn lookup(&self, hash: u64, query: &DesignQuery) -> Option<&DesignVerdict> {
        self.map
            .get(&hash)
            .filter(|e| e.query == *query)
            .map(|e| &e.verdict)
    }

    /// Inserts a verdict, evicting the oldest entry when full; returns
    /// the evicted hash, if any. Re-inserting a resident hash replaces
    /// the entry in place and keeps its eviction position. At capacity
    /// zero the insert is a no-op and nothing is ever "evicted".
    pub fn insert(&mut self, hash: u64, query: DesignQuery, verdict: DesignVerdict) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(entry) = self.map.get_mut(&hash) {
            *entry = CacheEntry { query, verdict };
            return None;
        }
        let evicted = if self.order.len() == self.capacity {
            self.order.pop_front().inspect(|old| {
                self.map.remove(old);
            })
        } else {
            None
        };
        self.order.push_back(hash);
        self.map.insert(hash, CacheEntry { query, verdict });
        evicted
    }

    /// The nearest resident verdict usable as a *degraded* stand-in for
    /// `query`: same family, coolant and bath, utilization within
    /// `±window`. Entries are scanned in eviction (insertion) order;
    /// the strictly smallest `|Δutilization|` wins and ties keep the
    /// earliest-inserted entry, so the choice is a pure function of the
    /// cache state. A non-finite probe utilization (or window) matches
    /// nothing.
    #[must_use]
    pub fn nearest_within(
        &self,
        query: &DesignQuery,
        window: f64,
    ) -> Option<(&DesignQuery, &DesignVerdict)> {
        let mut best: Option<(f64, &CacheEntry)> = None;
        for hash in &self.order {
            let Some(entry) = self.map.get(hash) else {
                continue;
            };
            if entry.query.family != query.family
                || entry.query.coolant != query.coolant
                || entry.query.bath != query.bath
            {
                continue;
            }
            let delta = (entry.query.utilization - query.utilization).abs();
            if delta.is_nan() || delta > window {
                continue;
            }
            match best {
                Some((best_delta, _)) if delta >= best_delta => {}
                _ => best = Some((delta, entry)),
            }
        }
        best.map(|(_, e)| (&e.query, &e.verdict))
    }
}

/// The batch scheduler: a [`QueryCache`] fronting
/// [`solve_query_resilient`].
///
/// [`run_batch`](Self::run_batch) records the golden counters
/// `query.requests`, `query.batch.runs`, `query.batch.coalesced`,
/// `query.cache.hits`, `query.cache.misses` and
/// `query.cache.evictions`, each mirrored into `profile.query.*` work
/// so the E18 profile golden pins the hit/miss ratio; resilience
/// events additionally land on `query.outcomes.*` and `resilience.*`
/// counters (recorded only when nonzero, so a clean batch's manifest
/// is unchanged).
#[derive(Clone)]
pub struct QueryEngine {
    cache: QueryCache,
    policy: ResiliencePolicy,
}

impl QueryEngine {
    /// An engine with an empty cache of the given capacity (zero means
    /// pass-through — see [`QueryCache::new`]) and the default
    /// [`ResiliencePolicy`].
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            cache: QueryCache::new(capacity),
            policy: ResiliencePolicy::default(),
        }
    }

    /// Replaces the resilience policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active resilience policy.
    #[must_use]
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// The cache, for inspection.
    #[must_use]
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Answers a batch of queries in input order, one [`QueryOutcome`]
    /// per request — this call never fails wholesale and never loses a
    /// request. Equivalent to [`run_batch_with`](Self::run_batch_with)
    /// under the fault-free [`NoFaults`] injector.
    pub fn run_batch(
        &mut self,
        queries: &[DesignQuery],
        threads: usize,
        obs: &Registry,
    ) -> Vec<QueryOutcome> {
        self.run_batch_with(queries, threads, obs, &NoFaults)
    }

    /// [`run_batch`](Self::run_batch) plus span attribution (see
    /// [`run_batch_with_spanned`](Self::run_batch_with_spanned)).
    pub fn run_batch_spanned(
        &mut self,
        queries: &[DesignQuery],
        threads: usize,
        obs: &Registry,
        spans: &SpanSink,
    ) -> Vec<QueryOutcome> {
        self.run_batch_with_spanned(queries, threads, obs, &NoFaults, spans)
    }

    /// [`run_batch`](Self::run_batch) with an explicit [`FaultInjector`]
    /// (the chaos-drill entry point).
    ///
    /// Four phases, only the second parallel:
    ///
    /// 1. a sequential lookup pass partitions requests into cache hits,
    ///    in-batch duplicates and distinct misses against the cache
    ///    state at batch entry;
    /// 2. the misses solve concurrently over
    ///    [`rcs_parallel::par_map_isolated_observed`] — each through
    ///    [`solve_query_resilient`]'s retry/budget ladder, each on its
    ///    own telemetry shard, panics contained per item;
    /// 3. successful verdicts enter the cache sequentially in
    ///    first-occurrence order (driving FIFO eviction), *even when
    ///    sibling requests failed*;
    /// 4. a sequential resolution pass assembles per-request outcomes:
    ///    failed requests are answered from the nearest cache entry
    ///    within the policy's degradation window (marked `Degraded`
    ///    with provenance; same-batch successes are eligible sources),
    ///    or `Failed` when nothing is close enough.
    ///
    /// The outcomes — and every golden counter — are bit-identical at
    /// any `threads`.
    pub fn run_batch_with(
        &mut self,
        queries: &[DesignQuery],
        threads: usize,
        obs: &Registry,
        injector: &dyn FaultInjector,
    ) -> Vec<QueryOutcome> {
        self.run_batch_with_spanned(queries, threads, obs, injector, SpanSink::disabled())
    }

    /// [`run_batch_with`](Self::run_batch_with) plus span attribution:
    /// the whole batch runs inside one `query.batch` span; every
    /// distinct miss solves inside a `req.<canonical hash>` child
    /// (absorbed in miss order via [`rcs_parallel::par_map_spanned`])
    /// with its retry ladder's `attempt` / `budget` spans nested
    /// inside; and every degraded resolution leaves a zero-width
    /// `degrade` marker on the batch span. Telemetry on `obs` is
    /// byte-identical to [`run_batch_with`](Self::run_batch_with).
    pub fn run_batch_with_spanned(
        &mut self,
        queries: &[DesignQuery],
        threads: usize,
        obs: &Registry,
        injector: &dyn FaultInjector,
        spans: &SpanSink,
    ) -> Vec<QueryOutcome> {
        obs.inc("query.batch.runs");
        spans.enter("query.batch", obs);
        obs.add("query.requests", queries.len() as u64);
        obs.work("query.requests", queries.len() as u64);

        // Phase 1: sequential lookup against the batch-entry cache state.
        enum Slot {
            Hit(DesignVerdict),
            Miss(usize),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(u64, DesignQuery)> = Vec::new();
        let mut miss_index: HashMap<u64, usize> = HashMap::new();
        let mut hits = 0u64;
        let mut coalesced = 0u64;
        for query in queries {
            let hash = query.canonical_hash();
            if let Some(verdict) = self.cache.lookup(hash, query) {
                hits += 1;
                slots.push(Slot::Hit(verdict.clone()));
            } else if let Some(&i) = miss_index.get(&hash).filter(|&&i| misses[i].1 == *query) {
                coalesced += 1;
                slots.push(Slot::Miss(i));
            } else {
                let i = misses.len();
                miss_index.insert(hash, i);
                misses.push((hash, query.clone()));
                slots.push(Slot::Miss(i));
            }
        }
        obs.add("query.cache.hits", hits);
        obs.work("query.cache.hits", hits);
        obs.add("query.cache.misses", misses.len() as u64);
        obs.work("query.cache.misses", misses.len() as u64);
        obs.add("query.batch.coalesced", coalesced);
        obs.work("query.batch.coalesced", coalesced);

        // Phase 2: solve distinct misses concurrently through the
        // resilience ladder; results and telemetry shards come back in
        // miss order. The outer isolation is belt-and-braces — the
        // ladder already catches per-attempt panics — so an escaped
        // panic costs exactly one request, never the batch.
        let policy = self.policy;
        let labels: Vec<String> = misses
            .iter()
            .map(|(hash, _)| format!("req.{hash:016x}"))
            .collect();
        let solved = rcs_parallel::par_map_spanned(
            misses,
            threads,
            obs,
            rcs_obs::trace::TraceRecorder::disabled(),
            spans,
            |i| labels[i].clone(),
            |_, (hash, query), shard, _, shard_spans| {
                let result =
                    solve_query_resilient_spanned(&query, &policy, injector, shard, shard_spans);
                (hash, query, result)
            },
        );

        // Phase 3: sequential insertion in miss order drives FIFO
        // eviction deterministically. Successes are cached even when
        // sibling requests failed.
        let mut evictions = 0u64;
        let mut fresh: Vec<Result<DesignVerdict, QueryError>> = Vec::with_capacity(solved.len());
        for item in solved {
            match item {
                Ok((hash, query, Ok(verdict))) => {
                    if self.cache.insert(hash, query, verdict.clone()).is_some() {
                        evictions += 1;
                    }
                    fresh.push(Ok(verdict));
                }
                Ok((_, _, Err(e))) => fresh.push(Err(e)),
                Err(panic) => fresh.push(Err(QueryError::WorkerPanic {
                    message: panic.message,
                })),
            }
        }
        obs.add("query.cache.evictions", evictions);
        obs.work("query.cache.evictions", evictions);

        // Phase 4: sequential resolution in request order. Runs after
        // insertion so same-batch successes can serve as degradation
        // sources.
        let mut ok_n = 0u64;
        let mut degraded_n = 0u64;
        let mut failed_n = 0u64;
        let mut outcomes = Vec::with_capacity(queries.len());
        for (query, slot) in queries.iter().zip(slots) {
            let outcome = match slot {
                Slot::Hit(v) => QueryOutcome::Ok(v),
                Slot::Miss(i) => match &fresh[i] {
                    Ok(v) => QueryOutcome::Ok(v.clone()),
                    Err(e) => match self.cache.nearest_within(query, self.policy.degrade_window) {
                        Some((source, verdict)) => QueryOutcome::Degraded {
                            verdict: verdict.clone(),
                            provenance: DegradedProvenance {
                                requested_hash: query.canonical_hash(),
                                source_hash: source.canonical_hash(),
                                delta_utilization: (source.utilization - query.utilization).abs(),
                                error: e.clone(),
                            },
                        },
                        None => QueryOutcome::Failed(e.clone()),
                    },
                },
            };
            match &outcome {
                QueryOutcome::Ok(_) => ok_n += 1,
                QueryOutcome::Degraded { .. } => {
                    degraded_n += 1;
                    // zero-width marker: a degraded answer was served
                    spans.enter("degrade", obs);
                    spans.exit(obs);
                }
                QueryOutcome::Failed(_) => failed_n += 1,
            }
            outcomes.push(outcome);
        }
        // Outcome tallies are event-driven (absent when zero) so a
        // clean batch's golden manifest — and the pinned E18 profile —
        // is byte-identical to the pre-resilience engine's.
        if degraded_n > 0 {
            obs.add("query.outcomes.degraded", degraded_n);
            obs.add("resilience.degraded.served", degraded_n);
            obs.work("resilience.degraded.served", degraded_n);
        }
        if failed_n > 0 {
            obs.add("query.outcomes.failed", failed_n);
            obs.add("resilience.degraded.unavailable", failed_n);
            obs.work("resilience.degraded.unavailable", failed_n);
        }
        if degraded_n > 0 || failed_n > 0 {
            obs.add("query.outcomes.ok", ok_n);
        }
        spans.exit(obs);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(spec: &str) -> DesignQuery {
        DesignQuery::parse(spec).expect("valid spec")
    }

    #[test]
    fn spec_round_trips() {
        let a = q(
            "family=skat_plus coolant=mineral_oil_md45 bath=skat_plus util=0.7 trials=32 seed=9",
        );
        assert_eq!(q(&a.spec()), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DesignQuery::parse("family=skat util=1.5").is_err());
        assert!(DesignQuery::parse("family=skat trials=0").is_err());
        assert!(DesignQuery::parse("family=skat family=skat").is_err());
        assert!(
            DesignQuery::parse("util=0.5").is_err(),
            "family is required"
        );
        assert!(DesignQuery::parse("family=skat color=red").is_err());
        assert!(DesignQuery::parse("family skat").is_err());
    }

    #[test]
    fn distinct_queries_get_distinct_hashes() {
        let base = q("family=skat");
        for other in [
            q("family=taygeta"),
            q("family=skat util=0.8"),
            q("family=skat trials=255"),
            q("family=skat seed=43"),
            q("family=skat bath=skat_plus"),
            q("family=skat coolant=mineral_oil_md45"),
        ] {
            assert_ne!(base.canonical_hash(), other.canonical_hash(), "{other:?}");
        }
    }

    #[test]
    fn cache_fifo_evicts_in_insertion_order() {
        let mut cache = QueryCache::new(2);
        let mk = |seed: u64| {
            let query = q(&format!("family=skat seed={seed}"));
            let hash = query.canonical_hash();
            let verdict = DesignVerdict {
                query_hash: hash,
                junction_c: 0.0,
                coolant_hot_c: 0.0,
                coolant_cold_c: 0.0,
                total_heat_w: 0.0,
                cooling_overhead: 0.0,
                availability_mean: 1.0,
                availability_p05: 1.0,
                annual_energy_kwh: 0.0,
                compliant: true,
            };
            (hash, query, verdict)
        };
        let (h1, q1, v1) = mk(1);
        let (h2, q2, v2) = mk(2);
        let (h3, q3, v3) = mk(3);
        assert_eq!(cache.insert(h1, q1.clone(), v1), None);
        assert_eq!(cache.insert(h2, q2, v2), None);
        assert_eq!(
            cache.insert(h3, q3.clone(), v3),
            Some(h1),
            "oldest goes first"
        );
        assert_eq!(cache.keys_in_eviction_order(), vec![h2, h3]);
        assert!(cache.lookup(h1, &q1).is_none());
        assert!(cache.lookup(h3, &q3).is_some());
    }

    #[test]
    fn cache_lookup_guards_against_collisions() {
        let mut cache = QueryCache::new(2);
        let stored = q("family=skat seed=1");
        let probe = q("family=skat seed=2");
        let hash = stored.canonical_hash();
        let verdict = DesignVerdict {
            query_hash: hash,
            junction_c: 0.0,
            coolant_hot_c: 0.0,
            coolant_cold_c: 0.0,
            total_heat_w: 0.0,
            cooling_overhead: 0.0,
            availability_mean: 1.0,
            availability_p05: 1.0,
            annual_energy_kwh: 0.0,
            compliant: true,
        };
        cache.insert(hash, stored.clone(), verdict);
        // Pretend probe collided onto the same hash: equality must veto.
        assert!(cache.lookup(hash, &probe).is_none());
        assert!(cache.lookup(hash, &stored).is_some());
    }
}
