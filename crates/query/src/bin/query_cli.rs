//! Batch front end of the design-query service.
//!
//! Each positional argument is one `key=value` query spec (see
//! `DesignQuery::parse`); `--file PATH` appends one spec per line
//! (blank lines and `#` comments skipped); `--demo` appends the E18
//! grid. All requests run as one batch through a shared cache, so
//! duplicated specs are answered by one solve:
//!
//! ```text
//! query_cli "family=skat util=0.85" "family=skat_plus bath=skat_plus util=1.0"
//! query_cli --demo --capacity 8
//! ```
//!
//! Options: `--capacity N` (cache slots, default 32), `--threads N`
//! (default `RCS_THREADS` / host parallelism). A bad spec or a rejected
//! design point fails only its own request: every request gets a status
//! line (`ok` / `degraded` / `failed` plus the reason), answered
//! requests still print their verdicts, and the exit code is nonzero
//! only when *all* requests fail.

use std::process::ExitCode;

use rcs_core::experiments::Table;
use rcs_obs::Registry;
use rcs_query::{e18_query_service, DesignQuery, QueryEngine, QueryOutcome};

fn usage() -> &'static str {
    "usage: query_cli [--capacity N] [--threads N] [--file PATH] [--demo] [SPEC...]\n\
     each SPEC is key=value pairs, e.g. \"family=skat coolant=src_dielectric \
     bath=skat util=0.85 trials=256 seed=42\""
}

/// One request as given on the command line: either a parsed query or
/// a spec that already failed at the parser (kept so it still gets a
/// status line instead of aborting the batch).
enum Request {
    Parsed(DesignQuery),
    Bad { spec: String, error: String },
}

fn push_spec(requests: &mut Vec<Request>, spec: &str) {
    match DesignQuery::parse(spec) {
        Ok(query) => requests.push(Request::Parsed(query)),
        Err(e) => requests.push(Request::Bad {
            spec: spec.to_owned(),
            error: e.to_string(),
        }),
    }
}

fn parse_args() -> Result<(usize, usize, Vec<Request>), String> {
    let mut capacity = 32usize;
    let mut threads = rcs_parallel::thread_count();
    let mut requests = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--capacity" | "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a value\n{}", usage()))?;
                let n: usize = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("{arg} needs a positive integer, got {value:?}"))?;
                if arg == "--capacity" {
                    capacity = n;
                } else {
                    threads = n;
                }
            }
            "--file" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("--file needs a path\n{}", usage()))?;
                let body = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                for line in body.lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    push_spec(&mut requests, line);
                }
            }
            "--demo" => {
                requests.extend(e18_query_service::batch().into_iter().map(Request::Parsed));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            spec => push_spec(&mut requests, spec),
        }
    }
    if requests.is_empty() {
        return Err(format!("no queries given\n{}", usage()));
    }
    Ok((capacity, threads, requests))
}

fn main() -> ExitCode {
    let (capacity, threads, requests) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("query_cli: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let queries: Vec<DesignQuery> = requests
        .iter()
        .filter_map(|r| match r {
            Request::Parsed(q) => Some(q.clone()),
            Request::Bad { .. } => None,
        })
        .collect();

    let obs = Registry::new();
    let mut engine = QueryEngine::new(capacity);
    let outcomes = engine.run_batch(&queries, threads, &obs);

    // Per-request status lines, in request order; parse failures slot
    // back in between the solved outcomes.
    let mut answered = 0usize;
    let mut verdict_rows = Vec::new();
    let mut outcome_iter = queries.iter().zip(&outcomes);
    for (i, request) in requests.iter().enumerate() {
        let n = i + 1;
        match request {
            Request::Bad { spec, error } => {
                println!("[{n:3}] failed    {spec} :: {error}");
            }
            Request::Parsed(_) => {
                let Some((query, outcome)) = outcome_iter.next() else {
                    break;
                };
                match outcome {
                    QueryOutcome::Ok(_) => println!("[{n:3}] ok        {}", query.spec()),
                    QueryOutcome::Degraded { provenance, .. } => println!(
                        "[{n:3}] degraded  {} :: served from {:016x} (Δutil {:.3}) after: {}",
                        query.spec(),
                        provenance.source_hash,
                        provenance.delta_utilization,
                        provenance.error,
                    ),
                    QueryOutcome::Failed(e) => {
                        println!("[{n:3}] failed    {} :: {e}", query.spec());
                    }
                }
                if let Some(v) = outcome.verdict() {
                    answered += 1;
                    verdict_rows.push(vec![
                        query.spec(),
                        if outcome.is_degraded() {
                            "degraded"
                        } else {
                            "ok"
                        }
                        .to_owned(),
                        format!("{:016x}", v.query_hash),
                        format!("{:.1}", v.junction_c),
                        format!("{:.3}", v.cooling_overhead),
                        format!("{:.6}", v.availability_mean),
                        format!("{:.1}", v.annual_energy_kwh),
                        if v.compliant { "yes" } else { "no" }.to_owned(),
                    ]);
                }
            }
        }
    }

    if !verdict_rows.is_empty() {
        print!(
            "{}",
            Table::new(
                format!(
                    "design-query verdicts ({answered} of {} requests answered, {threads} threads)",
                    requests.len()
                ),
                &[
                    "query",
                    "status",
                    "hash",
                    "junction [°C]",
                    "overhead",
                    "avail (mean)",
                    "annual [kWh]",
                    "compliant",
                ],
                verdict_rows,
            )
        );
    }

    let snap = obs.snapshot();
    println!(
        "cache: {} hits, {} misses, {} coalesced, {} evictions ({} resident / capacity {capacity})",
        snap.counter("query.cache.hits"),
        snap.counter("query.cache.misses"),
        snap.counter("query.batch.coalesced"),
        snap.counter("query.cache.evictions"),
        engine.cache().len(),
    );

    if answered == 0 {
        eprintln!("query_cli: all {} requests failed", requests.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
