//! Batch front end of the design-query service.
//!
//! Each positional argument is one `key=value` query spec (see
//! `DesignQuery::parse`); `--file PATH` appends one spec per line
//! (blank lines and `#` comments skipped); `--demo` appends the E18
//! grid. All requests run as one batch through a shared cache, so
//! duplicated specs are answered by one solve:
//!
//! ```text
//! query_cli "family=skat util=0.85" "family=skat_plus bath=skat_plus util=1.0"
//! query_cli --demo --capacity 8
//! ```
//!
//! Options: `--capacity N` (cache slots, default 32), `--threads N`
//! (default `RCS_THREADS` / host parallelism). Exits nonzero on a bad
//! spec or a design point the solvers reject.

use std::process::ExitCode;

use rcs_core::experiments::Table;
use rcs_obs::Registry;
use rcs_query::{e18_query_service, DesignQuery, QueryEngine};

fn usage() -> &'static str {
    "usage: query_cli [--capacity N] [--threads N] [--file PATH] [--demo] [SPEC...]\n\
     each SPEC is key=value pairs, e.g. \"family=skat coolant=src_dielectric \
     bath=skat util=0.85 trials=256 seed=42\""
}

fn parse_args() -> Result<(usize, usize, Vec<DesignQuery>), String> {
    let mut capacity = 32usize;
    let mut threads = rcs_parallel::thread_count();
    let mut queries = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--capacity" | "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a value\n{}", usage()))?;
                let n: usize = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("{arg} needs a positive integer, got {value:?}"))?;
                if arg == "--capacity" {
                    capacity = n;
                } else {
                    threads = n;
                }
            }
            "--file" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("--file needs a path\n{}", usage()))?;
                let body = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                for line in body.lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    queries.push(DesignQuery::parse(line).map_err(|e| e.to_string())?);
                }
            }
            "--demo" => queries.extend(e18_query_service::batch()),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            spec => queries.push(DesignQuery::parse(spec).map_err(|e| e.to_string())?),
        }
    }
    if queries.is_empty() {
        return Err(format!("no queries given\n{}", usage()));
    }
    Ok((capacity, threads, queries))
}

fn main() -> ExitCode {
    let (capacity, threads, queries) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("query_cli: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let obs = Registry::new();
    let mut engine = QueryEngine::new(capacity);
    let verdicts = match engine.run_batch(&queries, threads, &obs) {
        Ok(verdicts) => verdicts,
        Err(e) => {
            eprintln!("query_cli: {e}");
            return ExitCode::FAILURE;
        }
    };

    let rows = queries
        .iter()
        .zip(&verdicts)
        .map(|(q, v)| {
            vec![
                q.spec(),
                format!("{:016x}", v.query_hash),
                format!("{:.1}", v.junction_c),
                format!("{:.3}", v.cooling_overhead),
                format!("{:.6}", v.availability_mean),
                format!("{:.1}", v.annual_energy_kwh),
                if v.compliant { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        Table::new(
            format!(
                "design-query verdicts ({} requests, {threads} threads)",
                queries.len()
            ),
            &[
                "query",
                "hash",
                "junction [°C]",
                "overhead",
                "avail (mean)",
                "annual [kWh]",
                "compliant",
            ],
            rows,
        )
    );

    let snap = obs.snapshot();
    println!(
        "cache: {} hits, {} misses, {} coalesced, {} evictions ({} resident / capacity {capacity})",
        snap.counter("query.cache.hits"),
        snap.counter("query.cache.misses"),
        snap.counter("query.batch.coalesced"),
        snap.counter("query.cache.evictions"),
        engine.cache().len(),
    );
    ExitCode::SUCCESS
}
