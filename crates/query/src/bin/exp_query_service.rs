//! Prints the E18 design-query-service tables (see DESIGN.md) and emits
//! an NDJSON run manifest (`RCS_OBS_MANIFEST` file, else stderr) whose
//! `query.*` golden counters and `profile.query.*` work mirrors pin the
//! cache hit/miss/eviction schedule of the experiment. When
//! `RCS_OBS_SPANS` names a file the per-request golden span tree is
//! appended to it (NDJSON, or a Chrome trace-event document for a
//! `.json` path).

use rcs_obs::span::SpanSink;
use rcs_obs::Registry;
use rcs_query::e18_query_service;

fn main() {
    let obs = Registry::new();
    let spans = SpanSink::from_env();
    let tables = e18_query_service::run_spanned(&obs, &spans);
    rcs_core::experiments::finish_run(
        "e18_query_service",
        Some(e18_query_service::SEED),
        &tables,
        &obs,
    );
    rcs_obs::span::emit(&spans.snapshot());
}
