//! Prints the E18 design-query-service tables (see DESIGN.md) and emits
//! an NDJSON run manifest (`RCS_OBS_MANIFEST` file, else stderr) whose
//! `query.*` golden counters and `profile.query.*` work mirrors pin the
//! cache hit/miss/eviction schedule of the experiment.

use rcs_obs::Registry;
use rcs_query::e18_query_service;

fn main() {
    let obs = Registry::new();
    let tables = e18_query_service::run(&obs);
    rcs_core::experiments::finish_run(
        "e18_query_service",
        Some(e18_query_service::SEED),
        &tables,
        &obs,
    );
}
