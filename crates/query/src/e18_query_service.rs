//! **E18** — the design-query service exercised end to end.
//!
//! A fixed family × utilization grid (plus two intentionally duplicated
//! requests) is pushed through one [`QueryEngine`] three times, with a
//! cache deliberately too small for the grid. The first round is all
//! misses, the repeats are a deterministic mix of hits and re-solves of
//! whatever FIFO eviction dropped, and the per-round counter table makes
//! that schedule a printed artifact. The `profile.query.*` work counters
//! land in the run manifest, so the committed profile golden pins the
//! hit/miss/eviction ratio of this experiment exactly.

use rcs_core::experiments::Table;
use rcs_obs::Registry;

use crate::{BathVariant, CoolantChoice, DesignQuery, DeviceFamily, QueryEngine};

/// Monte-Carlo seed shared by every query of the grid.
pub const SEED: u64 = 20210923;

/// Cache capacity — deliberately smaller than the 12-point grid, so
/// every round evicts.
pub const CAPACITY: usize = 8;

/// How many times the same batch is replayed.
pub const ROUNDS: usize = 3;

/// Availability trial budget per query.
pub const TRIALS: u32 = 160;

/// The E18 request batch: four module generations at three utilization
/// levels in the SRC dielectric (SKAT+ module in the SKAT+ bath), plus
/// two duplicated requests that the scheduler must coalesce.
#[must_use]
pub fn batch() -> Vec<DesignQuery> {
    let mut out = Vec::new();
    for family in [
        DeviceFamily::Rigel2,
        DeviceFamily::Taygeta,
        DeviceFamily::Skat,
        DeviceFamily::SkatPlus,
    ] {
        let bath = if family == DeviceFamily::SkatPlus {
            BathVariant::SkatPlus
        } else {
            BathVariant::Skat
        };
        for utilization in [0.60, 0.85, 1.00] {
            out.push(DesignQuery {
                family,
                coolant: CoolantChoice::SrcDielectric,
                bath,
                utilization,
                trials: TRIALS,
                seed: SEED,
            });
        }
    }
    // In-batch duplicates: same content address, one solve.
    out.push(out[0].clone());
    out.push(out[1].clone());
    out
}

/// Runs the experiment: [`ROUNDS`] replays of [`batch`] through one
/// engine, returning the verdict grid (from the final, cache-mixed
/// round — bit-identical to the first by the determinism contract) and
/// the per-round cache-behaviour table.
///
/// # Panics
///
/// Panics if any grid point fails to converge — every E18 point is a
/// known-good immersion design.
#[must_use]
pub fn run(obs: &Registry) -> Vec<Table> {
    run_spanned(obs, rcs_obs::span::SpanSink::disabled())
}

/// [`run`] plus span attribution: each replay round runs inside a
/// `round` span whose `query.batch` child carries the per-request
/// `req.<hash>` spans. Telemetry on `obs` is byte-identical to [`run`].
///
/// # Panics
///
/// Same contract as [`run`].
#[must_use]
pub fn run_spanned(obs: &Registry, spans: &rcs_obs::span::SpanSink) -> Vec<Table> {
    let queries = batch();
    let threads = rcs_parallel::thread_count();
    let mut engine = QueryEngine::new(CAPACITY);

    let mut round_rows = Vec::new();
    let mut last = Vec::new();
    let mut prev = obs.snapshot();
    for round in 1..=ROUNDS {
        spans.enter("round", obs);
        last = engine
            .run_batch_spanned(&queries, threads, obs, spans)
            .into_iter()
            .map(|outcome| match outcome {
                crate::QueryOutcome::Ok(verdict) => verdict,
                other => panic!("E18 design points converge exactly, got {other:?}"),
            })
            .collect();
        let snap = obs.snapshot();
        let delta = |name: &str| (snap.counter(name) - prev.counter(name)).to_string();
        round_rows.push(vec![
            round.to_string(),
            delta("query.requests"),
            delta("query.cache.hits"),
            delta("query.cache.misses"),
            delta("query.batch.coalesced"),
            delta("query.cache.evictions"),
            engine.cache().len().to_string(),
        ]);
        prev = snap;
        spans.exit(obs);
    }

    let verdict_rows = queries
        .iter()
        .zip(&last)
        .take(queries.len() - 2) // the two duplicates add no new row
        .map(|(q, v)| {
            vec![
                q.family.key().to_owned(),
                q.bath.key().to_owned(),
                format!("{:.2}", q.utilization),
                format!("{:016x}", q.canonical_hash()),
                format!("{:.1}", v.junction_c),
                format!("{:.3}", v.cooling_overhead),
                format!("{:.6}", v.availability_mean),
                format!("{:.2}", v.annual_energy_kwh / 1e3),
                if v.compliant { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();

    vec![
        Table::new(
            format!(
                "E18 — design-query verdicts, family × utilization grid \
                 (seed {SEED}, {TRIALS} MC trials, {HORIZON:.0} y horizon)",
                HORIZON = crate::HORIZON_YEARS
            ),
            &[
                "family",
                "bath",
                "util",
                "query hash",
                "junction [°C]",
                "overhead",
                "avail (mean)",
                "annual [MWh]",
                "compliant",
            ],
            verdict_rows,
        ),
        Table::new(
            format!("E18 — query-cache behaviour, {ROUNDS}× same batch, capacity {CAPACITY}"),
            &[
                "round",
                "requests",
                "hits",
                "misses",
                "coalesced",
                "evictions",
                "resident",
            ],
            round_rows,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned cache schedule: 14 requests × 3 rounds against an
    /// 8-slot FIFO cache partition into exactly these counters. This is
    /// the same ratio the E18 profile golden freezes in CI.
    #[test]
    fn cache_schedule_is_pinned() {
        let obs = Registry::new();
        let _tables = run(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("query.requests"), 42);
        assert_eq!(snap.counter("query.cache.hits"), 18);
        assert_eq!(snap.counter("query.cache.misses"), 20);
        assert_eq!(snap.counter("query.batch.coalesced"), 4);
        assert_eq!(snap.counter("query.cache.evictions"), 12);
        // The work mirrors carry the same values into the profile.
        assert_eq!(snap.counter("profile.query.cache.hits"), 18);
        assert_eq!(snap.counter("profile.query.cache.misses"), 20);
    }

    #[test]
    fn batch_has_exactly_two_duplicates() {
        let queries = batch();
        assert_eq!(queries.len(), 14);
        let mut hashes: Vec<u64> = queries.iter().map(DesignQuery::canonical_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 12);
    }
}
