//! The query-service determinism contract, end to end: identical bytes
//! at every thread count, cache hits bit-equal to cold recomputation,
//! deterministic FIFO eviction, and spec canonicalization.

use rcs_obs::Registry;
use rcs_query::{solve_query, DesignQuery, DesignVerdict, QueryEngine, QueryOutcome};

/// Unwraps a batch of outcomes into exact verdicts — every query in
/// these tests is a known-good design point.
fn verdicts(outcomes: Vec<QueryOutcome>) -> Vec<DesignVerdict> {
    outcomes
        .into_iter()
        .map(|o| match o {
            QueryOutcome::Ok(v) => v,
            other => panic!("expected exact verdict, got {other:?}"),
        })
        .collect()
}

/// A small mixed batch: three families, two baths, one duplicate.
fn batch() -> Vec<DesignQuery> {
    let specs = [
        "family=skat util=0.85 trials=48 seed=11",
        "family=rigel2 util=0.60 trials=48 seed=11",
        "family=skat_plus bath=skat_plus util=1.0 trials=48 seed=11",
        "family=taygeta util=0.75 trials=48 seed=11",
        "family=skat util=0.85 trials=48 seed=11", // duplicate of [0]
    ];
    specs
        .iter()
        .map(|s| DesignQuery::parse(s).expect("valid spec"))
        .collect()
}

fn assert_all_bitwise_eq(a: &[DesignVerdict], b: &[DesignVerdict], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.bitwise_eq(y),
            "{what}: verdict {i} differs:\n{x:?}\nvs\n{y:?}"
        );
    }
}

#[test]
fn batch_results_are_bit_identical_at_every_thread_count() {
    let queries = batch();
    let reference_obs = Registry::new();
    let reference = verdicts(QueryEngine::new(8).run_batch(&queries, 1, &reference_obs));
    let reference_snap = reference_obs.snapshot();

    for threads in [2, 4] {
        let obs = Registry::new();
        let got = verdicts(QueryEngine::new(8).run_batch(&queries, threads, &obs));
        assert_all_bitwise_eq(&reference, &got, &format!("threads={threads}"));

        // The golden counters are part of the contract too.
        let snap = obs.snapshot();
        for name in [
            "query.requests",
            "query.cache.hits",
            "query.cache.misses",
            "query.batch.coalesced",
            "query.cache.evictions",
            "profile.query.cache.hits",
            "profile.query.cache.misses",
        ] {
            assert_eq!(
                reference_snap.counter(name),
                snap.counter(name),
                "counter {name} at threads={threads}"
            );
        }
    }
}

#[test]
fn cache_hits_are_bit_identical_to_cold_recomputation() {
    let queries = batch();
    for threads in [1, 2, 4] {
        let obs = Registry::new();
        let mut engine = QueryEngine::new(8);
        let cold = verdicts(engine.run_batch(&queries, threads, &obs));
        assert_eq!(obs.snapshot().counter("query.cache.hits"), 0);

        // Second pass: everything resident, served from the cache.
        let warm = verdicts(engine.run_batch(&queries, threads, &obs));
        assert_eq!(
            obs.snapshot().counter("query.cache.hits"),
            queries.len() as u64,
            "second pass must be all hits"
        );
        assert_all_bitwise_eq(&cold, &warm, &format!("warm-vs-cold threads={threads}"));

        // And both equal a direct, engine-free solve.
        let direct = solve_query(&queries[0], Registry::disabled()).expect("direct solve");
        assert!(direct.bitwise_eq(&cold[0]), "direct-vs-batch");
    }
}

#[test]
fn eviction_order_is_deterministic_and_thread_invariant() {
    let queries = batch(); // 4 distinct + 1 duplicate
    let expected_survivors: Vec<u64> = queries[2..4]
        .iter()
        .map(DesignQuery::canonical_hash)
        .collect();

    let mut orders = Vec::new();
    for threads in [1, 2, 4] {
        let obs = Registry::new();
        let mut engine = QueryEngine::new(2);
        verdicts(engine.run_batch(&queries, threads, &obs));
        // Four distinct misses through a 2-slot FIFO: the first two
        // inserts were evicted by the last two, in insertion order.
        assert_eq!(obs.snapshot().counter("query.cache.evictions"), 2);
        assert_eq!(engine.cache().keys_in_eviction_order(), expected_survivors);
        orders.push(engine.cache().keys_in_eviction_order());
    }
    assert!(orders.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn permuted_specs_share_one_canonical_hash() {
    let spellings = [
        "family=skat_plus coolant=src_dielectric bath=skat_plus util=0.9 trials=64 seed=5",
        "seed=5 trials=64 util=0.9 bath=skat_plus coolant=src_dielectric family=skat_plus",
        "bath=skat_plus, family=skat_plus, util=0.9, seed=5, coolant=src_dielectric, trials=64",
    ];
    let hashes: Vec<u64> = spellings
        .iter()
        .map(|s| DesignQuery::parse(s).expect("valid").canonical_hash())
        .collect();
    assert!(hashes.windows(2).all(|w| w[0] == w[1]), "{hashes:?}");

    // Defaults spelled out hash the same as defaults left implicit.
    let implicit = DesignQuery::parse("family=skat").expect("valid");
    let explicit = DesignQuery::parse(
        "family=skat coolant=src_dielectric bath=skat util=0.85 trials=256 seed=42",
    )
    .expect("valid");
    assert_eq!(implicit.canonical_hash(), explicit.canonical_hash());

    // And a one-field change lands elsewhere.
    let other = DesignQuery::parse("family=skat util=0.8").expect("valid");
    assert_ne!(implicit.canonical_hash(), other.canonical_hash());
}
