//! The engine-level resilience contract: per-request containment,
//! deterministic retry/budget ladders, graceful degradation, the
//! zero-capacity cache, and the stability of error formatting.

use rcs_obs::Registry;
use rcs_query::{
    solve_query, DesignQuery, FaultInjector, InjectedFault, QueryCache, QueryEngine, QueryError,
    QueryOutcome, ResiliencePolicy, SolveDiagnostics,
};

fn q(spec: &str) -> DesignQuery {
    DesignQuery::parse(spec).expect("valid spec")
}

/// Injects one fixed fault into every attempt of queries whose
/// utilization matches `target` (bit-compared), clean otherwise.
struct FaultAt {
    target: f64,
    fault: InjectedFault,
}

impl FaultInjector for FaultAt {
    fn fault_for(&self, query: &DesignQuery, _attempt: u32) -> Option<InjectedFault> {
        (query.utilization.to_bits() == self.target.to_bits()).then_some(self.fault)
    }
}

/// Injects a fault only into attempt 0 of the matching query — the
/// transient-fault shape the retry ladder is meant to absorb.
struct TransientAt {
    target: f64,
    fault: InjectedFault,
}

impl FaultInjector for TransientAt {
    fn fault_for(&self, query: &DesignQuery, attempt: u32) -> Option<InjectedFault> {
        (attempt == 0 && query.utilization.to_bits() == self.target.to_bits()).then_some(self.fault)
    }
}

#[test]
fn zero_capacity_cache_is_a_pure_pass_through() {
    let mut cache = QueryCache::new(0);
    assert_eq!(cache.capacity(), 0);
    let query = q("family=skat trials=8");
    let hash = query.canonical_hash();
    let verdict = solve_query(&query, Registry::disabled()).expect("solves");

    // Insert is a no-op: nothing stored, nothing "evicted".
    assert_eq!(cache.insert(hash, query.clone(), verdict.clone()), None);
    assert!(cache.is_empty());
    assert_eq!(cache.len(), 0);
    assert!(cache.lookup(hash, &query).is_none());
    assert!(cache.keys_in_eviction_order().is_empty());
    assert!(cache.nearest_within(&query, 1.0).is_none());
}

#[test]
fn zero_capacity_engine_solves_every_round_without_eviction_churn() {
    let queries = vec![
        q("family=skat util=0.6 trials=8"),
        q("family=skat util=0.8 trials=8"),
    ];
    let obs = Registry::new();
    let mut engine = QueryEngine::new(0);
    for round in 1..=2 {
        let outcomes = engine.run_batch(&queries, 2, &obs);
        assert!(outcomes.iter().all(QueryOutcome::is_ok), "round {round}");
    }
    let snap = obs.snapshot();
    // Every request re-solves: no hits, no churn, no underflow.
    assert_eq!(snap.counter("query.cache.hits"), 0);
    assert_eq!(snap.counter("query.cache.misses"), 4);
    assert_eq!(snap.counter("query.cache.evictions"), 0);
    assert_eq!(engine.cache().len(), 0);
}

#[test]
fn error_classification_is_structural() {
    let retryable = [
        QueryError::NoConvergence {
            diagnostics: SolveDiagnostics {
                rungs_attempted: 3,
                iterations: 1200,
                last_residual: Some(0.5),
            },
        },
        QueryError::WorkerPanic {
            message: "boom".into(),
        },
    ];
    let fatal = [
        QueryError::Parse("bad".into()),
        QueryError::InvalidDesign {
            reason: "utilization NaN outside [0, 1]".into(),
        },
        QueryError::BudgetExhausted {
            spent: 10,
            budget: 5,
        },
    ];
    assert!(retryable.iter().all(QueryError::is_retryable));
    assert!(!fatal.iter().any(QueryError::is_retryable));
}

#[test]
fn display_prefixes_stay_stable() {
    assert_eq!(
        QueryError::Parse("bad key".into()).to_string(),
        "query parse error: bad key"
    );
    let nc = QueryError::NoConvergence {
        diagnostics: SolveDiagnostics {
            rungs_attempted: 2,
            iterations: 400,
            last_residual: None,
        },
    };
    assert!(nc.to_string().starts_with("query solve error: "), "{nc}");
    let invalid = QueryError::InvalidDesign {
        reason: "trials must be positive".into(),
    };
    assert_eq!(
        invalid.to_string(),
        "query solve error: trials must be positive"
    );
    assert_eq!(
        QueryError::WorkerPanic {
            message: "boom".into()
        }
        .to_string(),
        "query worker panic: boom"
    );
    assert_eq!(
        QueryError::BudgetExhausted {
            spent: 12,
            budget: 10
        }
        .to_string(),
        "query budget exhausted: 12 of 10 work units spent"
    );
}

#[test]
fn invalid_inputs_fail_fast_without_panicking_workers() {
    // A NaN utilization reaches the engine only via injection or direct
    // construction — either way it must become a structured fatal
    // error, not an assert inside the device layer.
    let mut poisoned = q("family=skat trials=8");
    poisoned.utilization = f64::NAN;
    let err = solve_query(&poisoned, Registry::disabled()).expect_err("NaN must be rejected");
    assert!(matches!(err, QueryError::InvalidDesign { .. }), "{err:?}");
    assert!(!err.is_retryable());

    let mut zero_trials = q("family=skat trials=8");
    zero_trials.trials = 0;
    let err = solve_query(&zero_trials, Registry::disabled()).expect_err("0 trials rejected");
    assert!(matches!(err, QueryError::InvalidDesign { .. }), "{err:?}");
}

#[test]
fn transient_panic_is_retried_and_recovers() {
    let queries = vec![q("family=skat util=0.7 trials=8")];
    let injector = TransientAt {
        target: 0.7,
        fault: InjectedFault::Panic,
    };
    let obs = Registry::new();
    let mut engine = QueryEngine::new(4);
    let outcomes = engine.run_batch_with(&queries, 1, &obs, &injector);
    assert!(outcomes[0].is_ok(), "{:?}", outcomes[0]);

    let snap = obs.snapshot();
    assert_eq!(snap.counter("resilience.worker.panics"), 1);
    assert_eq!(snap.counter("resilience.injected.panics"), 1);
    assert_eq!(snap.counter("resilience.retry.attempts"), 1);
    assert_eq!(snap.counter("resilience.retry.recoveries"), 1);
    // Profile mirrors carry the events into the work tree.
    assert_eq!(snap.counter("profile.resilience.worker.panics"), 1);
}

#[test]
fn persistent_panic_exhausts_the_ladder_and_fails_only_itself() {
    let queries = vec![
        q("family=skat util=0.6 trials=8"),
        q("family=skat util=0.7 trials=8"), // the cursed one
        q("family=skat util=0.8 trials=8"),
    ];
    let injector = FaultAt {
        target: 0.7,
        fault: InjectedFault::Panic,
    };
    let obs = Registry::new();
    let mut engine = QueryEngine::new(4).with_policy(ResiliencePolicy {
        degrade_window: 0.0, // disable degradation to see the raw failure
        ..ResiliencePolicy::default()
    });
    let outcomes = engine.run_batch_with(&queries, 2, &obs, &injector);
    assert_eq!(outcomes.len(), 3, "no request may be lost");
    assert!(outcomes[0].is_ok());
    assert!(outcomes[2].is_ok());
    let err = outcomes[1].error().expect("cursed query fails");
    assert!(matches!(err, QueryError::WorkerPanic { .. }), "{err:?}");

    let snap = obs.snapshot();
    // max_attempts=3, all panicked, none recovered.
    assert_eq!(snap.counter("resilience.worker.panics"), 3);
    assert_eq!(snap.counter("resilience.retry.attempts"), 2);
    assert_eq!(snap.counter("resilience.retry.recoveries"), 0);
    assert_eq!(snap.counter("resilience.failures.exhausted"), 1);
    // Siblings still entered the cache.
    assert_eq!(engine.cache().len(), 2);
}

#[test]
fn failed_requests_degrade_onto_the_nearest_cached_neighbor() {
    // util=0.75 is forced to fail; 0.70 and 0.80 solve in the same
    // batch and are both within the window — the scan must pick the
    // earliest-inserted of the equally-near pair.
    let queries = vec![
        q("family=skat util=0.70 trials=8"),
        q("family=skat util=0.80 trials=8"),
        q("family=skat util=0.75 trials=8"),
    ];
    let injector = FaultAt {
        target: 0.75,
        fault: InjectedFault::ForceNoConvergence,
    };
    let obs = Registry::new();
    let mut engine = QueryEngine::new(8).with_policy(ResiliencePolicy {
        degrade_window: 0.1,
        ..ResiliencePolicy::default()
    });
    let outcomes = engine.run_batch_with(&queries, 2, &obs, &injector);
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok());
    let QueryOutcome::Degraded {
        verdict,
        provenance,
    } = &outcomes[2]
    else {
        panic!("expected degraded outcome, got {:?}", outcomes[2]);
    };
    assert_eq!(provenance.requested_hash, queries[2].canonical_hash());
    assert_eq!(
        provenance.source_hash,
        queries[0].canonical_hash(),
        "tie → earliest insert"
    );
    assert!((provenance.delta_utilization - 0.05).abs() < 1e-12);
    assert!(matches!(provenance.error, QueryError::NoConvergence { .. }));
    assert_eq!(verdict.query_hash, queries[0].canonical_hash());

    let snap = obs.snapshot();
    assert_eq!(snap.counter("resilience.injected.no_convergence"), 3);
    assert_eq!(snap.counter("resilience.degraded.served"), 1);
    assert_eq!(snap.counter("query.outcomes.degraded"), 1);
    assert_eq!(snap.counter("query.outcomes.ok"), 2);
}

#[test]
fn degradation_respects_the_window_and_the_design_axes() {
    // Same failing query, but only out-of-window or wrong-axis
    // neighbors are resident → Failed, not Degraded. The failing
    // query's utilization is one ulp off 0.75 so the injector hits it
    // alone, while keeping it inside the ±0.1 window of the (wrong-axis)
    // 0.75 neighbors.
    let target = 0.75 + f64::EPSILON;
    let mut cursed = q("family=skat util=0.75 trials=8");
    cursed.utilization = target;
    let queries = vec![
        q("family=skat util=0.40 trials=8"),    // same axes, too far
        q("family=taygeta util=0.75 trials=8"), // wrong family
        q("family=skat util=0.75 trials=8 coolant=mineral_oil_md45"), // wrong coolant
        cursed,
    ];
    let injector = FaultAt {
        target,
        fault: InjectedFault::Panic,
    };
    let obs = Registry::new();
    let mut engine = QueryEngine::new(8).with_policy(ResiliencePolicy {
        degrade_window: 0.1,
        ..ResiliencePolicy::default()
    });
    let outcomes = engine.run_batch_with(&queries, 1, &obs, &injector);
    assert!(outcomes[..3].iter().all(QueryOutcome::is_ok));
    assert!(outcomes[3].is_failed(), "{:?}", outcomes[3]);

    let snap = obs.snapshot();
    assert_eq!(snap.counter("resilience.degraded.unavailable"), 1);
    assert_eq!(snap.counter("query.outcomes.failed"), 1);
}

#[test]
fn work_budgets_shed_requests_deterministically() {
    // An inflated work cost larger than the budget trips the deadline
    // before the solve runs; with an empty cache the request fails as
    // BudgetExhausted carrying the exact spent/budget pair.
    let queries = vec![q("family=skat util=0.9 trials=8")];
    let injector = FaultAt {
        target: 0.9,
        fault: InjectedFault::InflateWork(10_000),
    };
    let obs = Registry::new();
    let mut engine = QueryEngine::new(4).with_policy(ResiliencePolicy {
        work_budget: 5_000,
        ..ResiliencePolicy::default()
    });
    let outcomes = engine.run_batch_with(&queries, 1, &obs, &injector);
    let err = outcomes[0].error().expect("budget must trip");
    let QueryError::BudgetExhausted { spent, budget } = err else {
        panic!("expected BudgetExhausted, got {err:?}");
    };
    assert_eq!(*budget, 5_000);
    assert_eq!(*spent, 10_000, "exactly the injected inflation");
    assert!(!err.is_retryable());

    let snap = obs.snapshot();
    assert_eq!(snap.counter("resilience.budget.exhausted"), 1);
    assert_eq!(snap.counter("resilience.injected.cost"), 10_000);
    assert_eq!(snap.counter("profile.resilience.injected.cost"), 10_000);
}

#[test]
fn mixed_batches_are_bit_identical_at_every_thread_count() {
    // ok + transient panic + persistent noconv + poison, through a
    // tight cache: outcomes, counters and eviction order must match
    // across thread counts.
    let queries = vec![
        q("family=skat util=0.60 trials=8"),
        q("family=skat util=0.65 trials=8"),
        q("family=skat util=0.70 trials=8"), // transient panic
        q("family=skat util=0.75 trials=8"), // persistent noconv → degraded
        q("family=rigel2 util=0.50 trials=8"),
        q("family=skat util=0.60 trials=8"), // duplicate
    ];
    struct Mixed;
    impl FaultInjector for Mixed {
        fn fault_for(&self, query: &DesignQuery, attempt: u32) -> Option<InjectedFault> {
            let u = query.utilization.to_bits();
            if u == 0.70f64.to_bits() && attempt == 0 {
                Some(InjectedFault::Panic)
            } else if u == 0.75f64.to_bits() {
                Some(InjectedFault::ForceNoConvergence)
            } else {
                None
            }
        }
    }

    let run = |threads: usize| {
        let obs = Registry::new();
        let mut engine = QueryEngine::new(3);
        let outcomes = engine.run_batch_with(&queries, threads, &obs, &Mixed);
        (
            outcomes,
            engine.cache().keys_in_eviction_order(),
            obs.snapshot(),
        )
    };
    let (ref_outcomes, ref_order, ref_snap) = run(1);
    assert!(ref_outcomes[3].is_degraded(), "{:?}", ref_outcomes[3]);
    for threads in [2, 4] {
        let (outcomes, order, snap) = run(threads);
        assert_eq!(outcomes.len(), ref_outcomes.len());
        for (i, (a, b)) in ref_outcomes.iter().zip(&outcomes).enumerate() {
            assert!(a.bitwise_eq(b), "outcome {i} at threads={threads}");
        }
        assert_eq!(order, ref_order, "eviction order at threads={threads}");
        for name in [
            "resilience.worker.panics",
            "resilience.retry.attempts",
            "resilience.retry.recoveries",
            "resilience.injected.no_convergence",
            "resilience.failures.exhausted",
            "resilience.degraded.served",
            "query.outcomes.ok",
            "query.outcomes.degraded",
            "query.cache.evictions",
        ] {
            assert_eq!(
                ref_snap.counter(name),
                snap.counter(name),
                "counter {name} at threads={threads}"
            );
        }
    }
}

#[test]
fn empty_batch_emits_a_clean_zero_counter_manifest() {
    // A batch of zero requests is a legal call: the run is counted, the
    // cache/coalescing tallies all land at an explicit zero, and no
    // outcome or resilience channel appears at all — an empty batch is
    // not an "incident" the event-driven channels should invent.
    let obs = Registry::new();
    let mut engine = QueryEngine::new(4);
    let outcomes = engine.run_batch(&[], 4, &obs);
    assert!(outcomes.is_empty());
    assert!(engine.cache().is_empty());

    let snap = obs.snapshot();
    assert_eq!(snap.counter("query.batch.runs"), 1);
    for zeroed in [
        "query.requests",
        "query.cache.hits",
        "query.cache.misses",
        "query.batch.coalesced",
        "query.cache.evictions",
    ] {
        assert_eq!(snap.counter(zeroed), 0, "{zeroed}");
        assert!(
            snap.counters.iter().any(|(name, _)| name == zeroed),
            "{zeroed} must be present (at zero), not missing, so manifest \
             diffs across legs never see a channel appear"
        );
    }
    for absent in [
        "query.outcomes.ok",
        "query.outcomes.degraded",
        "query.outcomes.failed",
        "resilience.degraded.served",
        "resilience.degraded.unavailable",
    ] {
        assert!(
            snap.counters.iter().all(|(name, _)| name != absent),
            "{absent} is event-driven and must stay absent for an empty batch"
        );
    }
}

#[test]
fn all_invalid_batch_fails_every_request_without_touching_the_cache() {
    // Structurally invalid queries (buildable only by direct field
    // mutation) must each fail fatally — contained per request, no
    // retries burned, nothing cached, and the outcome tallies recorded.
    let mut nan_util = q("family=skat trials=8");
    nan_util.utilization = f64::NAN;
    let mut zero_trials = q("family=skat util=0.5 trials=8");
    zero_trials.trials = 0;
    let queries = vec![nan_util, zero_trials];

    let obs = Registry::new();
    let mut engine = QueryEngine::new(4);
    let outcomes = engine.run_batch(&queries, 2, &obs);
    assert_eq!(outcomes.len(), 2);
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            QueryOutcome::Failed(e) => {
                assert!(matches!(e, QueryError::InvalidDesign { .. }), "{e:?}");
                assert!(!e.is_retryable(), "request {i}");
            }
            other => panic!("request {i} should fail fatally, got {other:?}"),
        }
    }
    assert!(engine.cache().is_empty(), "failed verdicts must not cache");

    let snap = obs.snapshot();
    assert_eq!(snap.counter("query.requests"), 2);
    assert_eq!(snap.counter("query.cache.misses"), 2);
    assert_eq!(snap.counter("query.cache.hits"), 0);
    assert_eq!(snap.counter("query.outcomes.failed"), 2);
    assert_eq!(snap.counter("query.outcomes.ok"), 0);
    assert!(
        snap.counters
            .iter()
            .any(|(name, _)| name == "query.outcomes.ok"),
        "a batch with failures records the ok tally explicitly, even at zero"
    );
    assert_eq!(snap.counter("resilience.retry.attempts"), 0);
    assert_eq!(snap.counter("resilience.degraded.unavailable"), 2);
}
