//! Typed physical quantities for the `rcs-sim` workspace.
//!
//! Every physical value that crosses a crate boundary in `rcs-sim` is a
//! newtype over `f64` with an explicit unit, so that a pressure can never be
//! added to a temperature and a volumetric flow can never be passed where a
//! mass flow is expected. Arithmetic is implemented only where it is
//! physically meaningful, including the cross-unit products used throughout
//! the thermal and hydraulic solvers (for example
//! [`Power`] `*` [`ThermalResistance`] `=` [`TempDelta`]).
//!
//! # Examples
//!
//! ```
//! use rcs_units::{Celsius, Power, ThermalResistance};
//!
//! let ambient = Celsius::new(25.0);
//! let chip_power = Power::from_watts(91.0);
//! let junction_to_coolant = ThermalResistance::from_kelvin_per_watt(0.22);
//!
//! let junction = ambient + chip_power * junction_to_coolant;
//! assert!((junction.degrees() - 45.02).abs() < 1e-9);
//! ```
//!
//! Absolute temperatures ([`Celsius`]) and temperature differences
//! ([`TempDelta`]) are distinct types: subtracting two absolute temperatures
//! yields a delta, and only deltas may be scaled or accumulated.

#![warn(missing_docs)]

mod flow;
mod geometry;
mod macros;
mod power;
mod pressure;
mod properties;
mod temperature;

pub use flow::{MassFlow, Velocity, VolumeFlow};
pub use geometry::{Area, Length, Volume};
pub use power::{Energy, Frequency, Power, Seconds};
pub use pressure::Pressure;
pub use properties::{
    Density, DynamicViscosity, HeatTransferCoeff, KinematicViscosity, SpecificHeat,
    ThermalCapacityRate, ThermalConductivity, ThermalResistance, VolumetricHeatCapacity,
};
pub use temperature::{Celsius, Kelvin, TempDelta};

/// Hours in one mean year (365.25 days × 24 h).
///
/// Every annualized quantity in the workspace — availability horizons,
/// failure rates per module-year, annual energy — converts through this
/// single constant so that "a year" can never silently mean 8760 h in
/// one crate and 8766 h in another.
pub const HOURS_PER_YEAR: f64 = 8766.0;

/// Convenience alias for a dimensionless ratio in `[0, 1]`.
///
/// Used for efficiencies, utilizations and effectiveness values. A plain
/// `f64` is acceptable here because the quantity is dimensionless, but the
/// alias documents intent at API boundaries.
pub type Fraction = f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_cross_product() {
        let ambient = Celsius::new(25.0);
        let junction =
            ambient + Power::from_watts(100.0) * ThermalResistance::from_kelvin_per_watt(0.3);
        assert!((junction.degrees() - 55.0).abs() < 1e-12);
    }
}
