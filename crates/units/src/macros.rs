//! Internal macro generating the shared boilerplate for scalar quantities.

/// Implements the common surface of a linear, scalable quantity newtype:
/// constructors, raw access, `Display`, linear arithmetic (`Add`, `Sub`,
/// `Neg`), scaling by `f64`, ratio of two like quantities, and `Sum`.
///
/// Quantities for which some of these operations are *not* physically
/// meaningful (for example absolute temperatures) do not use this macro and
/// implement their surface by hand instead.
macro_rules! scalar_quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $ctor:ident, $getter:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates the quantity from a raw value in ", $unit, ".")]
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("let q = rcs_units::", stringify!($name), "::", stringify!($ctor), "(1.5);")]
            #[doc = concat!("assert_eq!(q.", stringify!($getter), "(), 1.5);")]
            /// ```
            #[must_use]
            pub const fn $ctor(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the raw value in ", $unit, ".")]
            #[must_use]
            pub const fn $getter(self) -> f64 {
                self.0
            }

            /// Returns `true` if the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the absolute value of the quantity.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            ///
            /// NaN values propagate as in [`f64::min`].
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (as [`f64::clamp`] does).
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

pub(crate) use scalar_quantity;
