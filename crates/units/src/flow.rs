//! Flow rates and velocities.

use crate::geometry::Area;
use crate::macros::scalar_quantity;
use crate::power::Seconds;
use crate::properties::Density;
use crate::Volume;

scalar_quantity!(
    /// Volumetric flow rate in cubic meters per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::VolumeFlow;
    /// // The paper: one modern FPGA needs 1 m³ of air per minute.
    /// let air = VolumeFlow::cubic_meters_per_minute(1.0);
    /// assert!((air.cubic_meters_per_second() - 1.0 / 60.0).abs() < 1e-12);
    /// ```
    VolumeFlow, "m³/s", from_cubic_meters_per_second, cubic_meters_per_second
);

impl VolumeFlow {
    /// Creates a flow from cubic meters per minute.
    #[must_use]
    pub fn cubic_meters_per_minute(v: f64) -> Self {
        Self::from_cubic_meters_per_second(v / 60.0)
    }

    /// Creates a flow from liters per minute.
    #[must_use]
    pub fn liters_per_minute(lpm: f64) -> Self {
        Self::from_cubic_meters_per_second(lpm * 1e-3 / 60.0)
    }

    /// Returns the flow in liters per minute.
    #[must_use]
    pub fn as_liters_per_minute(self) -> f64 {
        self.cubic_meters_per_second() * 60.0e3
    }
}

scalar_quantity!(
    /// Mass flow rate in kilograms per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Density, VolumeFlow};
    /// let q = VolumeFlow::liters_per_minute(15.0);
    /// let m = q * Density::new(870.0); // mineral oil
    /// assert!((m.kg_per_second() - 0.2175).abs() < 1e-9);
    /// ```
    MassFlow, "kg/s", from_kg_per_second, kg_per_second
);

scalar_quantity!(
    /// A velocity in meters per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Area, VolumeFlow};
    /// let v = VolumeFlow::liters_per_minute(60.0) / Area::square_centimeters(10.0);
    /// assert!((v.meters_per_second() - 1.0).abs() < 1e-9);
    /// ```
    Velocity, "m/s", from_meters_per_second, meters_per_second
);

impl core::ops::Mul<Density> for VolumeFlow {
    type Output = MassFlow;
    fn mul(self, rhs: Density) -> MassFlow {
        MassFlow::from_kg_per_second(self.cubic_meters_per_second() * rhs.kg_per_cubic_meter())
    }
}

impl core::ops::Mul<VolumeFlow> for Density {
    type Output = MassFlow;
    fn mul(self, rhs: VolumeFlow) -> MassFlow {
        rhs * self
    }
}

impl core::ops::Div<Density> for MassFlow {
    type Output = VolumeFlow;
    fn div(self, rhs: Density) -> VolumeFlow {
        VolumeFlow::from_cubic_meters_per_second(self.kg_per_second() / rhs.kg_per_cubic_meter())
    }
}

impl core::ops::Div<Area> for VolumeFlow {
    type Output = Velocity;
    fn div(self, rhs: Area) -> Velocity {
        Velocity::from_meters_per_second(self.cubic_meters_per_second() / rhs.square_meters())
    }
}

impl core::ops::Mul<Area> for Velocity {
    type Output = VolumeFlow;
    fn mul(self, rhs: Area) -> VolumeFlow {
        VolumeFlow::from_cubic_meters_per_second(self.meters_per_second() * rhs.square_meters())
    }
}

impl core::ops::Mul<Velocity> for Area {
    type Output = VolumeFlow;
    fn mul(self, rhs: Velocity) -> VolumeFlow {
        rhs * self
    }
}

impl core::ops::Mul<Seconds> for VolumeFlow {
    type Output = Volume;
    fn mul(self, rhs: Seconds) -> Volume {
        Volume::from_cubic_meters(self.cubic_meters_per_second() * rhs.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_volume_round_trip() {
        let q = VolumeFlow::liters_per_minute(20.0);
        let rho = Density::new(998.0);
        let back = (q * rho) / rho;
        assert!((back.cubic_meters_per_second() - q.cubic_meters_per_second()).abs() < 1e-15);
    }

    #[test]
    fn velocity_area_round_trip() {
        let a = Area::square_centimeters(2.5);
        let v = Velocity::from_meters_per_second(1.4);
        let q = v * a;
        assert!(((q / a).meters_per_second() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn accumulated_volume() {
        let q = VolumeFlow::liters_per_minute(0.25);
        let v = q * Seconds::minutes(1.0);
        assert!((v.as_liters() - 0.25).abs() < 1e-12);
    }
}
