//! Material/fluid property quantities and heat-transfer cross products.

use crate::flow::MassFlow;
use crate::geometry::Area;
use crate::macros::scalar_quantity;
use crate::power::Power;
use crate::temperature::TempDelta;

scalar_quantity!(
    /// Mass density in kg/m³.
    ///
    /// # Examples
    ///
    /// ```
    /// let oil = rcs_units::Density::new(870.0);
    /// assert!(oil.kg_per_cubic_meter() < 998.0); // lighter than water
    /// ```
    Density, "kg/m³", new, kg_per_cubic_meter
);

scalar_quantity!(
    /// Specific heat capacity in J/(kg·K).
    ///
    /// # Examples
    ///
    /// ```
    /// let cp = rcs_units::SpecificHeat::new(4180.0); // water
    /// assert!(cp.joules_per_kg_kelvin() > 1900.0);   // vs mineral oil
    /// ```
    SpecificHeat, "J/(kg·K)", new, joules_per_kg_kelvin
);

scalar_quantity!(
    /// Volumetric heat capacity in J/(m³·K): the product of density and
    /// specific heat.
    ///
    /// Central to the paper's §2 claim that liquids store 1500–4000x more
    /// heat per unit volume than air.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Density, SpecificHeat};
    /// let water = Density::new(998.0) * SpecificHeat::new(4180.0);
    /// let air = Density::new(1.184) * SpecificHeat::new(1007.0);
    /// assert!(water / air > 3000.0);
    /// ```
    VolumetricHeatCapacity, "J/(m³·K)", new, joules_per_cubic_meter_kelvin
);

scalar_quantity!(
    /// Thermal conductivity in W/(m·K).
    ThermalConductivity, "W/(m·K)", new, watts_per_meter_kelvin
);

scalar_quantity!(
    /// Dynamic viscosity in Pa·s.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Density, DynamicViscosity};
    /// let mu = DynamicViscosity::new(0.02); // light oil
    /// let nu = mu / Density::new(870.0);
    /// assert!((nu.square_meters_per_second() - 2.2989e-5).abs() < 1e-8);
    /// ```
    DynamicViscosity, "Pa·s", new, pascal_seconds
);

scalar_quantity!(
    /// Kinematic viscosity in m²/s.
    KinematicViscosity, "m²/s", new, square_meters_per_second
);

scalar_quantity!(
    /// Convective heat-transfer coefficient in W/(m²·K).
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Area, HeatTransferCoeff};
    /// let h = HeatTransferCoeff::new(1200.0); // forced liquid convection
    /// let r = (h * Area::square_centimeters(25.0)).to_resistance();
    /// assert!((r.kelvin_per_watt() - 1.0 / 3.0).abs() < 1e-12);
    /// ```
    HeatTransferCoeff, "W/(m²·K)", new, watts_per_square_meter_kelvin
);

scalar_quantity!(
    /// Thermal resistance in K/W.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Power, ThermalResistance};
    /// let dt = Power::from_watts(91.0) * ThermalResistance::from_kelvin_per_watt(0.25);
    /// assert!((dt.kelvins() - 22.75).abs() < 1e-12);
    /// ```
    ThermalResistance, "K/W", from_kelvin_per_watt, kelvin_per_watt
);

impl ThermalResistance {
    /// Returns the equivalent conductance (UA) value.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero resistance maps to an infinite conductance.
    #[must_use]
    pub fn to_conductance(self) -> ThermalCapacityRate {
        ThermalCapacityRate::new(1.0 / self.kelvin_per_watt())
    }

    /// Series combination of two resistances.
    #[must_use]
    pub fn in_series(self, other: Self) -> Self {
        self + other
    }

    /// Parallel combination of two resistances.
    #[must_use]
    pub fn in_parallel(self, other: Self) -> Self {
        let a = self.kelvin_per_watt();
        let b = other.kelvin_per_watt();
        Self::from_kelvin_per_watt(a * b / (a + b))
    }
}

scalar_quantity!(
    /// A thermal conductance or capacity rate in W/K.
    ///
    /// Serves both as the heat-exchanger UA/conductance unit and as the
    /// coolant capacity rate `m_dot * c_p`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{MassFlow, SpecificHeat, Power};
    /// let c = MassFlow::from_kg_per_second(0.5) * SpecificHeat::new(4180.0);
    /// let rise = Power::from_watts(8736.0) / c;
    /// assert!((rise.kelvins() - 4.18).abs() < 0.01);
    /// ```
    ThermalCapacityRate, "W/K", new, watts_per_kelvin
);

impl ThermalCapacityRate {
    /// Returns the equivalent thermal resistance.
    #[must_use]
    pub fn to_resistance(self) -> ThermalResistance {
        ThermalResistance::from_kelvin_per_watt(1.0 / self.watts_per_kelvin())
    }
}

impl core::ops::Mul<SpecificHeat> for Density {
    type Output = VolumetricHeatCapacity;
    fn mul(self, rhs: SpecificHeat) -> VolumetricHeatCapacity {
        VolumetricHeatCapacity::new(self.kg_per_cubic_meter() * rhs.joules_per_kg_kelvin())
    }
}

impl core::ops::Div<Density> for DynamicViscosity {
    type Output = KinematicViscosity;
    fn div(self, rhs: Density) -> KinematicViscosity {
        KinematicViscosity::new(self.pascal_seconds() / rhs.kg_per_cubic_meter())
    }
}

impl core::ops::Mul<Area> for HeatTransferCoeff {
    type Output = ThermalCapacityRate;
    fn mul(self, rhs: Area) -> ThermalCapacityRate {
        ThermalCapacityRate::new(self.watts_per_square_meter_kelvin() * rhs.square_meters())
    }
}

impl core::ops::Mul<HeatTransferCoeff> for Area {
    type Output = ThermalCapacityRate;
    fn mul(self, rhs: HeatTransferCoeff) -> ThermalCapacityRate {
        rhs * self
    }
}

impl core::ops::Mul<SpecificHeat> for MassFlow {
    type Output = ThermalCapacityRate;
    fn mul(self, rhs: SpecificHeat) -> ThermalCapacityRate {
        ThermalCapacityRate::new(self.kg_per_second() * rhs.joules_per_kg_kelvin())
    }
}

impl core::ops::Mul<MassFlow> for SpecificHeat {
    type Output = ThermalCapacityRate;
    fn mul(self, rhs: MassFlow) -> ThermalCapacityRate {
        rhs * self
    }
}

impl core::ops::Mul<ThermalResistance> for Power {
    type Output = TempDelta;
    fn mul(self, rhs: ThermalResistance) -> TempDelta {
        TempDelta::from_kelvins(self.watts() * rhs.kelvin_per_watt())
    }
}

impl core::ops::Mul<Power> for ThermalResistance {
    type Output = TempDelta;
    fn mul(self, rhs: Power) -> TempDelta {
        rhs * self
    }
}

impl core::ops::Div<ThermalResistance> for TempDelta {
    type Output = Power;
    fn div(self, rhs: ThermalResistance) -> Power {
        Power::from_watts(self.kelvins() / rhs.kelvin_per_watt())
    }
}

impl core::ops::Div<ThermalCapacityRate> for Power {
    type Output = TempDelta;
    fn div(self, rhs: ThermalCapacityRate) -> TempDelta {
        TempDelta::from_kelvins(self.watts() / rhs.watts_per_kelvin())
    }
}

impl core::ops::Mul<TempDelta> for ThermalCapacityRate {
    type Output = Power;
    fn mul(self, rhs: TempDelta) -> Power {
        Power::from_watts(self.watts_per_kelvin() * rhs.kelvins())
    }
}

impl core::ops::Mul<ThermalCapacityRate> for TempDelta {
    type Output = Power;
    fn mul(self, rhs: ThermalCapacityRate) -> Power {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Celsius, VolumeFlow};

    #[test]
    fn series_parallel_resistance() {
        let a = ThermalResistance::from_kelvin_per_watt(0.2);
        let b = ThermalResistance::from_kelvin_per_watt(0.3);
        assert!((a.in_series(b).kelvin_per_watt() - 0.5).abs() < 1e-15);
        assert!((a.in_parallel(b).kelvin_per_watt() - 0.12).abs() < 1e-15);
    }

    #[test]
    fn conductance_round_trip() {
        let r = ThermalResistance::from_kelvin_per_watt(0.25);
        let back = r.to_conductance().to_resistance();
        assert!((back.kelvin_per_watt() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn coolant_temperature_rise() {
        // SKAT-scale: 8736 W into an oil stream.
        let q = VolumeFlow::liters_per_minute(120.0);
        let rho = Density::new(870.0);
        let cp = SpecificHeat::new(1900.0);
        let cap = (q * rho) * cp;
        let rise = Power::from_watts(8736.0) / cap;
        let outlet = Celsius::new(24.0) + rise;
        assert!(rise.kelvins() > 0.0 && rise.kelvins() < 5.0);
        assert!(outlet.degrees() < 30.0);
    }

    #[test]
    fn heat_flow_through_resistance() {
        let dt = Celsius::new(55.0) - Celsius::new(30.0);
        let p = dt / ThermalResistance::from_kelvin_per_watt(0.275);
        assert!((p.watts() - 90.909).abs() < 1e-2);
    }

    #[test]
    fn volumetric_heat_capacity_ratio_liquid_air() {
        let water = Density::new(998.0) * SpecificHeat::new(4180.0);
        let air = Density::new(1.184) * SpecificHeat::new(1007.0);
        let ratio = water / air;
        assert!(ratio > 1500.0 && ratio < 4000.0);
    }
}
