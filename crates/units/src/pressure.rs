//! Pressures and pressure-flow products.

use crate::flow::VolumeFlow;
use crate::macros::scalar_quantity;
use crate::power::Power;

scalar_quantity!(
    /// A pressure (or pressure difference) in pascals.
    ///
    /// Hydraulic solvers in `rcs-hydraulics` express pump heads and branch
    /// losses in pascals; multiply by a [`VolumeFlow`] to obtain hydraulic
    /// power.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Pressure, VolumeFlow};
    /// let dp = Pressure::kilopascals(50.0);
    /// let q = VolumeFlow::liters_per_minute(60.0);
    /// assert!((dp * q).watts() - 50.0 < 1e-9);
    /// ```
    Pressure, "Pa", from_pascals, pascals
);

impl Pressure {
    /// Creates a pressure from kilopascals.
    #[must_use]
    pub fn kilopascals(kpa: f64) -> Self {
        Self::from_pascals(kpa * 1e3)
    }

    /// Returns the pressure in kilopascals.
    #[must_use]
    pub fn as_kilopascals(self) -> f64 {
        self.pascals() / 1e3
    }

    /// Creates a pressure from meters of head of a fluid with density
    /// `rho_kg_m3` under standard gravity.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = rcs_units::Pressure::from_head_meters(10.0, 998.0);
    /// assert!((p.as_kilopascals() - 97.91).abs() < 0.05);
    /// ```
    #[must_use]
    pub fn from_head_meters(head: f64, rho_kg_m3: f64) -> Self {
        Self::from_pascals(head * rho_kg_m3 * 9.80665)
    }

    /// Returns the equivalent head in meters for a fluid of the given density.
    #[must_use]
    pub fn as_head_meters(self, rho_kg_m3: f64) -> f64 {
        self.pascals() / (rho_kg_m3 * 9.80665)
    }
}

impl core::ops::Mul<VolumeFlow> for Pressure {
    type Output = Power;
    fn mul(self, rhs: VolumeFlow) -> Power {
        Power::from_watts(self.pascals() * rhs.cubic_meters_per_second())
    }
}

impl core::ops::Mul<Pressure> for VolumeFlow {
    type Output = Power;
    fn mul(self, rhs: Pressure) -> Power {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_round_trip() {
        let p = Pressure::from_head_meters(5.0, 870.0);
        assert!((p.as_head_meters(870.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hydraulic_power() {
        let p = Pressure::kilopascals(100.0) * VolumeFlow::from_cubic_meters_per_second(1e-3);
        assert!((p.watts() - 100.0).abs() < 1e-9);
    }
}
