//! Absolute temperatures and temperature differences.

use crate::macros::scalar_quantity;

scalar_quantity!(
    /// A temperature *difference* in kelvins.
    ///
    /// Distinct from an absolute temperature: deltas may be added, scaled and
    /// accumulated, while absolute temperatures may only be shifted by a
    /// delta. Subtracting two [`Celsius`] values yields a `TempDelta`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Celsius, TempDelta};
    /// let overheat = Celsius::new(58.1) - Celsius::new(25.0);
    /// assert!((overheat.kelvins() - 33.1).abs() < 1e-12);
    /// ```
    TempDelta, "K", from_kelvins, kelvins
);

/// An absolute temperature on the Celsius scale.
///
/// The dominant temperature type in the workspace: the paper reports every
/// temperature in degrees Celsius. Conversion to the thermodynamic scale is
/// available through [`Celsius::to_kelvin`].
///
/// # Examples
///
/// ```
/// use rcs_units::{Celsius, TempDelta};
/// let t = Celsius::new(25.0) + TempDelta::from_kelvins(33.1);
/// assert!((t.degrees() - 58.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Offset between the Celsius and Kelvin scales.
    pub const KELVIN_OFFSET: f64 = 273.15;

    /// Creates an absolute temperature from degrees Celsius.
    #[must_use]
    pub const fn new(degrees: f64) -> Self {
        Self(degrees)
    }

    /// Returns the temperature in degrees Celsius.
    #[must_use]
    pub const fn degrees(self) -> f64 {
        self.0
    }

    /// Converts to the thermodynamic (Kelvin) scale.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = rcs_units::Celsius::new(25.0);
    /// assert!((t.to_kelvin().kelvins() - 298.15).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + Self::KELVIN_OFFSET)
    }

    /// Returns `true` if the underlying value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of two temperatures.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two temperatures.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} °C", precision, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

impl core::ops::Add<TempDelta> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 + rhs.kelvins())
    }
}

impl core::ops::AddAssign<TempDelta> for Celsius {
    fn add_assign(&mut self, rhs: TempDelta) {
        self.0 += rhs.kelvins();
    }
}

impl core::ops::Sub<TempDelta> for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 - rhs.kelvins())
    }
}

impl core::ops::SubAssign<TempDelta> for Celsius {
    fn sub_assign(&mut self, rhs: TempDelta) {
        self.0 -= rhs.kelvins();
    }
}

impl core::ops::Sub for Celsius {
    type Output = TempDelta;
    fn sub(self, rhs: Celsius) -> TempDelta {
        TempDelta::from_kelvins(self.0 - rhs.0)
    }
}

/// An absolute temperature on the thermodynamic (Kelvin) scale.
///
/// Used where physics requires the absolute scale, such as Arrhenius
/// reliability acceleration in `rcs-devices` and radiative estimates.
///
/// # Examples
///
/// ```
/// use rcs_units::Kelvin;
/// let t = Kelvin::new(298.15);
/// assert!((t.to_celsius().degrees() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Creates an absolute temperature from kelvins.
    #[must_use]
    pub const fn new(kelvins: f64) -> Self {
        Self(kelvins)
    }

    /// Returns the temperature in kelvins.
    #[must_use]
    pub const fn kelvins(self) -> f64 {
        self.0
    }

    /// Converts to the Celsius scale.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 - Celsius::KELVIN_OFFSET)
    }
}

impl core::fmt::Display for Kelvin {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} K", precision, self.0)
        } else {
            write!(f, "{} K", self.0)
        }
    }
}

impl From<Celsius> for Kelvin {
    fn from(value: Celsius) -> Self {
        value.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(value: Kelvin) -> Self {
        value.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(55.0);
        assert!((t.to_kelvin().to_celsius().degrees() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_minus_absolute_is_delta() {
        let d = Celsius::new(72.9) - Celsius::new(25.0);
        assert!((d.kelvins() - 47.9).abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let d = TempDelta::from_kelvins(10.0) + TempDelta::from_kelvins(5.0) * 2.0;
        assert!((d.kelvins() - 20.0).abs() < 1e-12);
        assert!((-d).kelvins() < 0.0);
    }

    #[test]
    fn shift_and_unshift() {
        let mut t = Celsius::new(25.0);
        t += TempDelta::from_kelvins(33.1);
        t -= TempDelta::from_kelvins(33.1);
        assert!((t.degrees() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{:.1}", Celsius::new(58.123)), "58.1 °C");
        assert_eq!(format!("{:.2}", TempDelta::from_kelvins(1.005)), "1.00 K");
        assert_eq!(format!("{:.0}", Kelvin::new(298.15)), "298 K");
    }

    #[test]
    fn ordering() {
        assert!(Celsius::new(55.0) < Celsius::new(70.0));
        assert_eq!(
            Celsius::new(55.0).max(Celsius::new(70.0)),
            Celsius::new(70.0)
        );
    }
}
