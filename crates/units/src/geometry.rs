//! Lengths, areas and volumes.

use crate::macros::scalar_quantity;

scalar_quantity!(
    /// A length in meters.
    ///
    /// # Examples
    ///
    /// ```
    /// // An UltraScale+ package is 45 mm on a side.
    /// let side = rcs_units::Length::millimeters(45.0);
    /// assert!((side.meters() - 0.045).abs() < 1e-12);
    /// ```
    Length, "m", from_meters, meters
);

impl Length {
    /// Creates a length from millimeters.
    #[must_use]
    pub fn millimeters(mm: f64) -> Self {
        Self::from_meters(mm * 1e-3)
    }

    /// Returns the length in millimeters.
    #[must_use]
    pub fn as_millimeters(self) -> f64 {
        self.meters() * 1e3
    }

    /// Creates a length from rack units (1U = 44.45 mm).
    #[must_use]
    pub fn rack_units(u: f64) -> Self {
        Self::millimeters(u * 44.45)
    }
}

scalar_quantity!(
    /// An area in square meters.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::Length;
    /// let a = Length::millimeters(42.5) * Length::millimeters(42.5);
    /// assert!((a.square_meters() - 1.80625e-3).abs() < 1e-12);
    /// ```
    Area, "m²", from_square_meters, square_meters
);

impl Area {
    /// Creates an area from square centimeters.
    #[must_use]
    pub fn square_centimeters(cm2: f64) -> Self {
        Self::from_square_meters(cm2 * 1e-4)
    }
}

scalar_quantity!(
    /// A volume in cubic meters.
    ///
    /// # Examples
    ///
    /// ```
    /// // 250 ml of water, the paper's per-FPGA-per-minute requirement.
    /// let v = rcs_units::Volume::liters(0.25);
    /// assert!((v.cubic_meters() - 2.5e-4).abs() < 1e-18);
    /// ```
    Volume, "m³", from_cubic_meters, cubic_meters
);

impl Volume {
    /// Creates a volume from liters.
    #[must_use]
    pub fn liters(l: f64) -> Self {
        Self::from_cubic_meters(l * 1e-3)
    }

    /// Returns the volume in liters.
    #[must_use]
    pub fn as_liters(self) -> f64 {
        self.cubic_meters() * 1e3
    }
}

impl core::ops::Mul<Length> for Length {
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area::from_square_meters(self.meters() * rhs.meters())
    }
}

impl core::ops::Mul<Length> for Area {
    type Output = Volume;
    fn mul(self, rhs: Length) -> Volume {
        Volume::from_cubic_meters(self.square_meters() * rhs.meters())
    }
}

impl core::ops::Mul<Area> for Length {
    type Output = Volume;
    fn mul(self, rhs: Area) -> Volume {
        rhs * self
    }
}

impl core::ops::Div<Length> for Area {
    type Output = Length;
    fn div(self, rhs: Length) -> Length {
        Length::from_meters(self.square_meters() / rhs.meters())
    }
}

impl core::ops::Div<Area> for Volume {
    type Output = Length;
    fn div(self, rhs: Area) -> Length {
        Length::from_meters(self.cubic_meters() / rhs.square_meters())
    }
}

impl core::ops::Div<Length> for Volume {
    type Output = Area;
    fn div(self, rhs: Length) -> Area {
        Area::from_square_meters(self.cubic_meters() / rhs.meters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_products() {
        let l = Length::from_meters(2.0);
        let a = l * Length::from_meters(3.0);
        let v = a * Length::from_meters(0.5);
        assert_eq!(a.square_meters(), 6.0);
        assert_eq!(v.cubic_meters(), 3.0);
        assert_eq!((v / a).meters(), 0.5);
        assert_eq!((v / l).square_meters(), 1.5);
    }

    #[test]
    fn rack_units() {
        // 3U module height, the paper's CM form factor.
        assert!((Length::rack_units(3.0).as_millimeters() - 133.35).abs() < 1e-9);
    }

    #[test]
    fn liters_round_trip() {
        assert!((Volume::liters(250.0).as_liters() - 250.0).abs() < 1e-9);
    }
}
