//! Power, energy, time and frequency.

use crate::macros::scalar_quantity;

scalar_quantity!(
    /// Thermal or electrical power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::Power;
    /// // A SKAT computational module: 12 boards x 8 FPGAs x 91 W.
    /// let cm: Power = (0..96).map(|_| Power::from_watts(91.0)).sum();
    /// assert!((cm.watts() - 8736.0).abs() < 1e-9);
    /// ```
    Power, "W", from_watts, watts
);

impl Power {
    /// Creates a power from kilowatts.
    #[must_use]
    pub fn kilowatts(kw: f64) -> Self {
        Self::from_watts(kw * 1e3)
    }

    /// Returns the power in kilowatts.
    #[must_use]
    pub fn as_kilowatts(self) -> f64 {
        self.watts() / 1e3
    }
}

scalar_quantity!(
    /// Energy in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcs_units::{Power, Seconds};
    /// let e = Power::from_watts(100.0) * Seconds::new(3600.0);
    /// assert!((e.as_kilowatt_hours() - 0.1).abs() < 1e-12);
    /// ```
    Energy, "J", from_joules, joules
);

impl Energy {
    /// Returns the energy in kilowatt-hours.
    #[must_use]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.joules() / 3.6e6
    }

    /// Creates an energy from kilowatt-hours.
    #[must_use]
    pub fn kilowatt_hours(kwh: f64) -> Self {
        Self::from_joules(kwh * 3.6e6)
    }
}

scalar_quantity!(
    /// A time duration in seconds.
    ///
    /// A plain newtype rather than [`std::time::Duration`] because simulated
    /// time is fractional, may be scaled, and appears in physical products
    /// (power x time = energy).
    ///
    /// # Examples
    ///
    /// ```
    /// let dt = rcs_units::Seconds::hours(2.0);
    /// assert_eq!(dt.seconds(), 7200.0);
    /// ```
    Seconds, "s", new, seconds
);

impl Seconds {
    /// Creates a duration from minutes.
    #[must_use]
    pub fn minutes(m: f64) -> Self {
        Self::new(m * 60.0)
    }

    /// Creates a duration from hours.
    #[must_use]
    pub fn hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// Creates a duration from days.
    #[must_use]
    pub fn days(d: f64) -> Self {
        Self::new(d * 86_400.0)
    }

    /// Returns the duration in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.seconds() / 3600.0
    }
}

scalar_quantity!(
    /// A clock frequency in hertz.
    ///
    /// # Examples
    ///
    /// ```
    /// let f = rcs_units::Frequency::megahertz(450.0);
    /// assert_eq!(f.hertz(), 4.5e8);
    /// ```
    Frequency, "Hz", from_hertz, hertz
);

impl Frequency {
    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn megahertz(mhz: f64) -> Self {
        Self::from_hertz(mhz * 1e6)
    }

    /// Returns the frequency in megahertz.
    #[must_use]
    pub fn as_megahertz(self) -> f64 {
        self.hertz() / 1e6
    }
}

impl core::ops::Mul<Seconds> for Power {
    type Output = Energy;
    fn mul(self, rhs: Seconds) -> Energy {
        Energy::from_joules(self.watts() * rhs.seconds())
    }
}

impl core::ops::Mul<Power> for Seconds {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl core::ops::Div<Seconds> for Energy {
    type Output = Power;
    fn div(self, rhs: Seconds) -> Power {
        Power::from_watts(self.joules() / rhs.seconds())
    }
}

impl core::ops::Div<Power> for Energy {
    type Output = Seconds;
    fn div(self, rhs: Power) -> Seconds {
        Seconds::new(self.joules() / rhs.watts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_round_trip() {
        let p = Power::kilowatts(8.736);
        let dt = Seconds::hours(1.0);
        let e = p * dt;
        assert!((e.as_kilowatt_hours() - 8.736).abs() < 1e-9);
        assert!(((e / dt).watts() - p.watts()).abs() < 1e-9);
        assert!(((e / p).seconds() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_conversion() {
        assert!((Frequency::megahertz(312.5).as_megahertz() - 312.5).abs() < 1e-12);
    }

    #[test]
    fn time_constructors_consistent() {
        assert_eq!(Seconds::minutes(60.0), Seconds::hours(1.0));
        assert_eq!(Seconds::days(1.0), Seconds::hours(24.0));
    }
}
