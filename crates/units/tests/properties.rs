//! Property-based tests for unit arithmetic invariants.

use rcs_testkit::{check, Gen};
use rcs_units::{
    Area, Celsius, Density, Length, Power, Pressure, Seconds, SpecificHeat, TempDelta,
    ThermalResistance, Velocity, VolumeFlow,
};

fn finite(g: &mut Gen) -> f64 {
    g.draw(-1e6..1e6f64)
}

fn positive(g: &mut Gen) -> f64 {
    g.draw(1e-6..1e6f64)
}

#[test]
fn celsius_kelvin_round_trip() {
    check("celsius_kelvin_round_trip", |g| {
        let t = finite(g);
        let c = Celsius::new(t);
        assert!((c.to_kelvin().to_celsius().degrees() - t).abs() < 1e-9);
    });
}

#[test]
fn delta_addition_is_commutative() {
    check("delta_addition_is_commutative", |g| {
        let (a, b) = (finite(g), finite(g));
        let x = TempDelta::from_kelvins(a) + TempDelta::from_kelvins(b);
        let y = TempDelta::from_kelvins(b) + TempDelta::from_kelvins(a);
        assert_eq!(x, y);
    });
}

#[test]
fn shift_then_unshift_is_identity() {
    check("shift_then_unshift_is_identity", |g| {
        let (t, d) = (finite(g), finite(g));
        let c = Celsius::new(t);
        let back = (c + TempDelta::from_kelvins(d)) - TempDelta::from_kelvins(d);
        assert!((back.degrees() - t).abs() < 1e-6);
    });
}

#[test]
fn subtraction_recovers_shift() {
    check("subtraction_recovers_shift", |g| {
        let (t, d) = (finite(g), finite(g));
        let c = Celsius::new(t);
        let shifted = c + TempDelta::from_kelvins(d);
        assert!(((shifted - c).kelvins() - d).abs() < 1e-6);
    });
}

#[test]
fn resistance_parallel_below_min() {
    check("resistance_parallel_below_min", |g| {
        let (a, b) = (positive(g), positive(g));
        let ra = ThermalResistance::from_kelvin_per_watt(a);
        let rb = ThermalResistance::from_kelvin_per_watt(b);
        let p = ra.in_parallel(rb);
        assert!(p.kelvin_per_watt() <= a.min(b) + 1e-12);
        assert!(p.kelvin_per_watt() > 0.0);
    });
}

#[test]
fn resistance_series_exceeds_max() {
    check("resistance_series_exceeds_max", |g| {
        let (a, b) = (positive(g), positive(g));
        let s = ThermalResistance::from_kelvin_per_watt(a)
            .in_series(ThermalResistance::from_kelvin_per_watt(b));
        assert!(s.kelvin_per_watt() >= a.max(b));
    });
}

#[test]
fn conductance_involution() {
    check("conductance_involution", |g| {
        let r = positive(g);
        let res = ThermalResistance::from_kelvin_per_watt(r);
        let back = res.to_conductance().to_resistance();
        assert!((back.kelvin_per_watt() - r).abs() / r < 1e-12);
    });
}

#[test]
fn power_resistance_delta_consistency() {
    check("power_resistance_delta_consistency", |g| {
        let (p, r) = (positive(g), positive(g));
        let dt = Power::from_watts(p) * ThermalResistance::from_kelvin_per_watt(r);
        let back = dt / ThermalResistance::from_kelvin_per_watt(r);
        assert!((back.watts() - p).abs() / p < 1e-12);
    });
}

#[test]
fn energy_power_time_consistency() {
    check("energy_power_time_consistency", |g| {
        let (p, s) = (positive(g), positive(g));
        let e = Power::from_watts(p) * Seconds::new(s);
        assert!(((e / Seconds::new(s)).watts() - p).abs() / p < 1e-12);
        assert!(((e / Power::from_watts(p)).seconds() - s).abs() / s < 1e-12);
    });
}

#[test]
fn geometry_associativity() {
    check("geometry_associativity", |g| {
        let (a, b, c) = (positive(g), positive(g), positive(g));
        let v1 = (Length::from_meters(a) * Length::from_meters(b)) * Length::from_meters(c);
        let v2 = Length::from_meters(a) * (Length::from_meters(b) * Length::from_meters(c));
        assert!((v1.cubic_meters() - v2.cubic_meters()).abs() <= 1e-9 * v1.cubic_meters());
    });
}

#[test]
fn flow_velocity_round_trip() {
    check("flow_velocity_round_trip", |g| {
        let (q, a) = (positive(g), positive(g));
        let flow = VolumeFlow::from_cubic_meters_per_second(q);
        let area = Area::from_square_meters(a);
        let v: Velocity = flow / area;
        let back = v * area;
        assert!((back.cubic_meters_per_second() - q).abs() / q < 1e-12);
    });
}

#[test]
fn mass_flow_scaling_linear() {
    check("mass_flow_scaling_linear", |g| {
        let (q, rho) = (positive(g), positive(g));
        let k = g.draw(1e-3..1e3f64);
        let base = VolumeFlow::from_cubic_meters_per_second(q) * Density::new(rho);
        let scaled = VolumeFlow::from_cubic_meters_per_second(q * k) * Density::new(rho);
        assert!(
            (scaled.kg_per_second() - base.kg_per_second() * k).abs()
                <= 1e-9 * scaled.kg_per_second().abs()
        );
    });
}

#[test]
fn capacity_rate_rise_inverse() {
    check("capacity_rate_rise_inverse", |g| {
        use rcs_units::MassFlow;
        let (p, m, cp) = (positive(g), positive(g), positive(g));
        let cap = MassFlow::from_kg_per_second(m) * SpecificHeat::new(cp);
        let rise = Power::from_watts(p) / cap;
        let back = cap * rise;
        assert!((back.watts() - p).abs() / p < 1e-12);
    });
}

#[test]
fn pressure_head_round_trip() {
    check("pressure_head_round_trip", |g| {
        let h = positive(g);
        let rho = g.draw(1.0..2000.0f64);
        let p = Pressure::from_head_meters(h, rho);
        assert!((p.as_head_meters(rho) - h).abs() / h < 1e-12);
    });
}
