//! Property-based tests for unit arithmetic invariants.

use proptest::prelude::*;
use rcs_units::{
    Area, Celsius, Density, Length, Power, Pressure, Seconds, SpecificHeat, TempDelta,
    ThermalResistance, Velocity, VolumeFlow,
};

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-6..1e6f64
}

proptest! {
    #[test]
    fn celsius_kelvin_round_trip(t in finite()) {
        let c = Celsius::new(t);
        prop_assert!((c.to_kelvin().to_celsius().degrees() - t).abs() < 1e-9);
    }

    #[test]
    fn delta_addition_is_commutative(a in finite(), b in finite()) {
        let x = TempDelta::from_kelvins(a) + TempDelta::from_kelvins(b);
        let y = TempDelta::from_kelvins(b) + TempDelta::from_kelvins(a);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn shift_then_unshift_is_identity(t in finite(), d in finite()) {
        let c = Celsius::new(t);
        let back = (c + TempDelta::from_kelvins(d)) - TempDelta::from_kelvins(d);
        prop_assert!((back.degrees() - t).abs() < 1e-6);
    }

    #[test]
    fn subtraction_recovers_shift(t in finite(), d in finite()) {
        let c = Celsius::new(t);
        let shifted = c + TempDelta::from_kelvins(d);
        prop_assert!(((shifted - c).kelvins() - d).abs() < 1e-6);
    }

    #[test]
    fn resistance_parallel_below_min(a in positive(), b in positive()) {
        let ra = ThermalResistance::from_kelvin_per_watt(a);
        let rb = ThermalResistance::from_kelvin_per_watt(b);
        let p = ra.in_parallel(rb);
        prop_assert!(p.kelvin_per_watt() <= a.min(b) + 1e-12);
        prop_assert!(p.kelvin_per_watt() > 0.0);
    }

    #[test]
    fn resistance_series_exceeds_max(a in positive(), b in positive()) {
        let s = ThermalResistance::from_kelvin_per_watt(a)
            .in_series(ThermalResistance::from_kelvin_per_watt(b));
        prop_assert!(s.kelvin_per_watt() >= a.max(b));
    }

    #[test]
    fn conductance_involution(r in positive()) {
        let res = ThermalResistance::from_kelvin_per_watt(r);
        let back = res.to_conductance().to_resistance();
        prop_assert!((back.kelvin_per_watt() - r).abs() / r < 1e-12);
    }

    #[test]
    fn power_resistance_delta_consistency(p in positive(), r in positive()) {
        let dt = Power::from_watts(p) * ThermalResistance::from_kelvin_per_watt(r);
        let back = dt / ThermalResistance::from_kelvin_per_watt(r);
        prop_assert!((back.watts() - p).abs() / p < 1e-12);
    }

    #[test]
    fn energy_power_time_consistency(p in positive(), s in positive()) {
        let e = Power::from_watts(p) * Seconds::new(s);
        prop_assert!(((e / Seconds::new(s)).watts() - p).abs() / p < 1e-12);
        prop_assert!(((e / Power::from_watts(p)).seconds() - s).abs() / s < 1e-12);
    }

    #[test]
    fn geometry_associativity(a in positive(), b in positive(), c in positive()) {
        let v1 = (Length::from_meters(a) * Length::from_meters(b)) * Length::from_meters(c);
        let v2 = Length::from_meters(a) * (Length::from_meters(b) * Length::from_meters(c));
        prop_assert!((v1.cubic_meters() - v2.cubic_meters()).abs() <= 1e-9 * v1.cubic_meters());
    }

    #[test]
    fn flow_velocity_round_trip(q in positive(), a in positive()) {
        let flow = VolumeFlow::from_cubic_meters_per_second(q);
        let area = Area::from_square_meters(a);
        let v: Velocity = flow / area;
        let back = v * area;
        prop_assert!(
            (back.cubic_meters_per_second() - q).abs() / q < 1e-12
        );
    }

    #[test]
    fn mass_flow_scaling_linear(q in positive(), rho in positive(), k in 1e-3..1e3f64) {
        let base = VolumeFlow::from_cubic_meters_per_second(q) * Density::new(rho);
        let scaled = VolumeFlow::from_cubic_meters_per_second(q * k) * Density::new(rho);
        prop_assert!((scaled.kg_per_second() - base.kg_per_second() * k).abs()
            <= 1e-9 * scaled.kg_per_second().abs());
    }

    #[test]
    fn capacity_rate_rise_inverse(p in positive(), m in positive(), cp in positive()) {
        use rcs_units::MassFlow;
        let cap = MassFlow::from_kg_per_second(m) * SpecificHeat::new(cp);
        let rise = Power::from_watts(p) / cap;
        let back = cap * rise;
        prop_assert!((back.watts() - p).abs() / p < 1e-12);
    }

    #[test]
    fn pressure_head_round_trip(h in positive(), rho in 1.0..2000.0f64) {
        let p = Pressure::from_head_meters(h, rho);
        prop_assert!((p.as_head_meters(rho) - h).abs() / h < 1e-12);
    }
}
