//! Property-based tests for the cooling-system models.

use rcs_cooling::control::{worst_action, ControlSubsystem, Readings, Severity};
use rcs_cooling::maintenance::{summarize, PlumbingTopology};
use rcs_cooling::plausibility::{ChannelLimits, ChannelStatus, PlausibilityFilter};
use rcs_cooling::risk::{Consequence, FailureClass};
use rcs_cooling::{availability, ColdPlateLoop, CoolingArchitecture, ImmersionBath};
use rcs_testkit::check_cases;
use rcs_units::{Celsius, Seconds, VolumeFlow};

fn classes(rate: f64, downtime: f64, loss_p: f64) -> Vec<FailureClass> {
    vec![FailureClass {
        name: "synthetic".into(),
        rate_per_year: rate,
        consequence: Consequence {
            downtime_hours: downtime,
            hardware_loss_probability: loss_p,
        },
    }]
}

/// Monte-Carlo availability is a probability and decreases with rate.
#[test]
fn availability_is_bounded_and_monotone() {
    check_cases("availability_is_bounded_and_monotone", 32, |g| {
        let rate = g.draw(0.01..5.0f64);
        let k = g.draw(1.2..5.0f64);
        let downtime = g.draw(0.5..48.0f64);
        let seed = g.draw(0u64..100);
        let lo = availability::monte_carlo(&classes(rate, downtime, 0.0), 3.0, 400, seed);
        let hi = availability::monte_carlo(&classes(rate * k, downtime, 0.0), 3.0, 400, seed);
        assert!((0.0..=1.0).contains(&lo.mean_availability));
        assert!((0.0..=1.0).contains(&hi.mean_availability));
        assert!(hi.mean_availability <= lo.mean_availability + 1e-3);
        assert!(lo.p05_availability <= lo.mean_availability + 1e-12);
    });
}

/// Mean event count tracks the analytic Poisson expectation.
#[test]
fn event_counts_track_rate() {
    check_cases("event_counts_track_rate", 32, |g| {
        let rate = g.draw(0.1..4.0f64);
        let seed = g.draw(0u64..50);
        let report = availability::monte_carlo(&classes(rate, 1.0, 0.0), 4.0, 1500, seed);
        let rel = (report.mean_events_per_year - rate).abs() / rate;
        assert!(
            rel < 0.12,
            "MC {} vs rate {rate}",
            report.mean_events_per_year
        );
    });
}

/// Hardware losses scale with the loss probability.
#[test]
fn hardware_losses_scale() {
    check_cases("hardware_losses_scale", 32, |g| {
        let p1 = g.draw(0.05..0.4f64);
        let seed = g.draw(0u64..50);
        let lo = availability::monte_carlo(&classes(1.0, 1.0, p1), 5.0, 1500, seed);
        let hi = availability::monte_carlo(&classes(1.0, 1.0, 2.0 * p1), 5.0, 1500, seed);
        assert!(hi.mean_hardware_losses > lo.mean_hardware_losses);
    });
}

/// Control alarms are monotone: making any reading worse never clears
/// an alarm level.
#[test]
fn alarms_monotone_in_component_temperature() {
    check_cases("alarms_monotone_in_component_temperature", 32, |g| {
        let t1 = g.draw(30.0..80.0f64);
        let dt = g.draw(0.5..30.0f64);
        let ctl = ControlSubsystem::default();
        let base = Readings {
            coolant_level: 1.0,
            coolant_flow: VolumeFlow::liters_per_minute(400.0),
            coolant_temperature: Celsius::new(28.0),
            component_temperature: Celsius::new(t1),
        };
        let worse = Readings {
            component_temperature: Celsius::new(t1 + dt),
            ..base
        };
        let sev = |r: &Readings| {
            ctl.evaluate(r)
                .iter()
                .map(|a| match a.severity {
                    Severity::Warning => 1,
                    Severity::Critical => 2,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(sev(&worse) >= sev(&base));
    });
}

/// Strictly worsening a scan — draining coolant, starving the flow,
/// heating the agent and the components, any subset at once — must
/// never weaken the recommended action. A supervisor that asks for
/// *less* when the plant gets *worse* is wrong by construction.
#[test]
fn worse_readings_never_weaken_the_action() {
    check_cases("worse_readings_never_weaken_the_action", 64, |g| {
        let ctl = ControlSubsystem::default();
        let base = Readings {
            coolant_level: g.draw(0.5..1.05f64),
            coolant_flow: VolumeFlow::liters_per_minute(g.draw(0.0..600.0f64)),
            coolant_temperature: Celsius::new(g.draw(20.0..45.0f64)),
            component_temperature: Celsius::new(g.draw(40.0..75.0f64)),
        };
        // worsen each channel independently (possibly by zero)
        let worse = Readings {
            coolant_level: base.coolant_level - g.draw(0.0..0.4f64),
            coolant_flow: VolumeFlow::liters_per_minute(
                (base.coolant_flow.as_liters_per_minute() - g.draw(0.0..400.0f64)).max(0.0),
            ),
            coolant_temperature: base.coolant_temperature
                + rcs_units::TempDelta::from_kelvins(g.draw(0.0..10.0f64)),
            component_temperature: base.component_temperature
                + rcs_units::TempDelta::from_kelvins(g.draw(0.0..15.0f64)),
        };
        let act = |r: &Readings| worst_action(ctl.evaluate(r).iter().map(|a| a.action));
        assert!(
            act(&worse).severity_rank() >= act(&base).severity_rank(),
            "worse scan {worse:?} produced {:?}, base scan {base:?} produced {:?}",
            act(&worse),
            act(&base)
        );
    });
}

/// Maintenance lost-hours grow monotonically with rack size for every
/// topology, and the self-contained topology grows only linearly.
#[test]
fn maintenance_scaling() {
    check_cases("maintenance_scaling", 32, |g| {
        let n = g.draw(2usize..24);
        for topo in [
            PlumbingTopology::SelfContainedModules,
            PlumbingTopology::CentralizedImmersion,
            PlumbingTopology::ColdPlateLoop,
        ] {
            let small = summarize(topo, n);
            let large = summarize(topo, n + 2);
            assert!(large.lost_module_hours_per_year >= small.lost_module_hours_per_year);
        }
        // self-contained is exactly linear: hours/n is constant
        let a = summarize(PlumbingTopology::SelfContainedModules, n);
        let b = summarize(PlumbingTopology::SelfContainedModules, 2 * n);
        assert!((b.lost_module_hours_per_year - 2.0 * a.lost_module_hours_per_year).abs() < 1e-9);
    });
}

/// Connection counts: per-chip plates always exceed per-board plates,
/// which always exceed the immersion bath.
#[test]
fn connection_ordering() {
    check_cases("connection_ordering", 32, |g| {
        let chips = g.draw(8usize..256);
        let per_chip = ColdPlateLoop::per_chip_plates(chips).pressure_tight_connections();
        let per_board =
            ColdPlateLoop::per_board_plates(chips.div_ceil(8)).pressure_tight_connections();
        let bath = ImmersionBath::skat_default().pressure_tight_connections();
        assert!(per_chip > per_board);
        assert!(per_board > bath);
    });
}

/// A dropout that recovers *inside* the hold window is only ever a
/// [`ChannelStatus::Held`] degradation; one that outlasts the window
/// crosses to [`ChannelStatus::Failed`] before recovery. Either way the
/// first plausible sample restores [`ChannelStatus::Valid`], and the
/// dropout counter tallies exactly the `None` scans.
#[test]
fn dropout_recovery_inside_vs_past_the_hold_window() {
    check_cases("dropout_recovery_inside_vs_past_the_hold_window", 64, |g| {
        let hold = g.draw(10.0..120.0f64);
        let scan = g.draw(1.0..5.0f64);
        let dropouts = g.draw(1usize..80);
        let mut f = PlausibilityFilter::new(ChannelLimits::agent_temperature_c())
            .with_hold_timeout(Seconds::new(hold));
        f.accept(Seconds::new(0.0), Some(29.0));

        let mut saw_failed = false;
        for i in 1..=dropouts {
            let t = Seconds::new(i as f64 * scan);
            let s = f.accept(t, None);
            // held while the window runs, failed once it expires —
            // the window starts at the first implausible scan
            let elapsed = (i - 1) as f64 * scan;
            let expect = if elapsed >= hold {
                ChannelStatus::Failed
            } else {
                ChannelStatus::Held
            };
            assert_eq!(s.status, expect, "scan {i}, elapsed {elapsed}, hold {hold}");
            saw_failed |= s.status == ChannelStatus::Failed;
            // the last good value is offered throughout, even after failure
            assert_eq!(s.value, Some(29.0));
        }

        // recovery at the last good value is always rate-plausible
        let t_rec = Seconds::new((dropouts + 1) as f64 * scan);
        let back = f.accept(t_rec, Some(29.0));
        assert_eq!(back.status, ChannelStatus::Valid);
        assert_eq!(f.dropouts(), dropouts as u64);
        assert_eq!(f.rejected(), 0);
        // the window boundary is exact: failure seen iff the dropout run
        // actually spanned the hold timeout
        assert_eq!(saw_failed, (dropouts - 1) as f64 * scan >= hold);
    });
}

/// The rate check measures against the **last scan time**, not the last
/// good sample's time: a jump delivered right after a long dropout gap
/// is still implausible, even though dividing it by the whole gap would
/// dilute it below the rate limit. (If the filter measured against the
/// last good time, any stuck value would launder itself by waiting.)
#[test]
fn rate_check_straddles_a_long_scan_gap() {
    check_cases("rate_check_straddles_a_long_scan_gap", 64, |g| {
        let limits = ChannelLimits::agent_temperature_c();
        let gap = g.draw(100.0..2000.0f64);
        let dt = g.draw(1.0..4.0f64);
        // big enough to violate the per-scan rate, small enough to stay
        // in range and to look diluted-plausible over the whole gap
        let jump = g.draw(1.0..(0.04 * (gap + 1.0)).min(20.0));
        // the jump is a lie over the last scan interval …
        assert!(jump / dt > limits.max_rate_per_s);
        // … but would look plausible diluted over the whole gap
        assert!(jump / (gap + dt) <= limits.max_rate_per_s);

        let mut f = PlausibilityFilter::new(limits).with_hold_timeout(Seconds::new(1e6));
        f.accept(Seconds::new(0.0), Some(29.0));
        f.accept(Seconds::new(gap), None);
        let s = f.accept(Seconds::new(gap + dt), Some(29.0 + jump));
        assert_eq!(s.status, ChannelStatus::Held, "gap {gap}, jump {jump}");
        assert_eq!(s.value, Some(29.0));
        assert_eq!(f.rejected(), 1);
        assert_eq!(f.dropouts(), 1);
    });
}

/// The rejection and dropout counters tally exactly the injected
/// events, whatever mix of honest samples, range lies, rate lies and
/// dropouts the channel delivers.
#[test]
fn plausibility_counters_match_injected_event_counts() {
    check_cases(
        "plausibility_counters_match_injected_event_counts",
        64,
        |g| {
            let limits = ChannelLimits::agent_temperature_c();
            let mut f = PlausibilityFilter::new(limits);
            let scan = 2.0;
            // establish a last-good reference so rate lies are really lies
            f.accept(Seconds::new(0.0), Some(29.0));
            let mut lies = 0u64;
            let mut gaps = 0u64;
            let events = g.draw(5usize..60);
            for i in 1..=events {
                let t = Seconds::new(i as f64 * scan);
                match g.draw(0u64..4) {
                    // honest: repeat the last good value (zero rate)
                    0 => {
                        let s = f.accept(t, Some(29.0));
                        assert_eq!(s.status, ChannelStatus::Valid);
                    }
                    // range lie: far above any plausible oil temperature
                    1 => {
                        f.accept(t, Some(limits.max + g.draw(1.0..500.0f64)));
                        lies += 1;
                    }
                    // rate lie: in range, but an implausible jump per scan
                    2 => {
                        f.accept(t, Some(29.0 + g.draw(0.5..10.0f64)));
                        lies += 1;
                    }
                    // dropout
                    _ => {
                        f.accept(t, None);
                        gaps += 1;
                    }
                }
            }
            assert_eq!(f.rejected(), lies);
            assert_eq!(f.dropouts(), gaps);
        },
    );
}

/// Dew-point exposure is monotone in supply temperature.
#[test]
fn dew_point_monotone_in_supply() {
    check_cases("dew_point_monotone_in_supply", 32, |g| {
        let t = g.draw(5.0..25.0f64);
        let mut cold = ColdPlateLoop::per_chip_plates(32);
        cold.supply = Celsius::new(t);
        let exposed = CoolingArchitecture::ColdPlate(cold.clone()).dew_point_exposure();
        let mut warmer = cold;
        warmer.supply = Celsius::new(t + 5.0);
        let exposed_warmer = CoolingArchitecture::ColdPlate(warmer).dew_point_exposure();
        // warming the supply can only clear the exposure, never create it
        assert!(exposed || !exposed_warmer);
    });
}
