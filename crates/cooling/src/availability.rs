//! Seeded Monte-Carlo availability estimation.
//!
//! Draws failure events for every [`FailureClass`] as a Poisson process over a service horizon and accumulates downtime
//! and hardware losses, turning §2's qualitative reliability comparison
//! into distributions.

use rcs_numeric::rng::Rng;

use crate::risk::FailureClass;

/// Result of one Monte-Carlo availability study.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Service horizon simulated, years.
    pub horizon_years: f64,
    /// Trials run.
    pub trials: usize,
    /// Mean availability (uptime fraction) across trials.
    pub mean_availability: f64,
    /// 5th percentile availability (a bad-luck deployment).
    pub p05_availability: f64,
    /// Mean failure events per module-year.
    pub mean_events_per_year: f64,
    /// Mean hardware-loss events over the whole horizon.
    pub mean_hardware_losses: f64,
}

/// Runs a seeded Monte-Carlo availability study over the given failure
/// classes.
///
/// Each class is a Poisson process with its annual rate; every event costs
/// its class downtime and, with the class probability, a hardware loss.
/// Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if `horizon_years` is not positive or `trials` is zero.
#[must_use]
pub fn monte_carlo(
    classes: &[FailureClass],
    horizon_years: f64,
    trials: usize,
    seed: u64,
) -> AvailabilityReport {
    assert!(horizon_years > 0.0, "horizon must be positive");
    assert!(trials > 0, "at least one trial required");
    let mut rng = Rng::seed_from_u64(seed);
    let hours_total = horizon_years * 8766.0;

    let mut availabilities = Vec::with_capacity(trials);
    let mut total_events = 0usize;
    let mut total_losses = 0.0f64;

    for _ in 0..trials {
        let mut downtime = 0.0;
        for class in classes {
            // Poisson draw via exponential interarrival times.
            let rate = class.rate_per_year.max(0.0);
            if rate == 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += rng.exponential(rate);
                if t > horizon_years {
                    break;
                }
                total_events += 1;
                downtime += class.consequence.downtime_hours;
                if rng.gen_bool(class.consequence.hardware_loss_probability.clamp(0.0, 1.0)) {
                    total_losses += 1.0;
                }
            }
        }
        availabilities.push(1.0 - (downtime / hours_total).min(1.0));
    }

    availabilities.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let mean = availabilities.iter().sum::<f64>() / trials as f64;
    let p05 = availabilities[(trials as f64 * 0.05) as usize];

    AvailabilityReport {
        horizon_years,
        trials,
        mean_availability: mean,
        p05_availability: p05,
        mean_events_per_year: total_events as f64 / (trials as f64 * horizon_years),
        mean_hardware_losses: total_losses / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{ColdPlateLoop, CoolingArchitecture, ImmersionBath};
    use crate::risk;

    #[test]
    fn deterministic_for_a_seed() {
        let classes = risk::failure_classes(&CoolingArchitecture::Immersion(
            ImmersionBath::skat_default(),
        ));
        let a = monte_carlo(&classes, 5.0, 500, 42);
        let b = monte_carlo(&classes, 5.0, 500, 42);
        assert_eq!(a, b);
        let c = monte_carlo(&classes, 5.0, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn event_rate_matches_the_analytic_sum() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let analytic: f64 = classes.iter().map(|c| c.rate_per_year).sum();
        let report = monte_carlo(&classes, 5.0, 2000, 7);
        let rel = (report.mean_events_per_year - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "MC {} vs analytic {analytic}",
            report.mean_events_per_year
        );
    }

    #[test]
    fn immersion_availability_beats_cold_plates() {
        let im = monte_carlo(
            &risk::failure_classes(&CoolingArchitecture::Immersion(
                ImmersionBath::skat_default(),
            )),
            5.0,
            2000,
            11,
        );
        let cp = monte_carlo(
            &risk::failure_classes(&CoolingArchitecture::ColdPlate(
                ColdPlateLoop::per_chip_plates(96),
            )),
            5.0,
            2000,
            11,
        );
        assert!(im.mean_availability > cp.mean_availability);
        assert!(im.mean_hardware_losses < 1e-9);
        assert!(cp.mean_hardware_losses > 1.0); // ~0.45/yr x 5 yr
                                                // both are still "available" systems, not toys
        assert!(im.mean_availability > 0.999);
        assert!(cp.mean_availability > 0.98);
    }

    #[test]
    fn p05_is_no_better_than_the_mean() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let r = monte_carlo(&classes, 5.0, 1000, 3);
        assert!(r.p05_availability <= r.mean_availability);
    }
}
