//! Seeded Monte-Carlo availability estimation.
//!
//! Draws failure events for every [`FailureClass`] as a Poisson process over a service horizon and accumulates downtime
//! and hardware losses, turning §2's qualitative reliability comparison
//! into distributions.
//!
//! # Determinism contract
//!
//! The study is a pure function of `(classes, horizon, trials, seed)` at
//! **any** thread count. Trials are partitioned into fixed-size chunks
//! ([`TRIALS_PER_CHUNK`], independent of the thread count); chunk `i`
//! draws from RNG stream `i` of `Rng::split_streams` (streams 2^128
//! steps apart, so they provably never overlap); and partial results are
//! reduced in chunk order. Scheduling chunks onto 1, 2 or 64 workers
//! therefore changes wall-clock time only — never a single bit of the
//! report.

use rcs_kernel::{Clock, SinkState, SnapReader, SnapWriter, SnapshotError};
use rcs_numeric::rng::Rng;
use rcs_numeric::stats::percentile;
use rcs_obs::Registry;
use rcs_units::HOURS_PER_YEAR;

use crate::risk::FailureClass;

/// Trials per RNG stream/work item. Fixed — never derived from the
/// thread count — so the chunk → stream mapping is pinned by the seed
/// alone. 64 trials is coarse enough that pool overhead is noise and
/// fine enough that a 4000-trial study still fans out 63 ways.
pub const TRIALS_PER_CHUNK: usize = 64;

/// Result of one Monte-Carlo availability study.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Service horizon simulated, years.
    pub horizon_years: f64,
    /// Trials run.
    pub trials: usize,
    /// Mean availability (uptime fraction) across trials.
    pub mean_availability: f64,
    /// 5th percentile availability (a bad-luck deployment), nearest-rank.
    pub p05_availability: f64,
    /// Mean failure events per module-year.
    pub mean_events_per_year: f64,
    /// Mean hardware-loss events over the whole horizon.
    pub mean_hardware_losses: f64,
}

/// One chunk's contribution, reduced in chunk order.
struct ChunkOutcome {
    /// Per-trial availabilities, in trial order.
    availabilities: Vec<f64>,
    /// Failure events across the chunk (integer count, order-free).
    events: u64,
    /// Hardware-loss events across the chunk.
    losses: u64,
}

/// Runs the trials of one chunk on its own RNG stream.
fn run_chunk(
    classes: &[FailureClass],
    horizon_years: f64,
    hours_total: f64,
    trials: usize,
    rng: &mut Rng,
) -> ChunkOutcome {
    let mut availabilities = Vec::with_capacity(trials);
    let mut events = 0u64;
    let mut losses = 0u64;
    for _ in 0..trials {
        let mut downtime = 0.0;
        for class in classes {
            // Poisson draw via exponential interarrival times.
            let rate = class.rate_per_year.max(0.0);
            if rate == 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += rng.exponential(rate);
                if t > horizon_years {
                    break;
                }
                events += 1;
                downtime += class.consequence.downtime_hours;
                if rng.gen_bool(class.consequence.hardware_loss_probability.clamp(0.0, 1.0)) {
                    losses += 1;
                }
            }
        }
        availabilities.push(1.0 - (downtime / hours_total).min(1.0));
    }
    ChunkOutcome {
        availabilities,
        events,
        losses,
    }
}

/// Runs a seeded Monte-Carlo availability study over the given failure
/// classes, on the default worker count (`rcs_parallel::thread_count`).
///
/// Each class is a Poisson process with its annual rate; every event costs
/// its class downtime and, with the class probability, a hardware loss.
/// Deterministic for a fixed seed at any thread count (see the module
/// docs for the chunking contract).
///
/// # Panics
///
/// Panics if `horizon_years` is not positive or `trials` is zero.
#[must_use]
pub fn monte_carlo(
    classes: &[FailureClass],
    horizon_years: f64,
    trials: usize,
    seed: u64,
) -> AvailabilityReport {
    monte_carlo_with_threads(
        classes,
        horizon_years,
        trials,
        seed,
        rcs_parallel::thread_count(),
    )
}

/// [`monte_carlo`] with an explicit worker count.
///
/// The report is bit-identical for every `threads` value; the
/// determinism tests assert this across 1/2/4/7 workers.
///
/// # Panics
///
/// Panics if `horizon_years` is not positive or `trials` is zero.
#[must_use]
pub fn monte_carlo_with_threads(
    classes: &[FailureClass],
    horizon_years: f64,
    trials: usize,
    seed: u64,
    threads: usize,
) -> AvailabilityReport {
    monte_carlo_observed(
        classes,
        horizon_years,
        trials,
        seed,
        threads,
        Registry::disabled(),
    )
}

/// [`monte_carlo_with_threads`] with telemetry recorded into `obs` —
/// all golden-channel integers, bit-identical at any `threads`:
///
/// - `mc.runs`, `mc.trials`, `mc.chunks` — workload shape (a function
///   of `trials` alone, never of the thread count);
/// - `mc.events`, `mc.hardware_losses` — total failure events and
///   hardware losses drawn across all trials, recorded per chunk into
///   per-chunk shards and merged in chunk order (these are the integer
///   numerators behind the report's `mean_events_per_year` and
///   `mean_hardware_losses`);
/// - plus the `parallel.*` map counters from the pool.
///
/// # Panics
///
/// Panics if `horizon_years` is not positive or `trials` is zero.
#[must_use]
pub fn monte_carlo_observed(
    classes: &[FailureClass],
    horizon_years: f64,
    trials: usize,
    seed: u64,
    threads: usize,
    obs: &Registry,
) -> AvailabilityReport {
    monte_carlo_traced(
        classes,
        horizon_years,
        trials,
        seed,
        threads,
        obs,
        rcs_obs::trace::TraceRecorder::disabled(),
    )
}

/// [`monte_carlo_observed`] plus trace recording: every trial pushes its
/// availability into the `mc.availability` channel of `trace` with the
/// global trial index as the time axis. Per-chunk shard recorders are
/// merged in chunk order, so the retained (deterministically decimated)
/// series is bit-identical at every `threads` value.
///
/// # Panics
///
/// Panics if `horizon_years` is not positive or `trials` is zero.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_traced(
    classes: &[FailureClass],
    horizon_years: f64,
    trials: usize,
    seed: u64,
    threads: usize,
    obs: &Registry,
    trace: &rcs_obs::trace::TraceRecorder,
) -> AvailabilityReport {
    let mut session = McSession::new(horizon_years, trials, seed, threads, obs);
    while session.advance(classes, obs, trace, u64::MAX) > 0 {}
    session.finish()
}

/// Snapshot kind tag of [`McSession::checkpoint`] bytes.
pub const MC_SNAPSHOT_KIND: &str = "cooling.mc";

/// A resumable Monte-Carlo availability study: the chunked trial loop
/// hoisted onto the `rcs-kernel` stepping kernel, one kernel step per
/// 64-trial chunk.
///
/// The session owns the accumulated per-trial availabilities, event
/// tallies and the chunk [`Clock`]; the failure classes are passed into
/// every [`McSession::advance`] call as the immutable environment. RNG
/// streams are recomputed from the seed on every batch (chunk `i`
/// always draws from jumped stream `i`), so a checkpoint never stores a
/// stream mid-chunk — chunk granularity is the checkpoint granularity.
/// A resumed session finishes **bitwise** identically — report, golden
/// counters, trace — to one that was never interrupted, at any thread
/// count on either side of the split.
#[derive(Debug)]
pub struct McSession {
    horizon_years: f64,
    trials: usize,
    seed: u64,
    threads: usize,
    clock: Clock,
    /// Per-trial availabilities accumulated in chunk order (unsorted —
    /// the final sort happens in [`McSession::finish`]).
    availabilities: Vec<f64>,
    total_events: u64,
    total_losses: u64,
}

impl McSession {
    /// Prepares a study and records its golden workload shape
    /// (`mc.runs` / `mc.trials` / `mc.chunks` and the pool's map-shape
    /// counters) exactly once — however many batches the chunks are
    /// later advanced in.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_years` is not positive or `trials` is zero.
    #[must_use]
    pub fn new(
        horizon_years: f64,
        trials: usize,
        seed: u64,
        threads: usize,
        obs: &Registry,
    ) -> Self {
        assert!(horizon_years > 0.0, "horizon must be positive");
        assert!(trials > 0, "at least one trial required");
        let chunk_count = rcs_parallel::fixed_chunks(trials, TRIALS_PER_CHUNK).len();
        obs.inc("mc.runs");
        obs.add("mc.trials", trials as u64);
        obs.add("mc.chunks", chunk_count as u64);
        // The straight-through run is one pool map over every chunk;
        // batched resumption must not re-count the map shape.
        obs.inc("parallel.maps");
        obs.add("parallel.tasks", chunk_count as u64);
        Self {
            horizon_years,
            trials,
            seed,
            threads,
            clock: Clock::counted(chunk_count as u64),
            availabilities: Vec::with_capacity(trials),
            total_events: 0,
            total_losses: 0,
        }
    }

    /// Runs up to `max_chunks` of the remaining chunks as one pool
    /// batch, reducing shard telemetry and results in chunk order.
    /// Returns how many chunks ran (0 when the study is complete).
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    pub fn advance(
        &mut self,
        classes: &[FailureClass],
        obs: &Registry,
        trace: &rcs_obs::trace::TraceRecorder,
        max_chunks: u64,
    ) -> u64 {
        let mut indices = Vec::new();
        while (indices.len() as u64) < max_chunks {
            let Some(tick) = self.clock.tick() else { break };
            indices.push(tick.index as usize);
        }
        if indices.is_empty() {
            return 0;
        }
        // Fixed partition, one jumped stream per chunk: the work list is
        // a function of (trials, seed) only, recomputed per batch so
        // chunk i always draws from stream i.
        let chunks = rcs_parallel::fixed_chunks(self.trials, TRIALS_PER_CHUNK);
        let streams = Rng::seed_from_u64(self.seed).split_streams(chunks.len());
        let work: Vec<(core::ops::Range<usize>, Rng)> = chunks.into_iter().zip(streams).collect();
        let batch: Vec<(core::ops::Range<usize>, Rng)> = indices
            .iter()
            .map(|&i| {
                let (range, rng) = &work[i];
                (range.clone(), rng.clone())
            })
            .collect();

        let horizon_years = self.horizon_years;
        let hours_total = horizon_years * HOURS_PER_YEAR;
        let partials = rcs_parallel::par_map_shards(
            batch,
            self.threads,
            obs,
            trace,
            // unprefixed: every chunk appends to the shared channels,
            // merged in chunk order
            |_| String::new(),
            |_, (range, mut rng), shard, shard_trace| {
                let outcome = run_chunk(classes, horizon_years, hours_total, range.len(), &mut rng);
                shard.add("mc.events", outcome.events);
                shard.add("mc.hardware_losses", outcome.losses);
                // work accounting: one unit per simulated trial, plus one
                // per sampled Poisson event (the inner-loop cost driver)
                shard.work("mc.trials", range.len() as u64);
                shard.work("mc.events", outcome.events);
                if shard_trace.is_enabled() {
                    let ch =
                        shard_trace.channel("mc.availability", rcs_obs::trace::ChannelKind::Scalar);
                    for (offset, availability) in outcome.availabilities.iter().enumerate() {
                        shard_trace.record(ch, (range.start + offset) as f64, *availability);
                    }
                }
                outcome
            },
        );

        // Fixed-order reduction: chunk 0, chunk 1, ... regardless of
        // which worker finished first, so float accumulation order is
        // pinned.
        let ran = partials.len() as u64;
        for partial in partials {
            self.availabilities.extend(partial.availabilities);
            self.total_events += partial.events;
            self.total_losses += partial.losses;
        }
        ran
    }

    /// `true` once every chunk has run.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.clock.is_finished()
    }

    /// Chunks completed so far.
    #[must_use]
    pub fn chunks_done(&self) -> u64 {
        self.clock.next_index()
    }

    /// Reduces the accumulated trials into the final report.
    ///
    /// # Panics
    ///
    /// Panics if called before every chunk has run.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn finish(self) -> AvailabilityReport {
        assert!(
            self.is_finished(),
            "finish() before all chunks ran: {} of {}",
            self.availabilities.len(),
            self.trials
        );
        let mut availabilities = self.availabilities;
        // total order even under NaN: a poisoned trial would sort to the
        // top deterministically instead of leaving the percentile rank
        // dependent on the comparison sequence
        availabilities.sort_by(f64::total_cmp);
        let trials = self.trials as f64;
        let mean = availabilities.iter().sum::<f64>() / trials;
        let p05 = percentile(&availabilities, 0.05);
        AvailabilityReport {
            horizon_years: self.horizon_years,
            trials: self.trials,
            mean_availability: mean,
            p05_availability: p05,
            mean_events_per_year: self.total_events as f64 / (trials * self.horizon_years),
            mean_hardware_losses: self.total_losses as f64 / trials,
        }
    }

    /// Seals the study state — parameters, chunk clock, accumulated
    /// trials and tallies — plus the contents of `obs` and `trace` into
    /// versioned snapshot bytes.
    #[must_use]
    pub fn checkpoint(&self, obs: &Registry, trace: &rcs_obs::trace::TraceRecorder) -> Vec<u8> {
        self.checkpoint_spanned(obs, trace, rcs_obs::span::SpanSink::disabled())
    }

    /// [`McSession::checkpoint`] that additionally seals the span
    /// sink's state — open stack included — so a span bracketing this
    /// study survives the checkpoint.
    #[must_use]
    pub fn checkpoint_spanned(
        &self,
        obs: &Registry,
        trace: &rcs_obs::trace::TraceRecorder,
        spans: &rcs_obs::span::SpanSink,
    ) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.f64(self.horizon_years);
        w.u64(self.trials as u64);
        w.u64(self.seed);
        w.u64(self.threads as u64);
        self.clock.write_into(&mut w);
        w.f64_slice(&self.availabilities);
        w.u64(self.total_events);
        w.u64(self.total_losses);
        SinkState::capture_spanned(obs, trace, spans).write_into(&mut w);
        rcs_kernel::seal(MC_SNAPSHOT_KIND, &w.into_bytes())
    }

    /// Reconstructs a session from [`McSession::checkpoint`] bytes,
    /// restoring the captured telemetry into the (fresh) `obs` and
    /// `trace` sinks. The thread count is *not* restored — pass the
    /// current one; the study is bit-identical at any value.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on corrupted or truncated bytes or a snapshot
    /// of a different kind.
    pub fn resume(
        bytes: &[u8],
        threads: usize,
        obs: &Registry,
        trace: &rcs_obs::trace::TraceRecorder,
    ) -> Result<Self, SnapshotError> {
        Self::resume_spanned(
            bytes,
            threads,
            obs,
            trace,
            rcs_obs::span::SpanSink::disabled(),
        )
    }

    /// [`McSession::resume`] that additionally restores the sealed
    /// span tree — open stack included — into `spans`.
    ///
    /// # Errors
    ///
    /// See [`McSession::resume`].
    pub fn resume_spanned(
        bytes: &[u8],
        threads: usize,
        obs: &Registry,
        trace: &rcs_obs::trace::TraceRecorder,
        spans: &rcs_obs::span::SpanSink,
    ) -> Result<Self, SnapshotError> {
        let payload = rcs_kernel::open(MC_SNAPSHOT_KIND, bytes)?;
        let mut r = SnapReader::new(payload);
        let horizon_years = r.f64()?;
        let trials_raw = r.u64()?;
        let trials = usize::try_from(trials_raw).map_err(|_| {
            SnapshotError::Malformed(format!("trial count {trials_raw} overflows usize"))
        })?;
        let seed = r.u64()?;
        let _stored_threads = r.u64()?;
        let clock = Clock::read_from(&mut r)?;
        let availabilities = r.f64_vec()?;
        let total_events = r.u64()?;
        let total_losses = r.u64()?;
        let sinks = SinkState::read_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed(
                "trailing bytes after mc session state".to_owned(),
            ));
        }
        if trials == 0 || horizon_years <= 0.0 {
            return Err(SnapshotError::Malformed(format!(
                "invalid study parameters: {trials} trials over {horizon_years} years"
            )));
        }
        sinks.restore_spanned(obs, trace, spans)?;
        Ok(Self {
            horizon_years,
            trials,
            seed,
            threads,
            clock,
            availabilities,
            total_events,
            total_losses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{ColdPlateLoop, CoolingArchitecture, ImmersionBath};
    use crate::risk;

    #[test]
    fn deterministic_for_a_seed() {
        let classes = risk::failure_classes(&CoolingArchitecture::Immersion(
            ImmersionBath::skat_default(),
        ));
        let a = monte_carlo(&classes, 5.0, 500, 42);
        let b = monte_carlo(&classes, 5.0, 500, 42);
        assert_eq!(a, b);
        let c = monte_carlo(&classes, 5.0, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn identical_at_every_thread_count() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let serial = monte_carlo_with_threads(&classes, 5.0, 700, 42, 1);
        for threads in [2, 4, 7] {
            let parallel = monte_carlo_with_threads(&classes, 5.0, 700, 42, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn partial_final_chunk_is_handled() {
        // 70 trials = one full 64-trial chunk + one 6-trial chunk.
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let r = monte_carlo(&classes, 5.0, 70, 9);
        assert_eq!(r.trials, 70);
        assert!(r.mean_availability > 0.9 && r.mean_availability <= 1.0);
    }

    #[test]
    fn event_rate_matches_the_analytic_sum() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let analytic: f64 = classes.iter().map(|c| c.rate_per_year).sum();
        let report = monte_carlo(&classes, 5.0, 2000, 7);
        let rel = (report.mean_events_per_year - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "MC {} vs analytic {analytic}",
            report.mean_events_per_year
        );
    }

    #[test]
    fn immersion_availability_beats_cold_plates() {
        let im = monte_carlo(
            &risk::failure_classes(&CoolingArchitecture::Immersion(
                ImmersionBath::skat_default(),
            )),
            5.0,
            2000,
            11,
        );
        let cp = monte_carlo(
            &risk::failure_classes(&CoolingArchitecture::ColdPlate(
                ColdPlateLoop::per_chip_plates(96),
            )),
            5.0,
            2000,
            11,
        );
        assert!(im.mean_availability > cp.mean_availability);
        assert!(im.mean_hardware_losses < 1e-9);
        assert!(cp.mean_hardware_losses > 1.0); // ~0.45/yr x 5 yr
                                                // both are still "available" systems, not toys
        assert!(im.mean_availability > 0.999);
        assert!(cp.mean_availability > 0.98);
    }

    #[test]
    fn observed_counters_are_the_integer_numerators_of_the_report() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let obs = Registry::new();
        let report = monte_carlo_observed(&classes, 5.0, 700, 42, 4, &obs);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("mc.runs"), 1);
        assert_eq!(snap.counter("mc.trials"), 700);
        assert_eq!(snap.counter("mc.chunks"), 11); // ceil(700/64)
        let events = snap.counter("mc.events");
        let losses = snap.counter("mc.hardware_losses");
        assert!(events > 0);
        let events_per_year = events as f64 / (700.0 * 5.0);
        assert!((events_per_year - report.mean_events_per_year).abs() < 1e-12);
        let mean_losses = losses as f64 / 700.0;
        assert!((mean_losses - report.mean_hardware_losses).abs() < 1e-12);
    }

    #[test]
    fn observed_telemetry_is_identical_at_every_thread_count() {
        let classes = risk::failure_classes(&CoolingArchitecture::Immersion(
            ImmersionBath::skat_default(),
        ));
        let run = |threads: usize| {
            let obs = Registry::new();
            let report = monte_carlo_observed(&classes, 5.0, 500, 42, threads, &obs);
            (report, obs.snapshot())
        };
        let (ref_report, ref_snap) = run(1);
        for threads in [2, 4, 7] {
            let (report, snap) = run(threads);
            assert_eq!(report, ref_report, "threads = {threads}");
            assert_eq!(snap, ref_snap, "threads = {threads}");
        }
    }

    #[test]
    fn unobserved_entry_point_is_bit_identical_to_observed() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let plain = monte_carlo_with_threads(&classes, 5.0, 300, 9, 2);
        let observed = monte_carlo_observed(&classes, 5.0, 300, 9, 2, &Registry::new());
        assert_eq!(plain, observed);
    }

    #[test]
    fn p05_is_no_better_than_the_mean() {
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let r = monte_carlo(&classes, 5.0, 1000, 3);
        assert!(r.p05_availability <= r.mean_availability);
    }

    #[test]
    fn mc_session_checkpoint_resume_is_bitwise_identical() {
        use rcs_obs::trace::TraceRecorder;

        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        // 700 trials = 11 chunks (10 full + one 60-trial tail).
        let obs_ref = Registry::new();
        let trace_ref = TraceRecorder::new();
        let reference = monte_carlo_traced(&classes, 5.0, 700, 42, 4, &obs_ref, &trace_ref);

        for split in [0u64, 1, 5, 10, 11] {
            let obs_a = Registry::new();
            let trace_a = TraceRecorder::new();
            let mut session = McSession::new(5.0, 700, 42, 2, &obs_a);
            session.advance(&classes, &obs_a, &trace_a, split);
            let bytes = session.checkpoint(&obs_a, &trace_a);

            // Resume on a *different* worker count: the chunk → stream
            // mapping is thread-free, so the split must stay invisible.
            let obs_b = Registry::new();
            let trace_b = TraceRecorder::new();
            let mut resumed =
                McSession::resume(&bytes, 7, &obs_b, &trace_b).expect("snapshot opens");
            while resumed.advance(&classes, &obs_b, &trace_b, 3) > 0 {}
            assert!(resumed.is_finished());
            let report = resumed.finish();

            assert_eq!(report, reference, "report diverged at split {split}");
            assert_eq!(
                obs_b.snapshot(),
                obs_ref.snapshot(),
                "golden counters diverged at split {split}"
            );
            assert_eq!(
                trace_b.snapshot(),
                trace_ref.snapshot(),
                "traces diverged at split {split}"
            );
        }
    }

    #[test]
    fn corrupt_mc_snapshot_is_a_structured_error() {
        use rcs_obs::trace::TraceRecorder;

        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let obs = Registry::new();
        let mut session = McSession::new(5.0, 200, 9, 2, &obs);
        session.advance(&classes, &obs, TraceRecorder::disabled(), 2);
        let bytes = session.checkpoint(&obs, TraceRecorder::disabled());

        let mut flipped = bytes.clone();
        flipped[bytes.len() / 2] ^= 0x01;
        assert!(
            McSession::resume(&flipped, 2, &Registry::new(), TraceRecorder::disabled()).is_err()
        );
        for cut in [0, 7, bytes.len() - 3] {
            assert!(
                McSession::resume(
                    &bytes[..cut],
                    2,
                    &Registry::new(),
                    TraceRecorder::disabled()
                )
                .is_err(),
                "truncated at {cut}"
            );
        }
    }

    #[test]
    fn small_samples_use_nearest_rank_not_the_minimum() {
        // Regression for the truncation bug: with 19 trials the old code
        // indexed (19 * 0.05) as usize = 0 — always the minimum — even
        // though that happens to coincide with nearest-rank for n < 21.
        // Assert the helper is actually wired in: with 40 trials the
        // nearest-rank p05 is the 2nd-smallest, not the minimum.
        let classes = risk::failure_classes(&CoolingArchitecture::ColdPlate(
            ColdPlateLoop::per_chip_plates(96),
        ));
        let r = monte_carlo(&classes, 5.0, 40, 5);
        // reconstruct the sorted per-trial availabilities via a 1-chunk
        // rerun of the same seed and compare ranks
        let chunks = rcs_parallel::fixed_chunks(40, TRIALS_PER_CHUNK);
        assert_eq!(chunks.len(), 1);
        let mut rng = Rng::seed_from_u64(5);
        let mut chunk = run_chunk(&classes, 5.0, 5.0 * HOURS_PER_YEAR, 40, &mut rng);
        chunk.availabilities.sort_by(f64::total_cmp);
        assert_eq!(r.p05_availability, chunk.availabilities[1]);
    }
}
