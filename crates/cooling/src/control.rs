//! The liquid-cooling control subsystem.
//!
//! §2: "The liquid cooling system must have a control subsystem containing
//! sensors of level, flow, and temperature of the heat-transfer agent, and
//! a temperature sensor for cooling components." This module implements
//! that subsystem as a deterministic threshold monitor producing alarms
//! and recommended actions.

use rcs_units::{Celsius, VolumeFlow};

/// One scan of all sensor channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Readings {
    /// Coolant level as a fraction of the nominal fill.
    pub coolant_level: f64,
    /// Circulated coolant flow.
    pub coolant_flow: VolumeFlow,
    /// Heat-transfer agent temperature at the bath outlet.
    pub coolant_temperature: Celsius,
    /// Hottest monitored component (FPGA) temperature.
    pub component_temperature: Celsius,
}

/// Severity of an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Out of nominal band; log and watch.
    Warning,
    /// Action required to avoid damage.
    Critical,
}

/// What the control subsystem tells the operator/supervisor to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// No action, keep monitoring.
    None,
    /// Top up the coolant at next service.
    ScheduleCoolantTopUp,
    /// Reduce the computational load (clock/utilization throttle).
    ThrottleLoad,
    /// Stop the module before hardware is damaged.
    EmergencyShutdown,
    /// Start the standby pump / inspect the running pump.
    SwitchToStandbyPump,
}

impl Action {
    /// Severity rank for comparing recommended actions: `None` < top-up
    /// < throttle < standby pump < shutdown. Strictly worse plant states
    /// must never map to a lower rank.
    #[must_use]
    pub fn severity_rank(self) -> u8 {
        match self {
            Self::None => 0,
            Self::ScheduleCoolantTopUp => 1,
            Self::ThrottleLoad => 2,
            Self::SwitchToStandbyPump => 3,
            Self::EmergencyShutdown => 4,
        }
    }
}

/// The most severe of a set of recommended actions (by
/// [`Action::severity_rank`]); [`Action::None`] for an empty set.
#[must_use]
pub fn worst_action(actions: impl IntoIterator<Item = Action>) -> Action {
    actions
        .into_iter()
        .max_by_key(|a| a.severity_rank())
        .unwrap_or(Action::None)
}

/// One raised alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// Which channel fired.
    pub channel: &'static str,
    /// Severity of the excursion.
    pub severity: Severity,
    /// Recommended response.
    pub action: Action,
    /// Human-readable detail.
    pub message: String,
}

/// Thresholds for the control subsystem.
///
/// Defaults encode the paper's operating envelope: agent at or below
/// 30 °C, components at or below 55 °C with an absolute ceiling at the
/// reliability limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSubsystem {
    /// Warning level threshold (fraction of nominal fill).
    pub min_level_warning: f64,
    /// Critical level threshold.
    pub min_level_critical: f64,
    /// Minimum healthy circulation flow.
    pub min_flow: VolumeFlow,
    /// Agent temperature setpoint (warning above).
    pub agent_setpoint: Celsius,
    /// Agent temperature critical limit.
    pub agent_limit: Celsius,
    /// Component temperature design point (warning above).
    pub component_setpoint: Celsius,
    /// Component temperature critical limit (reliability ceiling).
    pub component_limit: Celsius,
}

impl Default for ControlSubsystem {
    fn default() -> Self {
        Self {
            min_level_warning: 0.92,
            min_level_critical: 0.80,
            min_flow: VolumeFlow::liters_per_minute(150.0),
            agent_setpoint: Celsius::new(30.0),
            agent_limit: Celsius::new(40.0),
            component_setpoint: Celsius::new(55.0),
            component_limit: Celsius::new(67.5),
        }
    }
}

impl ControlSubsystem {
    /// Thresholds for the SKAT+ design point (§4): the hotter
    /// UltraScale+ parts run their agent near 31 °C and their junctions
    /// near 55.5 °C *by design*, so the warning setpoints move up while
    /// the hard critical limits (40 °C agent, 67.5 °C reliability
    /// ceiling) stay exactly where the paper puts them.
    #[must_use]
    pub fn skat_plus() -> Self {
        Self {
            agent_setpoint: Celsius::new(33.0),
            component_setpoint: Celsius::new(58.0),
            ..Self::default()
        }
    }

    /// Evaluates one scan, returning all raised alarms (empty when
    /// healthy), most severe first.
    #[must_use]
    pub fn evaluate(&self, r: &Readings) -> Vec<Alarm> {
        let mut alarms = Vec::new();

        if r.coolant_level < self.min_level_critical {
            alarms.push(Alarm {
                channel: "level",
                severity: Severity::Critical,
                action: Action::EmergencyShutdown,
                message: format!(
                    "coolant level {:.0}% below critical {:.0}%",
                    r.coolant_level * 100.0,
                    self.min_level_critical * 100.0
                ),
            });
        } else if r.coolant_level < self.min_level_warning {
            alarms.push(Alarm {
                channel: "level",
                severity: Severity::Warning,
                action: Action::ScheduleCoolantTopUp,
                message: format!("coolant level {:.0}% low", r.coolant_level * 100.0),
            });
        }

        if r.coolant_flow < self.min_flow {
            let starved = r.coolant_flow.cubic_meters_per_second()
                < 0.5 * self.min_flow.cubic_meters_per_second();
            alarms.push(Alarm {
                channel: "flow",
                severity: if starved {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                action: if starved {
                    Action::SwitchToStandbyPump
                } else {
                    Action::ThrottleLoad
                },
                message: format!(
                    "circulation {:.0} L/min below minimum {:.0} L/min",
                    r.coolant_flow.as_liters_per_minute(),
                    self.min_flow.as_liters_per_minute()
                ),
            });
        }

        if r.coolant_temperature > self.agent_limit {
            alarms.push(Alarm {
                channel: "agent temperature",
                severity: Severity::Critical,
                action: Action::EmergencyShutdown,
                message: format!(
                    "agent at {:.1}, limit {:.1}",
                    r.coolant_temperature, self.agent_limit
                ),
            });
        } else if r.coolant_temperature > self.agent_setpoint {
            alarms.push(Alarm {
                channel: "agent temperature",
                severity: Severity::Warning,
                action: Action::ThrottleLoad,
                message: format!(
                    "agent at {:.1} above setpoint {:.1}",
                    r.coolant_temperature, self.agent_setpoint
                ),
            });
        }

        if r.component_temperature > self.component_limit {
            alarms.push(Alarm {
                channel: "component temperature",
                severity: Severity::Critical,
                action: Action::EmergencyShutdown,
                message: format!(
                    "component at {:.1} beyond reliability limit {:.1}",
                    r.component_temperature, self.component_limit
                ),
            });
        } else if r.component_temperature > self.component_setpoint {
            alarms.push(Alarm {
                channel: "component temperature",
                severity: Severity::Warning,
                action: Action::ThrottleLoad,
                message: format!(
                    "component at {:.1} above design point {:.1}",
                    r.component_temperature, self.component_setpoint
                ),
            });
        }

        alarms.sort_by_key(|a| core::cmp::Reverse(a.severity));
        alarms
    }

    /// `true` if the scan raises no alarm at all.
    #[must_use]
    pub fn is_healthy(&self, r: &Readings) -> bool {
        self.evaluate(r).is_empty()
    }
}

/// A healthy SKAT operating-mode scan, for tests and examples.
#[must_use]
pub fn nominal_skat_readings() -> Readings {
    Readings {
        coolant_level: 1.0,
        coolant_flow: VolumeFlow::liters_per_minute(420.0),
        coolant_temperature: Celsius::new(28.5),
        component_temperature: Celsius::new(53.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scan_is_healthy() {
        let ctl = ControlSubsystem::default();
        assert!(ctl.is_healthy(&nominal_skat_readings()));
    }

    #[test]
    fn low_level_escalates_with_depth() {
        let ctl = ControlSubsystem::default();
        let mut r = nominal_skat_readings();
        r.coolant_level = 0.90;
        let warn = ctl.evaluate(&r);
        assert_eq!(warn.len(), 1);
        assert_eq!(warn[0].severity, Severity::Warning);
        assert_eq!(warn[0].action, Action::ScheduleCoolantTopUp);

        r.coolant_level = 0.70;
        let crit = ctl.evaluate(&r);
        assert_eq!(crit[0].severity, Severity::Critical);
        assert_eq!(crit[0].action, Action::EmergencyShutdown);
    }

    #[test]
    fn starved_flow_switches_to_standby_pump() {
        let ctl = ControlSubsystem::default();
        let mut r = nominal_skat_readings();
        r.coolant_flow = VolumeFlow::liters_per_minute(60.0);
        let alarms = ctl.evaluate(&r);
        assert_eq!(alarms[0].action, Action::SwitchToStandbyPump);
    }

    #[test]
    fn agent_over_30c_warns_per_the_paper() {
        let ctl = ControlSubsystem::default();
        let mut r = nominal_skat_readings();
        r.coolant_temperature = Celsius::new(31.0);
        let alarms = ctl.evaluate(&r);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].channel, "agent temperature");
        assert_eq!(alarms[0].action, Action::ThrottleLoad);
    }

    #[test]
    fn hot_component_hits_the_reliability_ceiling() {
        let ctl = ControlSubsystem::default();
        let mut r = nominal_skat_readings();
        r.component_temperature = Celsius::new(70.0);
        let alarms = ctl.evaluate(&r);
        assert_eq!(alarms[0].severity, Severity::Critical);
        assert_eq!(alarms[0].action, Action::EmergencyShutdown);
    }

    #[test]
    fn critical_alarms_sort_first() {
        let ctl = ControlSubsystem::default();
        let r = Readings {
            coolant_level: 0.90,                               // warning
            coolant_flow: VolumeFlow::liters_per_minute(50.0), // critical
            coolant_temperature: Celsius::new(29.0),
            component_temperature: Celsius::new(54.0),
        };
        let alarms = ctl.evaluate(&r);
        assert_eq!(alarms.len(), 2);
        assert_eq!(alarms[0].severity, Severity::Critical);
        assert_eq!(alarms[1].severity, Severity::Warning);
    }
}
