//! The three cooling architectures the paper compares.

use rcs_fluids::Coolant;
use rcs_hydraulics::PumpCurve;
use rcs_thermal::{Chiller, FlowArrangement, PinFinSink, PlateFinSink, PlateHeatExchanger};
use rcs_units::{
    Celsius, Length, Pressure, ThermalCapacityRate, ThermalResistance, Velocity, VolumeFlow,
};

/// How a closed-loop system allocates cold plates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlateGranularity {
    /// "One cooling plate, one (heated) chip" — IBM Aquasar style (§2).
    PerChip,
    /// "One cooling plate, one printed circuit board" — SKIF-Avrora style
    /// (§2).
    PerBoard,
}

/// Forced-air cooling of a module: plate-fin towers in a front-to-back
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AirCooling {
    /// Air temperature entering the module.
    pub inlet: Celsius,
    /// Free-stream velocity over the sinks.
    pub velocity: Velocity,
    /// The per-chip sink.
    pub sink: PlateFinSink,
    /// Fraction of upstream chip heat that preheats downstream chips'
    /// local air (dense boards recirculate; the reason the paper's
    /// measured overheats exceed a lone-sink estimate).
    pub recirculation: f64,
    /// Fans per module.
    pub fan_count: usize,
}

impl AirCooling {
    /// The machine-room default: 25 °C inlet (the paper's reference
    /// ambient), 3 m/s over the sinks, six fans.
    #[must_use]
    pub fn machine_room_default() -> Self {
        Self {
            inlet: Celsius::new(25.0),
            velocity: Velocity::from_meters_per_second(3.0),
            sink: PlateFinSink::air_tower_default(),
            recirculation: 0.45,
            fan_count: 6,
        }
    }
}

/// Closed-loop cold-plate liquid cooling (§2's first alternative).
#[derive(Debug, Clone, PartialEq)]
pub struct ColdPlateLoop {
    /// The (electrically conductive) coolant — water or glycol.
    pub coolant: Coolant,
    /// Plate allocation.
    pub granularity: PlateGranularity,
    /// Number of cooled chips.
    pub chip_count: usize,
    /// Number of boards (for per-board plates and connection counting).
    pub board_count: usize,
    /// Conductive resistance of one plate's contact with its chip(s).
    pub plate_resistance: ThermalResistance,
    /// Supply coolant temperature.
    pub supply: Celsius,
    /// `true` if the loop runs below atmospheric pressure so breaches suck
    /// air in instead of leaking coolant out (§2's negative-pressure
    /// mitigation — at the price of a more complex hydraulic system).
    pub negative_pressure: bool,
}

impl ColdPlateLoop {
    /// Aquasar-style per-chip plates over `chip_count` chips
    /// (8 chips per board).
    #[must_use]
    pub fn per_chip_plates(chip_count: usize) -> Self {
        Self {
            coolant: Coolant::water(),
            granularity: PlateGranularity::PerChip,
            chip_count,
            board_count: chip_count.div_ceil(8),
            plate_resistance: ThermalResistance::from_kelvin_per_watt(0.06),
            supply: Celsius::new(20.0),
            negative_pressure: false,
        }
    }

    /// SKIF-Avrora-style one-plate-per-board over `board_count` boards of
    /// 8 chips.
    #[must_use]
    pub fn per_board_plates(board_count: usize) -> Self {
        Self {
            coolant: Coolant::water(),
            granularity: PlateGranularity::PerBoard,
            chip_count: board_count * 8,
            board_count,
            // a shared plate contacts each chip less intimately
            plate_resistance: ThermalResistance::from_kelvin_per_watt(0.09),
            supply: Celsius::new(20.0),
            negative_pressure: false,
        }
    }

    /// Pressure-tight connections in the loop: two per plate (supply and
    /// return) plus manifold joints — the §2 "large number of
    /// pressure-tight connections".
    #[must_use]
    pub fn pressure_tight_connections(&self) -> usize {
        let plates = match self.granularity {
            PlateGranularity::PerChip => self.chip_count,
            PlateGranularity::PerBoard => self.board_count,
        };
        2 * plates + 2 * self.board_count + 6
    }
}

/// The paper's open-loop immersion bath (§3): boards submerged in
/// dielectric coolant, circulated through a plate heat exchanger by one
/// or two pumps, rejecting heat to a chilled-water loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmersionBath {
    /// The dielectric heat-transfer agent.
    pub coolant: Coolant,
    /// Circulation pump curve (per pump).
    pub pump: PumpCurve,
    /// Number of circulation pumps.
    pub pump_count: usize,
    /// `true` if pumps sit inside the bath (SKAT+, §4: fewer components,
    /// no shaft seals, higher reliability).
    pub immersed_pumps: bool,
    /// The oil-to-water plate exchanger in the heat-exchange section.
    pub exchanger: PlateHeatExchanger,
    /// The external chiller supplying secondary cooling water.
    pub chiller: Chiller,
    /// Secondary (water) loop flow through the exchanger.
    pub water_flow: VolumeFlow,
    /// The per-chip pin-fin turbulator sink.
    pub sink: PinFinSink,
    /// Free flow cross-section of the bath across the board stack, which
    /// converts pump flow into approach velocity at the sinks.
    pub bath_cross_section: rcs_units::Area,
}

impl ImmersionBath {
    /// The SKAT computational module's cooling system: SRC dielectric
    /// coolant, one external circulation pump, a 2.5 kW/K-class plate
    /// exchanger and a 20 °C chilled-water supply.
    #[must_use]
    pub fn skat_default() -> Self {
        Self {
            coolant: Coolant::src_dielectric(),
            pump: PumpCurve::new(
                Pressure::kilopascals(80.0),
                VolumeFlow::liters_per_minute(900.0),
            ),
            pump_count: 1,
            immersed_pumps: false,
            exchanger: PlateHeatExchanger::new(
                ThermalCapacityRate::new(1150.0),
                FlowArrangement::Counterflow,
            ),
            chiller: Chiller::new(Celsius::new(20.0), rcs_units::Power::kilowatts(150.0), 4.5),
            water_flow: VolumeFlow::liters_per_minute(120.0),
            sink: PinFinSink::skat_default(),
            bath_cross_section: Length::from_meters(0.42) * Length::from_meters(0.10),
        }
    }

    /// The SKAT+ variant (§4): immersed pumps (two, for redundancy and no
    /// shaft seal), only the heat exchanger left in the heat-exchange
    /// section, and a higher-flow pump for the hotter UltraScale+ parts.
    #[must_use]
    pub fn skat_plus_default() -> Self {
        let mut bath = Self::skat_default();
        bath.pump = PumpCurve::new(
            Pressure::kilopascals(95.0),
            VolumeFlow::liters_per_minute(1100.0),
        );
        bath.pump_count = 2;
        bath.immersed_pumps = true;
        bath.exchanger = PlateHeatExchanger::new(
            ThermalCapacityRate::new(1500.0),
            FlowArrangement::Counterflow,
        );
        bath
    }

    /// Pressure-tight connections: the bath itself needs only the two
    /// secondary-loop fittings plus pump unions — "simplicity of manifolds
    /// and liquid connectors" (§2).
    #[must_use]
    pub fn pressure_tight_connections(&self) -> usize {
        let pump_unions = if self.immersed_pumps {
            0
        } else {
            2 * self.pump_count
        };
        2 + pump_unions
    }

    /// Approach velocity at the board sinks for a given circulated flow.
    #[must_use]
    pub fn approach_velocity(&self, flow: VolumeFlow) -> Velocity {
        flow / self.bath_cross_section
    }

    /// Moving mechanical parts (pump rotors); fans count for air systems.
    #[must_use]
    pub fn moving_parts(&self) -> usize {
        self.pump_count
    }
}

/// Any of the three architectures, for APIs that compare them.
#[derive(Debug, Clone, PartialEq)]
pub enum CoolingArchitecture {
    /// Forced air.
    Air(AirCooling),
    /// Closed-loop cold plates.
    ColdPlate(ColdPlateLoop),
    /// Open-loop immersion.
    Immersion(ImmersionBath),
}

impl CoolingArchitecture {
    /// Short human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Air(_) => "air cooling",
            Self::ColdPlate(_) => "closed-loop cold plates",
            Self::Immersion(_) => "open-loop immersion",
        }
    }

    /// Number of pressure-tight liquid connections (zero for air).
    #[must_use]
    pub fn pressure_tight_connections(&self) -> usize {
        match self {
            Self::Air(_) => 0,
            Self::ColdPlate(c) => c.pressure_tight_connections(),
            Self::Immersion(i) => i.pressure_tight_connections(),
        }
    }

    /// `true` if a coolant breach can destroy electronics.
    #[must_use]
    pub fn conductive_leak_possible(&self) -> bool {
        match self {
            Self::Air(_) => false,
            Self::ColdPlate(c) => c.coolant.safety().conductive_leak_hazard && !c.negative_pressure,
            Self::Immersion(i) => i.coolant.safety().conductive_leak_hazard,
        }
    }

    /// `true` if the design can condense room moisture onto cold surfaces
    /// in a standard machine room (24 °C, 55 % RH).
    #[must_use]
    pub fn dew_point_exposure(&self) -> bool {
        self.dew_point_exposure_in(&rcs_fluids::humidity::RoomAir::machine_room_default())
    }

    /// `true` if the design can condense moisture out of the given room
    /// air onto cold surfaces (§2's dew-point problem, via the Magnus
    /// psychrometric model).
    #[must_use]
    pub fn dew_point_exposure_in(&self, room: &rcs_fluids::humidity::RoomAir) -> bool {
        match self {
            // cold plates sit in open air at the coolant supply temperature
            Self::ColdPlate(c) => room.condenses_on(c.supply),
            // the immersion bath's cold surfaces are inside the oil volume
            Self::Immersion(_) | Self::Air(_) => false,
        }
    }
}

impl core::fmt::Display for CoolingArchitecture {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_counts_tell_the_papers_story() {
        // 96 chips: per-chip plates need hundreds of pressure-tight
        // connections; immersion needs a handful.
        let per_chip = ColdPlateLoop::per_chip_plates(96);
        let per_board = ColdPlateLoop::per_board_plates(12);
        let bath = ImmersionBath::skat_default();
        assert!(per_chip.pressure_tight_connections() > 200);
        assert!(per_board.pressure_tight_connections() < per_chip.pressure_tight_connections());
        assert!(bath.pressure_tight_connections() <= 6);
    }

    #[test]
    fn skat_plus_sheds_external_connections() {
        let skat = ImmersionBath::skat_default();
        let plus = ImmersionBath::skat_plus_default();
        assert!(plus.pressure_tight_connections() < skat.pressure_tight_connections());
        assert!(plus.immersed_pumps);
        assert_eq!(plus.pump_count, 2);
    }

    #[test]
    fn leak_and_dew_point_exposure() {
        let water_plates = CoolingArchitecture::ColdPlate(ColdPlateLoop::per_chip_plates(96));
        assert!(water_plates.conductive_leak_possible());
        // a 20 °C supply stays above the room dew point...
        assert!(!water_plates.dew_point_exposure());
        // ...but chasing performance with colder water crosses it (§2)
        let mut cold_supply = ColdPlateLoop::per_chip_plates(96);
        cold_supply.supply = Celsius::new(12.0);
        assert!(CoolingArchitecture::ColdPlate(cold_supply).dew_point_exposure());

        let bath = CoolingArchitecture::Immersion(ImmersionBath::skat_default());
        assert!(!bath.conductive_leak_possible());
        assert!(!bath.dew_point_exposure());

        let mut negative = ColdPlateLoop::per_chip_plates(96);
        negative.negative_pressure = true;
        assert!(!CoolingArchitecture::ColdPlate(negative).conductive_leak_possible());
    }

    #[test]
    fn approach_velocity_scales_with_flow() {
        let bath = ImmersionBath::skat_default();
        let slow = bath.approach_velocity(VolumeFlow::liters_per_minute(300.0));
        let fast = bath.approach_velocity(VolumeFlow::liters_per_minute(600.0));
        assert!((fast.meters_per_second() / slow.meters_per_second() - 2.0).abs() < 1e-9);
        // SKAT-scale flow gives a reasonable board-channel velocity
        assert!(slow.meters_per_second() > 0.05 && fast.meters_per_second() < 1.0);
    }
}
