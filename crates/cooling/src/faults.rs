//! Fault injection: scripted degradation timelines for the cooling plant.
//!
//! The paper's reliability argument (§2, §4) is qualitative: immersion
//! removes failure classes. This module makes the remaining classes
//! *simulable*: a [`FaultTimeline`] scripts typed fault events — pump
//! seizure, impeller wear, exchanger fouling, chiller degradation,
//! coolant leaks, stuck valves and lying sensors — and [`state_at`]
//! resolves the timeline into a [`DegradedState`] that the coupled model
//! consumes through degraded-mode physics hooks: derated pump curves,
//! fouled exchanger UA, offset/derated chiller, and corrupted sensor
//! readings.
//!
//! [`state_at`]: FaultTimeline::state_at

use rcs_hydraulics::PumpCurve;
use rcs_units::{Seconds, TempDelta};

use crate::ImmersionBath;

/// Coolant level below which the pump inlet starts entraining air and
/// the delivered head derates (open-bath suction exposure).
pub const AIR_ENTRAINMENT_LEVEL: f64 = 0.85;

/// Coolant level below which circulation stops entirely: the suction is
/// uncovered and the pump churns air.
pub const LOSS_OF_SUCTION_LEVEL: f64 = 0.50;

/// Which §2 sensor channel a sensor fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorChannel {
    /// The bath level sensor (fraction of nominal fill).
    CoolantLevel,
    /// The circulation flow sensor (L/min).
    CoolantFlow,
    /// The heat-transfer-agent temperature sensor (°C).
    AgentTemperature,
    /// One of the redundant component-temperature probes (°C), by index.
    ComponentTemperature(usize),
}

/// How a faulty sensor lies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Reports a frozen value regardless of the true state.
    StuckAt(f64),
    /// Reports the true value plus a ramp growing from fault onset.
    Drift {
        /// Error growth rate in channel units per second.
        rate_per_s: f64,
    },
    /// Reports nothing at all (broken wire, dead transmitter).
    Dropout,
}

impl SensorFault {
    /// The corrupted reading for a true value, `elapsed` after fault
    /// onset. `None` models a dropout (no sample delivered).
    #[must_use]
    pub fn corrupt(&self, true_value: f64, elapsed: Seconds) -> Option<f64> {
        match self {
            Self::StuckAt(v) => Some(*v),
            Self::Drift { rate_per_s } => Some(true_value + rate_per_s * elapsed.seconds()),
            Self::Dropout => None,
        }
    }
}

/// A typed plant fault. Step faults take effect at the event time;
/// progressive faults (wear, fouling, drift, leak) accumulate from the
/// event time onward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A circulation pump rotor locks instantly (the pump contributes no
    /// head from the event time on).
    PumpSeizure {
        /// Index of the seized pump (`0..pump_count`).
        pump: usize,
    },
    /// Gradual impeller wear: every pump's delivered head and flow decay
    /// linearly from the event time (floored well above zero — wear
    /// degrades, seizure stops).
    ImpellerWear {
        /// Fractional head loss per hour of operation after onset.
        head_decay_per_hour: f64,
    },
    /// Heat-exchanger fouling: a scale layer grows on the plates, adding
    /// series thermal resistance at a constant rate.
    ExchangerFouling {
        /// Fouling resistance growth, K/W per hour.
        rate_k_per_w_per_hour: f64,
    },
    /// The facility chiller loses setpoint control and its supply
    /// temperature drifts upward.
    ChillerSetpointDrift {
        /// Supply temperature rise, K per hour.
        rate_k_per_hour: f64,
    },
    /// The chiller loses part of its rated capacity (e.g. a failed
    /// compressor stage) in one step.
    ChillerCapacityLoss {
        /// Remaining capacity as a fraction of rated.
        capacity_factor: f64,
    },
    /// The bath loses coolant at a constant rate (fitting weep,
    /// evaporation through a failed seal).
    CoolantLeak {
        /// Level loss per hour (fraction of nominal fill).
        level_per_hour: f64,
    },
    /// A circulation-path valve sticks partially closed in one step.
    ValveStuckPartial {
        /// The stuck opening fraction, in `(0, 1]`.
        opening: f64,
    },
    /// A sensor channel starts lying.
    SensorFault {
        /// The corrupted channel.
        channel: SensorChannel,
        /// The corruption mode.
        fault: SensorFault,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: Seconds,
    /// What breaks.
    pub kind: FaultKind,
}

/// A scripted sequence of fault events over a drill.
///
/// # Examples
///
/// ```
/// use rcs_cooling::faults::{FaultKind, FaultTimeline};
/// use rcs_units::Seconds;
///
/// let timeline = FaultTimeline::new()
///     .with_event(Seconds::minutes(2.0), FaultKind::PumpSeizure { pump: 0 });
/// assert!(timeline.state_at(Seconds::minutes(1.0)).is_nominal());
/// assert_eq!(timeline.state_at(Seconds::minutes(3.0)).seized_pumps, vec![0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// An empty (fault-free) timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a fault.
    #[must_use]
    pub fn with_event(mut self, at: Seconds, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Resolves the timeline into the plant's degraded state at time `t`.
    /// Events scheduled after `t` have no effect; progressive faults
    /// accumulate over the elapsed time since their onset.
    #[must_use]
    pub fn state_at(&self, t: Seconds) -> DegradedState {
        let mut state = DegradedState::nominal();
        for event in &self.events {
            if event.at.seconds() > t.seconds() {
                continue;
            }
            let elapsed_h = (t - event.at).as_hours();
            match event.kind {
                FaultKind::PumpSeizure { pump } => {
                    if !state.seized_pumps.contains(&pump) {
                        state.seized_pumps.push(pump);
                    }
                }
                FaultKind::ImpellerWear {
                    head_decay_per_hour,
                } => {
                    state.pump_head_factor *= (1.0 - head_decay_per_hour * elapsed_h).max(0.05);
                }
                FaultKind::ExchangerFouling {
                    rate_k_per_w_per_hour,
                } => {
                    state.fouling_k_per_w += rate_k_per_w_per_hour * elapsed_h;
                }
                FaultKind::ChillerSetpointDrift { rate_k_per_hour } => {
                    state.chiller_setpoint_offset = TempDelta::from_kelvins(
                        state.chiller_setpoint_offset.kelvins() + rate_k_per_hour * elapsed_h,
                    );
                }
                FaultKind::ChillerCapacityLoss { capacity_factor } => {
                    state.chiller_capacity_factor *= capacity_factor.clamp(0.0, 1.0);
                }
                FaultKind::CoolantLeak { level_per_hour } => {
                    state.coolant_level =
                        (state.coolant_level - level_per_hour * elapsed_h).max(0.0);
                }
                FaultKind::ValveStuckPartial { opening } => {
                    state.valve_opening = state.valve_opening.min(opening);
                }
                FaultKind::SensorFault { channel, fault } => {
                    state.sensor_faults.push((channel, fault, event.at));
                }
            }
        }
        state
    }
}

/// The plant's degradation at one instant, resolved from a timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedState {
    /// Indices of seized (zero-head) pumps.
    pub seized_pumps: Vec<usize>,
    /// Remaining pump head fraction after impeller wear (`1.0` = new).
    pub pump_head_factor: f64,
    /// Accumulated exchanger fouling resistance, K/W.
    pub fouling_k_per_w: f64,
    /// Chiller supply-temperature offset above its setpoint.
    pub chiller_setpoint_offset: TempDelta,
    /// Remaining chiller capacity fraction (`1.0` = rated).
    pub chiller_capacity_factor: f64,
    /// True coolant level (fraction of nominal fill).
    pub coolant_level: f64,
    /// Circulation-valve opening (`1.0` = fully open).
    pub valve_opening: f64,
    /// Active sensor faults with their onset times.
    pub sensor_faults: Vec<(SensorChannel, SensorFault, Seconds)>,
}

impl DegradedState {
    /// The healthy plant.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            seized_pumps: Vec::new(),
            pump_head_factor: 1.0,
            fouling_k_per_w: 0.0,
            chiller_setpoint_offset: TempDelta::from_kelvins(0.0),
            chiller_capacity_factor: 1.0,
            coolant_level: 1.0,
            valve_opening: 1.0,
            sensor_faults: Vec::new(),
        }
    }

    /// `true` when no plant-side degradation is active (sensor faults
    /// do not change the physics, only the readings).
    #[must_use]
    pub fn is_nominal(&self) -> bool {
        self.seized_pumps.is_empty()
            && self.pump_head_factor == 1.0
            && self.fouling_k_per_w == 0.0
            && self.chiller_setpoint_offset.kelvins() == 0.0
            && self.chiller_capacity_factor == 1.0
            && self.coolant_level == 1.0
            && self.valve_opening == 1.0
    }

    /// Pump-inlet derate from a falling bath level: full head above
    /// [`AIR_ENTRAINMENT_LEVEL`], linear loss down to
    /// [`LOSS_OF_SUCTION_LEVEL`], nothing below.
    #[must_use]
    pub fn air_entrainment_factor(&self) -> f64 {
        if self.coolant_level >= AIR_ENTRAINMENT_LEVEL {
            1.0
        } else if self.coolant_level <= LOSS_OF_SUCTION_LEVEL {
            0.0
        } else {
            (self.coolant_level - LOSS_OF_SUCTION_LEVEL)
                / (AIR_ENTRAINMENT_LEVEL - LOSS_OF_SUCTION_LEVEL)
        }
    }

    /// The degraded bath: fouled exchanger, offset and derated chiller.
    /// Pump degradation is delivered separately via [`pump_curves`]
    /// because a seized pump changes the hydraulic network topology, not
    /// just a coefficient.
    ///
    /// [`pump_curves`]: DegradedState::pump_curves
    #[must_use]
    pub fn apply_to(&self, bath: &ImmersionBath) -> ImmersionBath {
        let mut degraded = bath.clone();
        if self.fouling_k_per_w > 0.0 {
            degraded.exchanger = degraded.exchanger.with_fouling(self.fouling_k_per_w);
        }
        if self.chiller_setpoint_offset.kelvins() != 0.0 {
            degraded.chiller = degraded
                .chiller
                .with_setpoint_offset(self.chiller_setpoint_offset);
        }
        if self.chiller_capacity_factor < 1.0 {
            degraded.chiller = degraded.chiller.derated(self.chiller_capacity_factor);
        }
        degraded
    }

    /// The surviving pump curves for a bath: seized pumps are omitted,
    /// the rest are derated by impeller wear and air entrainment. An
    /// empty list means the bath has no circulation at all (every pump
    /// seized, or the level fell below the suction).
    #[must_use]
    pub fn pump_curves(&self, bath: &ImmersionBath) -> Vec<PumpCurve> {
        let derate = self.pump_head_factor * self.air_entrainment_factor();
        if derate <= 0.0 {
            return Vec::new();
        }
        (0..bath.pump_count)
            .filter(|i| !self.seized_pumps.contains(i))
            .map(|_| bath.pump.derated(derate, derate))
            .collect()
    }

    /// The reading a channel's sensor actually delivers at time `t`
    /// given the channel's true value: the latest active fault on the
    /// channel wins; `None` is a dropout; a fault-free channel reports
    /// the truth.
    #[must_use]
    pub fn sensed(&self, channel: SensorChannel, true_value: f64, t: Seconds) -> Option<f64> {
        let mut reading = Some(true_value);
        for (ch, fault, onset) in &self.sensor_faults {
            if *ch == channel {
                reading = fault.corrupt(true_value, t - *onset);
            }
        }
        reading
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes(m: f64) -> Seconds {
        Seconds::minutes(m)
    }

    #[test]
    fn empty_timeline_is_nominal_forever() {
        let state = FaultTimeline::new().state_at(Seconds::hours(10.0));
        assert!(state.is_nominal());
        assert!(state.sensor_faults.is_empty());
    }

    #[test]
    fn events_do_not_fire_early() {
        let tl = FaultTimeline::new()
            .with_event(minutes(5.0), FaultKind::ValveStuckPartial { opening: 0.2 });
        assert!(tl.state_at(minutes(4.9)).is_nominal());
        assert_eq!(tl.state_at(minutes(5.0)).valve_opening, 0.2);
    }

    #[test]
    fn progressive_faults_accumulate_from_onset() {
        let tl = FaultTimeline::new().with_event(
            minutes(10.0),
            FaultKind::CoolantLeak {
                level_per_hour: 0.6,
            },
        );
        let at_onset = tl.state_at(minutes(10.0));
        assert!((at_onset.coolant_level - 1.0).abs() < 1e-12);
        let later = tl.state_at(minutes(40.0)); // 0.5 h of leak
        assert!((later.coolant_level - 0.7).abs() < 1e-12);
        // the level can never go negative
        assert_eq!(tl.state_at(Seconds::hours(10.0)).coolant_level, 0.0);
    }

    #[test]
    fn wear_floors_instead_of_reversing() {
        let tl = FaultTimeline::new().with_event(
            Seconds::new(0.0),
            FaultKind::ImpellerWear {
                head_decay_per_hour: 2.0,
            },
        );
        let worn = tl.state_at(Seconds::hours(5.0));
        assert!((worn.pump_head_factor - 0.05).abs() < 1e-12);
    }

    #[test]
    fn seizure_drops_pumps_from_the_curve_list() {
        let bath = ImmersionBath::skat_plus_default(); // two pumps
        let tl =
            FaultTimeline::new().with_event(Seconds::new(0.0), FaultKind::PumpSeizure { pump: 0 });
        let curves = tl.state_at(minutes(1.0)).pump_curves(&bath);
        assert_eq!(curves.len(), 1);

        let both = tl
            .with_event(minutes(2.0), FaultKind::PumpSeizure { pump: 1 })
            .state_at(minutes(3.0));
        assert!(both.pump_curves(&bath).is_empty());
    }

    #[test]
    fn low_level_entrains_air_and_then_loses_suction() {
        let mut state = DegradedState::nominal();
        state.coolant_level = 0.90;
        assert_eq!(state.air_entrainment_factor(), 1.0);
        state.coolant_level = 0.675; // midway between 0.85 and 0.50
        assert!((state.air_entrainment_factor() - 0.5).abs() < 1e-12);
        state.coolant_level = 0.40;
        assert_eq!(state.air_entrainment_factor(), 0.0);
        assert!(state.pump_curves(&ImmersionBath::skat_default()).is_empty());
    }

    #[test]
    fn apply_to_degrades_exchanger_and_chiller() {
        let bath = ImmersionBath::skat_default();
        let tl = FaultTimeline::new()
            .with_event(
                Seconds::new(0.0),
                FaultKind::ExchangerFouling {
                    rate_k_per_w_per_hour: 0.02,
                },
            )
            .with_event(
                Seconds::new(0.0),
                FaultKind::ChillerSetpointDrift {
                    rate_k_per_hour: 4.0,
                },
            );
        let degraded = tl.state_at(Seconds::hours(1.0)).apply_to(&bath);
        assert!(
            degraded.exchanger.ua().watts_per_kelvin() < bath.exchanger.ua().watts_per_kelvin()
        );
        assert!(degraded.chiller.setpoint() > bath.chiller.setpoint());
        // nominal state leaves the bath untouched
        assert_eq!(DegradedState::nominal().apply_to(&bath), bath);
    }

    #[test]
    fn sensor_faults_corrupt_only_their_channel() {
        let tl = FaultTimeline::new()
            .with_event(
                minutes(1.0),
                FaultKind::SensorFault {
                    channel: SensorChannel::AgentTemperature,
                    fault: SensorFault::StuckAt(28.0),
                },
            )
            .with_event(
                minutes(1.0),
                FaultKind::SensorFault {
                    channel: SensorChannel::ComponentTemperature(1),
                    fault: SensorFault::Dropout,
                },
            );
        let state = tl.state_at(minutes(2.0));
        assert_eq!(
            state.sensed(SensorChannel::AgentTemperature, 31.0, minutes(2.0)),
            Some(28.0)
        );
        assert_eq!(
            state.sensed(SensorChannel::ComponentTemperature(1), 55.0, minutes(2.0)),
            None
        );
        // untouched channels report the truth
        assert_eq!(
            state.sensed(SensorChannel::ComponentTemperature(0), 55.0, minutes(2.0)),
            Some(55.0)
        );
        assert_eq!(
            state.sensed(SensorChannel::CoolantFlow, 384.0, minutes(2.0)),
            Some(384.0)
        );
    }

    #[test]
    fn drift_grows_from_fault_onset() {
        let fault = SensorFault::Drift { rate_per_s: 0.1 };
        assert_eq!(fault.corrupt(50.0, Seconds::new(0.0)), Some(50.0));
        assert_eq!(fault.corrupt(50.0, Seconds::new(30.0)), Some(53.0));
    }
}
