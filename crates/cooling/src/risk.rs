//! Failure classes of each cooling architecture.
//!
//! §2's qualitative comparison made quantitative: every architecture gets
//! a list of failure classes with annual rates and repair consequences,
//! derived from its component counts. The immersion architecture's rates
//! omit the conductive-leak and condensation classes entirely — the
//! paper's core reliability argument — while keeping pump wear, chiller
//! trips and sensor faults.

use crate::designs::CoolingArchitecture;

/// Consequence of one failure event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Consequence {
    /// Repair downtime in hours (module offline).
    pub downtime_hours: f64,
    /// Probability the event also destroys hardware (boards/chips).
    pub hardware_loss_probability: f64,
}

/// One failure class with its annual rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureClass {
    /// Descriptive name (stable across releases; used by experiments).
    pub name: String,
    /// Expected events per module-year.
    pub rate_per_year: f64,
    /// What one event costs.
    pub consequence: Consequence,
}

/// Annual leak probability per pressure-tight connection.
///
/// Industry fittings leak rarely, but §2's point is that the count
/// multiplies: hundreds of fittings make leaks an annual affair.
pub const LEAK_RATE_PER_CONNECTION_YEAR: f64 = 0.004;

/// Annual failure rate of one external (shaft-sealed) pump.
pub const EXTERNAL_PUMP_RATE_YEAR: f64 = 0.10;

/// Annual failure rate of one immersed (seal-less, oil-lubricated) pump.
pub const IMMERSED_PUMP_RATE_YEAR: f64 = 0.05;

/// Annual rate of fan failures per fan.
pub const FAN_RATE_YEAR: f64 = 0.05;

/// Builds the failure-class list of an architecture.
#[must_use]
pub fn failure_classes(arch: &CoolingArchitecture) -> Vec<FailureClass> {
    let mut classes = Vec::new();

    // Common to everything with a chiller or machine-room support.
    classes.push(FailureClass {
        name: "facility cooling trip (chiller/CRAC)".into(),
        rate_per_year: 0.20,
        consequence: Consequence {
            downtime_hours: 4.0,
            hardware_loss_probability: 0.0,
        },
    });
    classes.push(FailureClass {
        name: "sensor or control fault".into(),
        rate_per_year: 0.15,
        consequence: Consequence {
            downtime_hours: 2.0,
            hardware_loss_probability: 0.0,
        },
    });

    match arch {
        CoolingArchitecture::Air(air) => {
            classes.push(FailureClass {
                name: "fan failure".into(),
                rate_per_year: FAN_RATE_YEAR * air.fan_count as f64,
                consequence: Consequence {
                    downtime_hours: 1.0,
                    hardware_loss_probability: 0.01,
                },
            });
            classes.push(FailureClass {
                name: "dust fouling of heat sinks".into(),
                rate_per_year: 0.5,
                consequence: Consequence {
                    downtime_hours: 3.0,
                    hardware_loss_probability: 0.0,
                },
            });
        }
        CoolingArchitecture::ColdPlate(loop_) => {
            let connections = loop_.pressure_tight_connections() as f64;
            if arch.conductive_leak_possible() {
                classes.push(FailureClass {
                    name: "conductive coolant leak onto electronics".into(),
                    rate_per_year: LEAK_RATE_PER_CONNECTION_YEAR * connections,
                    consequence: Consequence {
                        downtime_hours: 72.0,
                        hardware_loss_probability: 0.5,
                    },
                });
            } else {
                // negative pressure: breaches admit air instead
                classes.push(FailureClass {
                    name: "air ingress (negative-pressure breach)".into(),
                    rate_per_year: LEAK_RATE_PER_CONNECTION_YEAR * connections,
                    consequence: Consequence {
                        downtime_hours: 8.0,
                        hardware_loss_probability: 0.0,
                    },
                });
            }
            if arch.dew_point_exposure() {
                classes.push(FailureClass {
                    name: "dew-point condensation on cold plates".into(),
                    rate_per_year: 0.8,
                    consequence: Consequence {
                        downtime_hours: 24.0,
                        hardware_loss_probability: 0.2,
                    },
                });
            }
            classes.push(FailureClass {
                name: "external pump failure".into(),
                rate_per_year: EXTERNAL_PUMP_RATE_YEAR,
                consequence: Consequence {
                    downtime_hours: 6.0,
                    hardware_loss_probability: 0.0,
                },
            });
            classes.push(FailureClass {
                name: "quick-disconnect wear during board service".into(),
                rate_per_year: 0.3,
                consequence: Consequence {
                    downtime_hours: 2.0,
                    hardware_loss_probability: 0.02,
                },
            });
        }
        CoolingArchitecture::Immersion(bath) => {
            let per_pump = if bath.immersed_pumps {
                IMMERSED_PUMP_RATE_YEAR
            } else {
                EXTERNAL_PUMP_RATE_YEAR
            };
            // redundant pumps: an outage needs all of them down; approximate
            // the class rate as rate^n per year
            let pump_outage_rate = per_pump.powi(bath.pump_count as i32);
            classes.push(FailureClass {
                name: "circulation pump outage".into(),
                rate_per_year: pump_outage_rate,
                consequence: Consequence {
                    downtime_hours: 6.0,
                    hardware_loss_probability: 0.0,
                },
            });
            classes.push(FailureClass {
                name: "secondary water fitting leak (outside the bath)".into(),
                rate_per_year: LEAK_RATE_PER_CONNECTION_YEAR
                    * bath.pressure_tight_connections() as f64,
                consequence: Consequence {
                    downtime_hours: 4.0,
                    hardware_loss_probability: 0.0,
                },
            });
            classes.push(FailureClass {
                name: "coolant degradation / top-up service".into(),
                rate_per_year: 0.25,
                consequence: Consequence {
                    downtime_hours: 3.0,
                    hardware_loss_probability: 0.0,
                },
            });
        }
    }

    classes
}

/// Expected downtime hours per module-year (rate-weighted sum).
#[must_use]
pub fn expected_annual_downtime_hours(classes: &[FailureClass]) -> f64 {
    classes
        .iter()
        .map(|c| c.rate_per_year * c.consequence.downtime_hours)
        .sum()
}

/// Expected hardware-loss events per module-year.
#[must_use]
pub fn expected_annual_hardware_losses(classes: &[FailureClass]) -> f64 {
    classes
        .iter()
        .map(|c| c.rate_per_year * c.consequence.hardware_loss_probability)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{AirCooling, ColdPlateLoop, ImmersionBath};

    fn air() -> CoolingArchitecture {
        CoolingArchitecture::Air(AirCooling::machine_room_default())
    }

    fn cold_plate() -> CoolingArchitecture {
        CoolingArchitecture::ColdPlate(ColdPlateLoop::per_chip_plates(96))
    }

    fn immersion() -> CoolingArchitecture {
        CoolingArchitecture::Immersion(ImmersionBath::skat_default())
    }

    #[test]
    fn immersion_has_no_conductive_leak_class() {
        let names: Vec<String> = failure_classes(&immersion())
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert!(!names.iter().any(|n| n.contains("onto electronics")));
        assert!(!names.iter().any(|n| n.contains("dew-point")));
    }

    #[test]
    fn cold_plates_carry_the_leak_burden() {
        let classes = failure_classes(&cold_plate());
        let leak = classes
            .iter()
            .find(|c| c.name.contains("onto electronics"))
            .expect("leak class present");
        // 96 chips -> 222 connections -> ~0.9 leaks/year
        assert!(leak.rate_per_year > 0.5, "rate = {}", leak.rate_per_year);
        assert!(leak.consequence.hardware_loss_probability > 0.0);
    }

    #[test]
    fn negative_pressure_removes_hardware_loss() {
        let mut loop_ = ColdPlateLoop::per_chip_plates(96);
        loop_.negative_pressure = true;
        let classes = failure_classes(&CoolingArchitecture::ColdPlate(loop_));
        assert!(classes.iter().any(|c| c.name.contains("air ingress")));
        assert!(!classes.iter().any(|c| c.name.contains("onto electronics")));
    }

    #[test]
    fn immersion_downtime_beats_cold_plates_and_hardware_losses_are_nil() {
        let im = failure_classes(&immersion());
        let cp = failure_classes(&cold_plate());
        assert!(
            expected_annual_downtime_hours(&im) < expected_annual_downtime_hours(&cp),
            "immersion {} h vs cold plate {} h",
            expected_annual_downtime_hours(&im),
            expected_annual_downtime_hours(&cp)
        );
        assert_eq!(expected_annual_hardware_losses(&im), 0.0);
        assert!(expected_annual_hardware_losses(&cp) > 0.2);
    }

    #[test]
    fn skat_plus_redundant_immersed_pumps_cut_the_outage_rate() {
        let skat = failure_classes(&CoolingArchitecture::Immersion(
            ImmersionBath::skat_default(),
        ));
        let plus = failure_classes(&CoolingArchitecture::Immersion(
            ImmersionBath::skat_plus_default(),
        ));
        let rate = |cs: &[FailureClass]| {
            cs.iter()
                .find(|c| c.name.contains("pump outage"))
                .unwrap()
                .rate_per_year
        };
        assert!(rate(&plus) < 0.1 * rate(&skat));
    }

    #[test]
    fn air_cooling_wears_fans_and_clogs() {
        let classes = failure_classes(&air());
        assert!(classes.iter().any(|c| c.name.contains("fan")));
        assert!(classes.iter().any(|c| c.name.contains("dust")));
    }
}
