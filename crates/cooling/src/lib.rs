//! Cooling system designs, control and reliability for RCS modules.
//!
//! Where `rcs-thermal` and `rcs-hydraulics` provide physics, this crate
//! provides the *systems* the paper compares:
//!
//! - [`AirCooling`] — the exhausted baseline: plate-fin towers in a
//!   front-to-back airflow with board-level preheating.
//! - [`ColdPlateLoop`] — closed-loop liquid cooling ("one plate per chip"
//!   / "one plate per board"), with its pressure-tight connection count,
//!   leak hazard and dew-point exposure (§2).
//! - [`ImmersionBath`] — the paper's open-loop immersion system: a sealed
//!   bath of dielectric coolant, circulation pump(s), plate heat
//!   exchanger, secondary chilled-water loop; optionally with SKAT+'s
//!   immersed pumps.
//! - [`control`] — the §2 control subsystem: level/flow/temperature
//!   sensors, setpoints and alarms.
//! - [`faults`] — scripted fault timelines (pump seizure, fouling,
//!   leaks, lying sensors) resolved into degraded-mode physics hooks.
//! - [`plausibility`] — per-channel sensor sanity filters and redundant
//!   median voting, so supervision survives faulty sensors.
//! - [`pumps`] — the §2 pump selection criteria (IP-55, NPSH, vibration,
//!   oil compatibility, continuous duty) as a scoring model.
//! - [`risk`] / [`availability`] — failure classes per architecture and a
//!   seeded Monte-Carlo availability estimator, reproducing the paper's
//!   qualitative claim that immersion removes the leak and dew-point
//!   failure classes entirely.
//!
//! # Examples
//!
//! ```
//! use rcs_cooling::{risk, ColdPlateLoop, CoolingArchitecture, ImmersionBath};
//!
//! let closed = CoolingArchitecture::ColdPlate(ColdPlateLoop::per_chip_plates(96));
//! let open = CoolingArchitecture::Immersion(ImmersionBath::skat_default());
//! let closed_classes = risk::failure_classes(&closed);
//! let open_classes = risk::failure_classes(&open);
//! // immersion eliminates the destroy-the-electronics leak class
//! assert!(closed_classes.iter().any(|c| c.name.contains("onto electronics")));
//! assert!(!open_classes.iter().any(|c| c.name.contains("onto electronics")));
//! ```

#![warn(missing_docs)]

pub mod availability;
pub mod control;
mod designs;
pub mod faults;
pub mod maintenance;
pub mod plausibility;
pub mod pumps;
pub mod risk;

pub use designs::{
    AirCooling, ColdPlateLoop, CoolingArchitecture, ImmersionBath, PlateGranularity,
};
