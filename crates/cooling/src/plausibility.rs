//! Sensor plausibility filtering: running supervision on lying sensors.
//!
//! The §2 control subsystem assumes its level/flow/temperature sensors
//! tell the truth. Real transmitters stick, drift and drop out, and a
//! supervisor that believes a lying sensor either misses a real
//! excursion or shuts a healthy module down. This module provides the
//! per-channel defense: range checks, rate-of-change checks, last-good
//! hold with a timeout, and median voting across redundant probes.
//!
//! The contract: an implausible sample never reaches the control logic.
//! The filter substitutes the last plausible value ([`ChannelStatus::Held`])
//! until the hold times out, after which the channel is declared
//! [`ChannelStatus::Failed`] — a maintenance condition reported alongside
//! the drill results, not a thermal alarm.

use rcs_units::Seconds;

/// Physical plausibility bounds for one sensor channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelLimits {
    /// Smallest physically plausible reading.
    pub min: f64,
    /// Largest physically plausible reading.
    pub max: f64,
    /// Largest plausible rate of change, channel units per second.
    pub max_rate_per_s: f64,
}

impl ChannelLimits {
    /// Bath level (fraction of nominal fill): a sealed bath cannot gain
    /// coolant, and even a catastrophic leak drains slowly.
    #[must_use]
    pub fn coolant_level() -> Self {
        Self {
            min: 0.0,
            max: 1.05,
            max_rate_per_s: 0.01,
        }
    }

    /// Circulation flow in L/min. Step *drops* are real (a pump trip is
    /// instant), so the rate bound is deliberately generous — the range
    /// check does the work on this channel.
    #[must_use]
    pub fn coolant_flow_lpm() -> Self {
        Self {
            min: 0.0,
            max: 2000.0,
            max_rate_per_s: 500.0,
        }
    }

    /// Agent (oil) temperature in °C: tens of kilograms of oil cannot
    /// change temperature faster than ~3 K/min.
    #[must_use]
    pub fn agent_temperature_c() -> Self {
        Self {
            min: -10.0,
            max: 80.0,
            max_rate_per_s: 0.05,
        }
    }

    /// Component (FPGA) temperature in °C: the chip field heats at well
    /// under 1 K/s even with circulation lost entirely.
    #[must_use]
    pub fn component_temperature_c() -> Self {
        Self {
            min: -10.0,
            max: 120.0,
            max_rate_per_s: 1.0,
        }
    }

    /// `true` if `value` lies inside the plausible range.
    #[must_use]
    pub fn in_range(&self, value: f64) -> bool {
        value.is_finite() && value >= self.min && value <= self.max
    }
}

/// Health of one filtered channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelStatus {
    /// The latest sample passed every check.
    Valid,
    /// The latest sample was implausible; the last good value is being
    /// substituted while the hold timeout runs.
    Held,
    /// The channel has delivered no plausible sample for longer than the
    /// hold timeout (or never) — treat it as broken hardware.
    Failed,
}

/// One filtered sample: the value the control logic should use and the
/// channel health that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilteredSample {
    /// The plausible value to act on; `None` only when the channel has
    /// never delivered a plausible sample.
    pub value: Option<f64>,
    /// Channel health after this sample.
    pub status: ChannelStatus,
}

/// A stateful per-channel plausibility filter.
///
/// # Examples
///
/// ```
/// use rcs_cooling::plausibility::{ChannelLimits, ChannelStatus, PlausibilityFilter};
/// use rcs_units::Seconds;
///
/// let mut filter = PlausibilityFilter::new(ChannelLimits::agent_temperature_c());
/// let good = filter.accept(Seconds::new(0.0), Some(29.0));
/// assert_eq!(good.status, ChannelStatus::Valid);
/// // a 20 K jump in 2 s is not physics — hold the last good value
/// let lie = filter.accept(Seconds::new(2.0), Some(49.0));
/// assert_eq!(lie.status, ChannelStatus::Held);
/// assert_eq!(lie.value, Some(29.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlausibilityFilter {
    limits: ChannelLimits,
    hold_timeout: Seconds,
    last_good: Option<(Seconds, f64)>,
    /// Time of the previous sample, plausible or not. The rate check
    /// measures against the last good *value* over the time since the
    /// last *scan*: if it measured over the time since the last good
    /// sample, any stuck value would become "plausible" again once
    /// enough time had passed to dilute the jump below the rate limit.
    last_scan: Option<Seconds>,
    held_since: Option<Seconds>,
    /// Delivered-but-implausible samples seen (range or rate check).
    rejected: u64,
    /// Dropouts seen (`accept` called with `None`).
    dropouts: u64,
}

/// Default hold timeout: a channel implausible for a full minute is
/// broken hardware, not a glitch.
pub const DEFAULT_HOLD_TIMEOUT: Seconds = Seconds::new(60.0);

impl PlausibilityFilter {
    /// A filter with the given limits and the default hold timeout.
    #[must_use]
    pub fn new(limits: ChannelLimits) -> Self {
        Self {
            limits,
            hold_timeout: DEFAULT_HOLD_TIMEOUT,
            last_good: None,
            last_scan: None,
            held_since: None,
            rejected: 0,
            dropouts: 0,
        }
    }

    /// Overrides the hold timeout.
    #[must_use]
    pub fn with_hold_timeout(mut self, timeout: Seconds) -> Self {
        self.hold_timeout = timeout;
        self
    }

    /// Feeds one raw sample (or a dropout, `None`) taken at time `t`;
    /// returns the value the control logic should act on.
    pub fn accept(&mut self, t: Seconds, raw: Option<f64>) -> FilteredSample {
        let plausible = raw.filter(|&v| self.limits.in_range(v)).filter(|&v| {
            match (self.last_good, self.last_scan) {
                (Some((_, good)), Some(t_scan)) => {
                    let dt = (t - t_scan).seconds();
                    dt <= 0.0 || (v - good).abs() / dt <= self.limits.max_rate_per_s
                }
                _ => true,
            }
        });
        self.last_scan = Some(t);
        match raw {
            None => self.dropouts += 1,
            Some(_) if plausible.is_none() => self.rejected += 1,
            Some(_) => {}
        }

        match plausible {
            Some(v) => {
                self.last_good = Some((t, v));
                self.held_since = None;
                FilteredSample {
                    value: Some(v),
                    status: ChannelStatus::Valid,
                }
            }
            None => {
                let since = *self.held_since.get_or_insert(t);
                let value = self.last_good.map(|(_, v)| v);
                let expired = (t - since).seconds() >= self.hold_timeout.seconds();
                FilteredSample {
                    value,
                    status: if value.is_none() || expired {
                        ChannelStatus::Failed
                    } else {
                        ChannelStatus::Held
                    },
                }
            }
        }
    }

    /// The last plausible value, if any sample ever passed.
    #[must_use]
    pub fn last_good(&self) -> Option<f64> {
        self.last_good.map(|(_, v)| v)
    }

    /// Captures the filter's full mutable state for a simulation-kernel
    /// checkpoint. [`PlausibilityFilter::restore_state`] with this value
    /// makes the filter's future decisions bit-identical to one that was
    /// never interrupted. The limits and hold timeout are configuration,
    /// not state — the restoring caller reconstructs those.
    #[must_use]
    pub fn state(&self) -> FilterState {
        FilterState {
            last_good: self.last_good.map(|(t, v)| (t.seconds(), v)),
            last_scan: self.last_scan.map(|t| t.seconds()),
            held_since: self.held_since.map(|t| t.seconds()),
            rejected: self.rejected,
            dropouts: self.dropouts,
        }
    }

    /// Overwrites the mutable state with a checkpoint captured by
    /// [`PlausibilityFilter::state`].
    pub fn restore_state(&mut self, state: &FilterState) {
        self.last_good = state.last_good.map(|(t, v)| (Seconds::new(t), v));
        self.last_scan = state.last_scan.map(Seconds::new);
        self.held_since = state.held_since.map(Seconds::new);
        self.rejected = state.rejected;
        self.dropouts = state.dropouts;
    }

    /// How many delivered samples failed the range or rate check over
    /// this filter's lifetime. A monotonic counter: one implausible
    /// sample is one rejection, so tests can assert the count against
    /// the number of injected lies.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// How many scans delivered no sample at all (`None`).
    #[must_use]
    pub fn dropouts(&self) -> u64 {
        self.dropouts
    }
}

/// The mutable state of one [`PlausibilityFilter`], captured by
/// [`PlausibilityFilter::state`] for simulation-kernel checkpoints.
/// Times are plain seconds so the snapshot layer can serialize the
/// struct without knowing about unit types.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterState {
    /// Time and value of the last plausible sample.
    pub last_good: Option<(f64, f64)>,
    /// Time of the previous sample, plausible or not.
    pub last_scan: Option<f64>,
    /// When the current hold window opened, if one is open.
    pub held_since: Option<f64>,
    /// Delivered-but-implausible samples seen.
    pub rejected: u64,
    /// Dropouts seen.
    pub dropouts: u64,
}

/// Median vote across redundant probes: the middle of the delivered
/// values (mean of the two middles for an even count), `None` when no
/// probe delivered anything. With three probes, one arbitrary liar
/// cannot move the vote outside the span of the two honest probes.
///
/// This is a public entry point, so it cannot assume its inputs came
/// through a [`PlausibilityFilter`]: a non-finite reading (NaN, ±inf —
/// a broken ADC, a poisoned upstream fold) is treated like a dropout
/// and excluded from the vote rather than panicking the supervisor or
/// poisoning the median. The surviving finite values are ordered with
/// `total_cmp`, which is a total order even if this filter ever changes.
#[must_use]
pub fn median_vote(values: &[Option<f64>]) -> Option<f64> {
    let mut live: Vec<f64> = values
        .iter()
        .copied()
        .flatten()
        .filter(|v| v.is_finite())
        .collect();
    if live.is_empty() {
        return None;
    }
    live.sort_by(f64::total_cmp);
    let mid = live.len() / 2;
    if live.len() % 2 == 1 {
        Some(live[mid])
    } else {
        Some(0.5 * (live[mid - 1] + live[mid]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent_filter() -> PlausibilityFilter {
        PlausibilityFilter::new(ChannelLimits::agent_temperature_c())
    }

    #[test]
    fn plausible_samples_pass_through() {
        let mut f = agent_filter();
        let s = f.accept(Seconds::new(0.0), Some(29.0));
        assert_eq!(
            s,
            FilteredSample {
                value: Some(29.0),
                status: ChannelStatus::Valid
            }
        );
        // slow physical warming passes the rate check
        let s = f.accept(Seconds::new(60.0), Some(30.5));
        assert_eq!(s.status, ChannelStatus::Valid);
        assert_eq!(s.value, Some(30.5));
    }

    #[test]
    fn out_of_range_samples_are_held() {
        let mut f = agent_filter();
        f.accept(Seconds::new(0.0), Some(29.0));
        let s = f.accept(Seconds::new(2.0), Some(500.0));
        assert_eq!(s.status, ChannelStatus::Held);
        assert_eq!(s.value, Some(29.0));
    }

    #[test]
    fn rate_violations_are_held() {
        let mut f = agent_filter();
        f.accept(Seconds::new(0.0), Some(29.0));
        // 10 K in 2 s = 5 K/s, fifty times the plausible oil rate
        let s = f.accept(Seconds::new(2.0), Some(39.0));
        assert_eq!(s.status, ChannelStatus::Held);
        assert_eq!(s.value, Some(29.0));
    }

    #[test]
    fn dropout_holds_then_fails_after_the_timeout() {
        let mut f = agent_filter().with_hold_timeout(Seconds::new(10.0));
        f.accept(Seconds::new(0.0), Some(29.0));
        let held = f.accept(Seconds::new(2.0), None);
        assert_eq!(held.status, ChannelStatus::Held);
        assert_eq!(held.value, Some(29.0));
        let failed = f.accept(Seconds::new(13.0), None);
        assert_eq!(failed.status, ChannelStatus::Failed);
        // the last good value is still offered for conservative control
        assert_eq!(failed.value, Some(29.0));
    }

    #[test]
    fn recovery_clears_the_hold() {
        let mut f = agent_filter().with_hold_timeout(Seconds::new(10.0));
        f.accept(Seconds::new(0.0), Some(29.0));
        f.accept(Seconds::new(2.0), None);
        let back = f.accept(Seconds::new(4.0), Some(29.05));
        assert_eq!(back.status, ChannelStatus::Valid);
        // a later glitch starts a fresh hold window
        let held = f.accept(Seconds::new(6.0), None);
        assert_eq!(held.status, ChannelStatus::Held);
    }

    #[test]
    fn never_good_channel_fails_immediately() {
        let mut f = agent_filter();
        let s = f.accept(Seconds::new(0.0), None);
        assert_eq!(
            s,
            FilteredSample {
                value: None,
                status: ChannelStatus::Failed
            }
        );
    }

    #[test]
    fn rejection_and_dropout_counters_tally_exactly() {
        let mut f = agent_filter();
        f.accept(Seconds::new(0.0), Some(29.0)); // valid
        f.accept(Seconds::new(2.0), Some(500.0)); // range lie
        f.accept(Seconds::new(4.0), Some(45.0)); // rate lie
        f.accept(Seconds::new(6.0), None); // dropout
        f.accept(Seconds::new(8.0), Some(29.05)); // recovery
        assert_eq!(f.rejected(), 2);
        assert_eq!(f.dropouts(), 1);
    }

    #[test]
    fn median_vote_outvotes_one_liar() {
        // one probe stuck high: the median stays with the honest pair
        assert_eq!(
            median_vote(&[Some(55.0), Some(90.0), Some(55.4)]),
            Some(55.4)
        );
        // a dropout leaves the mean of the two survivors
        assert_eq!(median_vote(&[Some(55.0), None, Some(55.4)]), Some(55.2));
        assert_eq!(median_vote(&[None, None, None]), None);
        assert_eq!(median_vote(&[]), None);
    }

    #[test]
    fn median_vote_survives_poisoned_probes() {
        // A NaN probe from a caller outside the PlausibilityFilter
        // pipeline used to panic the vote; now it counts as a dropout.
        assert_eq!(
            median_vote(&[Some(f64::NAN), Some(55.0), Some(55.4)]),
            Some(55.2)
        );
        // infinities are equally non-physical readings
        assert_eq!(
            median_vote(&[Some(f64::INFINITY), Some(55.0), Some(55.4)]),
            Some(55.2)
        );
        assert_eq!(
            median_vote(&[Some(f64::NEG_INFINITY), Some(f64::NAN), Some(61.0)]),
            Some(61.0)
        );
        // nothing finite delivered: no vote, not a NaN vote
        assert_eq!(median_vote(&[Some(f64::NAN), Some(f64::NAN)]), None);
    }
}
