//! Pump selection for immersion cooling systems.
//!
//! §2 lists the selection criteria for the heat-transfer agent pump:
//! performance parameters, overall dimensions and fitting placement,
//! suitability for oil products of the specified viscosity, continuous
//! maintenance mode, minimal vibrations, minimal permissible positive
//! suction head (NPSH), and a motor protection class of at least IP-55.
//! This module scores candidate pumps against those requirements.

use rcs_units::{Length, Pressure, VolumeFlow};

/// What the cooling system needs from its pump.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpRequirements {
    /// Required flow at the duty point.
    pub duty_flow: VolumeFlow,
    /// Required head at the duty point.
    pub duty_head: Pressure,
    /// Maximum envelope the heat-exchange section allows.
    pub max_length: Length,
    /// Maximum acceptable vibration velocity (mm/s RMS).
    pub max_vibration_mm_s: f64,
    /// NPSH available in the bath (meters of head).
    pub npsh_available_m: f64,
}

impl PumpRequirements {
    /// The SKAT heat-exchange section's requirements.
    #[must_use]
    pub fn skat_default() -> Self {
        Self {
            duty_flow: VolumeFlow::liters_per_minute(420.0),
            duty_head: Pressure::kilopascals(60.0),
            max_length: Length::from_meters(0.40),
            max_vibration_mm_s: 2.8,
            npsh_available_m: 2.0,
        }
    }
}

/// One candidate pump from a vendor catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct PumpCandidate {
    /// Vendor/model designation.
    pub name: String,
    /// Maximum flow (zero head).
    pub max_flow: VolumeFlow,
    /// Shutoff head.
    pub shutoff_head: Pressure,
    /// Overall length of pump plus motor.
    pub length: Length,
    /// Motor ingress-protection class (e.g. 55 for IP-55).
    pub ip_class: u8,
    /// Vibration velocity at duty (mm/s RMS).
    pub vibration_mm_s: f64,
    /// Required net positive suction head (meters).
    pub npsh_required_m: f64,
    /// Rated for mineral-oil products of the system's viscosity.
    pub oil_compatible: bool,
    /// Rated for continuous (24/7) duty.
    pub continuous_duty: bool,
    /// Can run submerged in the heat-transfer agent (SKAT+).
    pub submersible: bool,
}

/// Verdict for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PumpVerdict {
    /// Candidate name.
    pub name: String,
    /// Hard requirements all met.
    pub qualified: bool,
    /// Which hard requirements failed (empty when qualified).
    pub failures: Vec<&'static str>,
    /// Soft score in `[0, 1]` among qualified pumps (margin above duty
    /// point, vibration margin, compactness).
    pub score: f64,
}

/// Head delivered at the duty flow assuming a quadratic curve.
fn head_at_duty(c: &PumpCandidate, flow: VolumeFlow) -> f64 {
    let qn = flow.cubic_meters_per_second() / c.max_flow.cubic_meters_per_second();
    c.shutoff_head.pascals() * (1.0 - qn * qn)
}

/// Evaluates one candidate against the requirements.
///
/// Hard gates follow §2 verbatim: oil compatibility, continuous duty,
/// IP-55 or better, NPSH margin, envelope, and the hydraulic duty point.
#[must_use]
pub fn evaluate(c: &PumpCandidate, req: &PumpRequirements) -> PumpVerdict {
    let mut failures = Vec::new();
    if !c.oil_compatible {
        failures.push("not rated for oil products");
    }
    if !c.continuous_duty {
        failures.push("not rated for continuous duty");
    }
    if c.ip_class < 55 {
        failures.push("motor protection below IP-55");
    }
    if c.npsh_required_m > req.npsh_available_m {
        failures.push("insufficient NPSH margin");
    }
    if c.length > req.max_length {
        failures.push("does not fit the heat-exchange section");
    }
    let delivered = head_at_duty(c, req.duty_flow);
    if delivered < req.duty_head.pascals() {
        failures.push("cannot reach the duty point");
    }
    if c.vibration_mm_s > req.max_vibration_mm_s {
        failures.push("vibration above limit");
    }

    let qualified = failures.is_empty();
    let score = if qualified {
        let head_margin = (delivered / req.duty_head.pascals() - 1.0).clamp(0.0, 1.0);
        let vib_margin = (1.0 - c.vibration_mm_s / req.max_vibration_mm_s).clamp(0.0, 1.0);
        let compactness = (1.0 - c.length.meters() / req.max_length.meters()).clamp(0.0, 1.0);
        let submersible_bonus = if c.submersible { 0.15 } else { 0.0 };
        (0.4 * head_margin + 0.25 * vib_margin + 0.2 * compactness + submersible_bonus)
            .clamp(0.0, 1.0)
    } else {
        0.0
    };
    PumpVerdict {
        name: c.name.clone(),
        qualified,
        failures,
        score,
    }
}

/// Ranks candidates: qualified first, by descending score.
#[must_use]
pub fn rank(candidates: &[PumpCandidate], req: &PumpRequirements) -> Vec<PumpVerdict> {
    let mut verdicts: Vec<PumpVerdict> = candidates.iter().map(|c| evaluate(c, req)).collect();
    // `total_cmp` keeps the ordering total when a score is NaN (e.g. a
    // poisoned catalog entry): NaN-scored candidates rank after every
    // finite score within their qualification tier instead of landing
    // wherever the sort's comparison order happened to put them.
    verdicts.sort_by(|a, b| {
        b.qualified
            .cmp(&a.qualified)
            .then(a.score.is_nan().cmp(&b.score.is_nan()))
            .then(b.score.total_cmp(&a.score))
    });
    verdicts
}

/// A small representative catalog: an oil-rated external gear pump, a
/// submersible oil pump (the SKAT+ choice), a water circulator that fails
/// the oil gate, and an underprotected budget unit.
#[must_use]
pub fn example_catalog() -> Vec<PumpCandidate> {
    vec![
        PumpCandidate {
            name: "GearFlow GF-600 (external, oil)".into(),
            max_flow: VolumeFlow::liters_per_minute(900.0),
            shutoff_head: Pressure::kilopascals(90.0),
            length: Length::from_meters(0.38),
            ip_class: 55,
            vibration_mm_s: 2.4,
            npsh_required_m: 1.2,
            oil_compatible: true,
            continuous_duty: true,
            submersible: false,
        },
        PumpCandidate {
            name: "OilSub OS-700 (submersible)".into(),
            max_flow: VolumeFlow::liters_per_minute(1000.0),
            shutoff_head: Pressure::kilopascals(85.0),
            length: Length::from_meters(0.30),
            ip_class: 68,
            vibration_mm_s: 1.1,
            npsh_required_m: 0.3,
            oil_compatible: true,
            continuous_duty: true,
            submersible: true,
        },
        PumpCandidate {
            name: "AquaCirc AC-500 (water circulator)".into(),
            max_flow: VolumeFlow::liters_per_minute(700.0),
            shutoff_head: Pressure::kilopascals(70.0),
            length: Length::from_meters(0.25),
            ip_class: 55,
            vibration_mm_s: 1.8,
            npsh_required_m: 1.0,
            oil_compatible: false,
            continuous_duty: true,
            submersible: false,
        },
        PumpCandidate {
            name: "BudgetPump BP-100".into(),
            max_flow: VolumeFlow::liters_per_minute(800.0),
            shutoff_head: Pressure::kilopascals(75.0),
            length: Length::from_meters(0.42),
            ip_class: 44,
            vibration_mm_s: 4.5,
            npsh_required_m: 2.5,
            oil_compatible: true,
            continuous_duty: false,
            submersible: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submersible_oil_pump_wins_the_skat_selection() {
        let ranked = rank(&example_catalog(), &PumpRequirements::skat_default());
        assert!(ranked[0].qualified);
        assert!(ranked[0].name.starts_with("OilSub"));
    }

    #[test]
    fn water_circulator_fails_the_oil_gate() {
        let ranked = rank(&example_catalog(), &PumpRequirements::skat_default());
        let aqua = ranked
            .iter()
            .find(|v| v.name.starts_with("AquaCirc"))
            .unwrap();
        assert!(!aqua.qualified);
        assert!(aqua.failures.contains(&"not rated for oil products"));
    }

    #[test]
    fn budget_pump_fails_multiple_gates() {
        let req = PumpRequirements::skat_default();
        let v = evaluate(&example_catalog()[3], &req);
        assert!(!v.qualified);
        assert!(v.failures.len() >= 3, "{:?}", v.failures);
        assert!(v.failures.contains(&"motor protection below IP-55"));
        assert_eq!(v.score, 0.0);
    }

    #[test]
    fn duty_point_gate_uses_the_curve() {
        let mut weak = example_catalog()[0].clone();
        weak.shutoff_head = Pressure::kilopascals(30.0);
        let v = evaluate(&weak, &PumpRequirements::skat_default());
        assert!(v.failures.contains(&"cannot reach the duty point"));
    }

    #[test]
    fn qualified_pumps_rank_before_unqualified() {
        let ranked = rank(&example_catalog(), &PumpRequirements::skat_default());
        let first_unqualified = ranked.iter().position(|v| !v.qualified).unwrap();
        assert!(ranked[..first_unqualified].iter().all(|v| v.qualified));
    }

    #[test]
    fn poisoned_vibration_reading_ranks_last_among_qualified() {
        // A NaN vibration figure slips through the `>` gate (NaN
        // comparisons are false), so the candidate qualifies with a NaN
        // score. The ranking must stay a total order: the poisoned entry
        // lands *after* every finite-scored qualified pump and *before*
        // the unqualified ones — never interleaved at the mercy of the
        // sort's comparison sequence.
        let mut catalog = example_catalog();
        let mut poisoned = catalog[1].clone();
        poisoned.name = "Poisoned P-0 (NaN vibration)".into();
        poisoned.vibration_mm_s = f64::NAN;
        // insert first so a stable sort can't accidentally save us
        catalog.insert(0, poisoned);
        let ranked = rank(&catalog, &PumpRequirements::skat_default());
        let pos = ranked
            .iter()
            .position(|v| v.name.starts_with("Poisoned"))
            .unwrap();
        assert!(ranked[pos].qualified);
        assert!(ranked[pos].score.is_nan());
        // every qualified pump with a real score ranks above it...
        for v in &ranked[..pos] {
            assert!(v.qualified && v.score.is_finite(), "{}", v.name);
        }
        // ...and every entry below it is unqualified
        for v in &ranked[pos + 1..] {
            assert!(!v.qualified, "{}", v.name);
        }
    }
}
