//! Serviceability: what it takes to maintain each architecture.
//!
//! §2's critique of the IMMERS-style centralized systems: "complex
//! maintenance stoppages are necessary to remove separate components and
//! devices", because all coolant circulates through one chiller loop. The
//! SKAT design answers with "self-contained circulation of the cooling
//! liquid" per module: servicing one module never stops the rack. This
//! module models the difference as a service-action catalog with
//! per-architecture blast radii.

/// How much of the rack a service action takes offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlastRadius {
    /// Hot-swappable: nothing stops.
    None,
    /// The affected module only.
    Module,
    /// The whole rack (shared coolant loop must be drained/stopped).
    Rack,
}

/// A routine or corrective service action.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAction {
    /// What is being serviced.
    pub action: &'static str,
    /// Expected occurrences per module-year.
    pub rate_per_module_year: f64,
    /// Hands-on time, hours.
    pub duration_hours: f64,
    /// How much of the rack it stops.
    pub blast_radius: BlastRadius,
}

/// Coolant-plumbing topologies whose serviceability the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlumbingTopology {
    /// SKAT: every module has its own sealed bath, pump and exchanger;
    /// only chilled water crosses the module boundary (§3).
    SelfContainedModules,
    /// IMMERS-style: one dielectric-coolant loop serves the whole rack
    /// through a central chiller (the paper's §2 reference \[9\]).
    CentralizedImmersion,
    /// Closed-loop cold plates: one water loop across all boards.
    ColdPlateLoop,
}

impl core::fmt::Display for PlumbingTopology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::SelfContainedModules => "self-contained modules (SKAT)",
            Self::CentralizedImmersion => "centralized immersion (IMMERS-style)",
            Self::ColdPlateLoop => "closed-loop cold plates",
        })
    }
}

/// The service catalog of one topology.
#[must_use]
pub fn service_catalog(topology: PlumbingTopology) -> Vec<ServiceAction> {
    match topology {
        PlumbingTopology::SelfContainedModules => vec![
            ServiceAction {
                action: "replace/reprogram one CCB",
                rate_per_module_year: 0.8,
                duration_hours: 1.5,
                blast_radius: BlastRadius::Module,
            },
            ServiceAction {
                action: "coolant top-up",
                rate_per_module_year: 0.25,
                duration_hours: 0.5,
                blast_radius: BlastRadius::Module,
            },
            ServiceAction {
                action: "pump service",
                rate_per_module_year: 0.10,
                duration_hours: 2.0,
                blast_radius: BlastRadius::Module,
            },
            ServiceAction {
                action: "secondary water valve/fitting service",
                rate_per_module_year: 0.05,
                duration_hours: 1.0,
                // balanced valves isolate one drop: module only
                blast_radius: BlastRadius::Module,
            },
        ],
        PlumbingTopology::CentralizedImmersion => vec![
            ServiceAction {
                action: "replace/reprogram one CCB",
                rate_per_module_year: 0.8,
                // the shared oil loop must be stopped and partially drained
                duration_hours: 3.0,
                blast_radius: BlastRadius::Rack,
            },
            ServiceAction {
                action: "coolant top-up",
                rate_per_module_year: 0.25,
                duration_hours: 0.5,
                blast_radius: BlastRadius::Rack,
            },
            ServiceAction {
                action: "central pump service",
                rate_per_module_year: 0.10 / 12.0, // one pump per rack
                duration_hours: 4.0,
                blast_radius: BlastRadius::Rack,
            },
            ServiceAction {
                action: "circulation-control system repair",
                // §2: "a complex system for the control of cooling-liquid
                // circulation, which causes periodic failures"
                rate_per_module_year: 0.30 / 12.0,
                duration_hours: 6.0,
                blast_radius: BlastRadius::Rack,
            },
        ],
        PlumbingTopology::ColdPlateLoop => vec![
            ServiceAction {
                action: "replace/reprogram one CCB",
                rate_per_module_year: 0.8,
                // quick disconnects help, but the board must be unplumbed
                duration_hours: 2.0,
                blast_radius: BlastRadius::Module,
            },
            ServiceAction {
                action: "loop de-air / pressure test",
                rate_per_module_year: 0.5,
                duration_hours: 2.0,
                blast_radius: BlastRadius::Rack,
            },
            ServiceAction {
                action: "pump service",
                rate_per_module_year: 0.10,
                duration_hours: 2.0,
                blast_radius: BlastRadius::Rack,
            },
            ServiceAction {
                action: "leak-sensor service",
                rate_per_module_year: 0.2,
                duration_hours: 1.0,
                blast_radius: BlastRadius::Module,
            },
        ],
    }
}

/// Annual serviceability summary at rack scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Topology summarized.
    pub topology: PlumbingTopology,
    /// Expected whole-rack stoppages per year.
    pub rack_stoppages_per_year: f64,
    /// Expected module-only interventions per year (whole rack keeps
    /// running).
    pub module_services_per_year: f64,
    /// Expected rack-wide lost module-hours per year: every rack stoppage
    /// idles all modules for its duration; module services idle one.
    pub lost_module_hours_per_year: f64,
}

/// Summarizes a rack of `modules` identical modules.
#[must_use]
pub fn summarize(topology: PlumbingTopology, modules: usize) -> ServiceSummary {
    let n = modules as f64;
    let mut rack_stoppages = 0.0;
    let mut module_services = 0.0;
    let mut lost_hours = 0.0;
    for a in service_catalog(topology) {
        let annual = a.rate_per_module_year * n;
        match a.blast_radius {
            BlastRadius::Rack => {
                rack_stoppages += annual;
                lost_hours += annual * a.duration_hours * n;
            }
            BlastRadius::Module => {
                module_services += annual;
                lost_hours += annual * a.duration_hours;
            }
            BlastRadius::None => {}
        }
    }
    ServiceSummary {
        topology,
        rack_stoppages_per_year: rack_stoppages,
        module_services_per_year: module_services,
        lost_module_hours_per_year: lost_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skat_modules_never_stop_the_rack() {
        let s = summarize(PlumbingTopology::SelfContainedModules, 12);
        assert_eq!(s.rack_stoppages_per_year, 0.0);
        assert!(s.module_services_per_year > 5.0);
    }

    #[test]
    fn centralized_immersion_stops_the_rack_constantly() {
        // §2's complaint quantified: every board swap is a rack stoppage.
        let s = summarize(PlumbingTopology::CentralizedImmersion, 12);
        assert!(s.rack_stoppages_per_year > 10.0, "{s:?}");
    }

    #[test]
    fn lost_hours_ordering_matches_the_paper() {
        let skat = summarize(PlumbingTopology::SelfContainedModules, 12);
        let immers = summarize(PlumbingTopology::CentralizedImmersion, 12);
        let plates = summarize(PlumbingTopology::ColdPlateLoop, 12);
        assert!(skat.lost_module_hours_per_year < plates.lost_module_hours_per_year);
        assert!(plates.lost_module_hours_per_year < immers.lost_module_hours_per_year);
        // the self-contained design is an order of magnitude better than
        // the centralized loop it replaced
        assert!(
            immers.lost_module_hours_per_year > 10.0 * skat.lost_module_hours_per_year,
            "IMMERS {} vs SKAT {}",
            immers.lost_module_hours_per_year,
            skat.lost_module_hours_per_year
        );
    }

    #[test]
    fn rack_stoppage_cost_scales_quadratically() {
        // a rack stoppage idles n modules and happens n times as often:
        // lost hours grow ~n², which is why centralization stops scaling
        let small = summarize(PlumbingTopology::CentralizedImmersion, 4);
        let large = summarize(PlumbingTopology::CentralizedImmersion, 12);
        let ratio = large.lost_module_hours_per_year / small.lost_module_hours_per_year;
        assert!(ratio > 6.0, "ratio {ratio}"); // ~(12/4)² with a linear floor
    }

    #[test]
    fn catalog_rates_are_positive() {
        for topo in [
            PlumbingTopology::SelfContainedModules,
            PlumbingTopology::CentralizedImmersion,
            PlumbingTopology::ColdPlateLoop,
        ] {
            for a in service_catalog(topo) {
                assert!(a.rate_per_module_year > 0.0);
                assert!(a.duration_hours > 0.0);
            }
        }
    }
}
