//! Deterministic, bounded time-series traces.
//!
//! A [`TraceRecorder`] captures *trajectories* — the per-scan chip and
//! bath temperatures of a fault drill, the residual of each fallback
//! rung a solver ladder climbs, the node temperatures of a thermal
//! transient — where the golden counters of [`crate::Registry`] capture
//! only totals. Traces sit in the **golden channel**: every sample is a
//! deterministic float produced by seeded physics, so two runs of the
//! same workload must produce `==` [`TraceSnapshot`]s at any
//! `RCS_THREADS` setting. Parallel stages record into per-task shard
//! recorders and [`TraceRecorder::absorb_prefixed`] them in **input
//! order**, exactly like registry snapshots.
//!
//! # Bounded memory, deterministic decimation
//!
//! Every channel keeps at most `capacity` samples. When a push would
//! overflow, the channel *decimates*: it doubles its keep-stride and
//! drops every retained sample whose push index is no longer a stride
//! multiple. Which samples survive is a pure function of the push
//! sequence — never of time or scheduling — so a decimated trace is
//! still golden.
//!
//! # Export
//!
//! [`emit`] writes NDJSON (or CSV, if the target path ends in `.csv`)
//! to the file named by the `RCS_OBS_TRACE` environment variable and
//! does nothing when it is unset — stdout stays byte-exact for the
//! experiment-determinism CI jobs.
//!
//! # Examples
//!
//! ```
//! use rcs_obs::trace::{ChannelKind, TraceRecorder};
//!
//! let trace = TraceRecorder::new();
//! let chip = trace.channel("t_chip", ChannelKind::Temperature);
//! trace.record(chip, 0.0, 45.0);
//! trace.record(chip, 2.0, 45.4);
//! let snap = trace.snapshot();
//! assert_eq!(snap.channel("t_chip").unwrap().samples.len(), 2);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Environment variable naming the trace export file. Unset (or empty)
/// means "do not export" — the recorder still records, the file is
/// simply never written.
pub const TRACE_ENV: &str = "RCS_OBS_TRACE";

/// Default per-channel sample capacity.
pub const DEFAULT_CAPACITY: usize = 512;

/// What a trace channel measures. The kind is part of the channel's
/// identity: recording a channel under two kinds is a bug and panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// A temperature, °C.
    Temperature,
    /// A volumetric flow, L/min.
    Flow,
    /// A solver residual (dimension depends on the solver).
    Residual,
    /// An alarm level (count of active alarms, or a severity code).
    Alarm,
    /// A supervisor action code ([`severity rank`]-style ordering).
    ///
    /// [`severity rank`]: ChannelKind::Action
    Action,
    /// Any other dimensionless scalar (utilization, iteration counts…).
    Scalar,
}

impl ChannelKind {
    /// Stable lowercase token used in NDJSON/CSV exports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Temperature => "temperature",
            Self::Flow => "flow",
            Self::Residual => "residual",
            Self::Alarm => "alarm",
            Self::Action => "action",
            Self::Scalar => "scalar",
        }
    }

    /// Parses the token produced by [`ChannelKind::as_str`].
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        Some(match token {
            "temperature" => Self::Temperature,
            "flow" => Self::Flow,
            "residual" => Self::Residual,
            "alarm" => Self::Alarm,
            "action" => Self::Action,
            "scalar" => Self::Scalar,
            _ => return None,
        })
    }
}

/// Handle to a channel of one [`TraceRecorder`], returned by
/// [`TraceRecorder::channel`]. Cheap to copy; only valid on the
/// recorder that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelId(usize);

/// One retained sample: the push index it survived under, the caller's
/// time coordinate, and the value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// 0-based index of this sample in the channel's push sequence.
    pub index: u64,
    /// Caller-supplied time coordinate (seconds, trial index, rung…).
    pub t: f64,
    /// The sampled value.
    pub value: f64,
}

#[derive(Debug)]
struct ChannelState {
    name: String,
    kind: ChannelKind,
    /// Samples are kept when `push index % stride == 0`; doubles on
    /// every decimation.
    stride: u64,
    /// Total pushes ever seen (kept or not).
    pushed: u64,
    samples: Vec<Sample>,
}

#[derive(Debug)]
struct TraceInner {
    channels: Vec<ChannelState>,
    index: BTreeMap<String, usize>,
}

/// A deterministic, bounded multi-channel trace sink.
///
/// `TraceRecorder` is `Sync` the same way [`crate::Registry`] is; the
/// deterministic usage pattern is per-task shard recorders merged in
/// input order via [`TraceRecorder::absorb_prefixed`].
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: bool,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared no-op sink behind [`TraceRecorder::disabled`].
static DISABLED: TraceRecorder = TraceRecorder {
    enabled: false,
    capacity: DEFAULT_CAPACITY,
    inner: Mutex::new(TraceInner {
        channels: Vec::new(),
        index: BTreeMap::new(),
    }),
};

impl TraceRecorder {
    /// Creates an enabled recorder with [`DEFAULT_CAPACITY`] samples per
    /// channel.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an enabled recorder keeping at most `capacity` samples
    /// per channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (decimation needs room to halve).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "trace capacity must be at least 2");
        Self {
            enabled: true,
            capacity,
            inner: Mutex::new(TraceInner {
                channels: Vec::new(),
                index: BTreeMap::new(),
            }),
        }
    }

    /// The shared no-op sink: [`TraceRecorder::record`] returns
    /// immediately, [`TraceRecorder::snapshot`] is empty.
    #[must_use]
    pub fn disabled() -> &'static TraceRecorder {
        &DISABLED
    }

    /// An enabled recorder when the `RCS_OBS_TRACE` export destination
    /// is set (non-empty), otherwise a no-op recorder — the standard
    /// binary entry point: recording costs nothing unless the run asked
    /// for a trace file.
    #[must_use]
    pub fn from_env() -> TraceRecorder {
        match std::env::var(TRACE_ENV) {
            Ok(path) if !path.is_empty() => Self::new(),
            _ => Self {
                enabled: false,
                capacity: DEFAULT_CAPACITY,
                inner: Mutex::new(TraceInner {
                    channels: Vec::new(),
                    index: BTreeMap::new(),
                }),
            },
        }
    }

    /// An empty recorder with this recorder's capacity and enablement —
    /// the shard constructor the parallel layer uses, so a disabled
    /// parent produces no-op shards.
    #[must_use]
    pub fn shard(&self) -> TraceRecorder {
        Self {
            enabled: self.enabled,
            capacity: self.capacity,
            inner: Mutex::new(TraceInner {
                channels: Vec::new(),
                index: BTreeMap::new(),
            }),
        }
    }

    /// `true` unless this is the [`TraceRecorder::disabled`] sink.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Per-channel sample capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().expect("trace recorder poisoned")
    }

    /// Finds or creates the channel `name` of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different kind.
    #[must_use]
    pub fn channel(&self, name: &str, kind: ChannelKind) -> ChannelId {
        if !self.enabled {
            return ChannelId(usize::MAX);
        }
        let mut inner = self.lock();
        if let Some(&i) = inner.index.get(name) {
            assert_eq!(
                inner.channels[i].kind, kind,
                "trace channel {name} re-opened with a different kind"
            );
            return ChannelId(i);
        }
        let i = inner.channels.len();
        inner.channels.push(ChannelState {
            name: name.to_owned(),
            kind,
            stride: 1,
            pushed: 0,
            samples: Vec::new(),
        });
        inner.index.insert(name.to_owned(), i);
        ChannelId(i)
    }

    /// Pushes one sample into `channel`. Kept or decimated according to
    /// the channel's current stride; a no-op on the disabled sink.
    pub fn record(&self, channel: ChannelId, t: f64, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        let capacity = self.capacity;
        let c = inner
            .channels
            .get_mut(channel.0)
            .expect("trace channel id from another recorder");
        push(c, capacity, t, value);
    }

    /// [`TraceRecorder::channel`] + [`TraceRecorder::record`] in one
    /// call, for sites that record a channel only occasionally.
    pub fn record_named(&self, name: &str, kind: ChannelKind, t: f64, value: f64) {
        if !self.enabled {
            return;
        }
        let id = self.channel(name, kind);
        self.record(id, t, value);
    }

    /// Captures every channel, sorted by name. Two runs of the same
    /// seeded workload must produce `==` snapshots at any thread count.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.lock();
        let mut channels: Vec<ChannelSnapshot> = inner
            .channels
            .iter()
            .map(|c| ChannelSnapshot {
                name: c.name.clone(),
                kind: c.kind,
                stride: c.stride,
                pushed: c.pushed,
                samples: c.samples.clone(),
            })
            .collect();
        channels.sort_by(|a, b| a.name.cmp(&b.name));
        TraceSnapshot { channels }
    }

    /// [`TraceRecorder::absorb_prefixed`] with no prefix.
    pub fn absorb(&self, snapshot: &TraceSnapshot) {
        self.absorb_prefixed("", snapshot);
    }

    /// Replays a shard snapshot into this recorder, channel by channel
    /// in the snapshot's (sorted) order, renaming each channel to
    /// `{prefix}/{name}` when `prefix` is non-empty. Every retained
    /// shard sample is re-pushed through this recorder's own bounded
    /// decimation, so the merge is a pure function of the absorb order —
    /// the parallel layer absorbs shards in **input order** to keep the
    /// merged trace bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if a merged channel name already exists with a different
    /// kind.
    pub fn absorb_prefixed(&self, prefix: &str, snapshot: &TraceSnapshot) {
        if !self.enabled {
            return;
        }
        for ch in &snapshot.channels {
            let name = if prefix.is_empty() {
                ch.name.clone()
            } else {
                format!("{prefix}/{}", ch.name)
            };
            let id = self.channel(&name, ch.kind);
            for s in &ch.samples {
                self.record(id, s.t, s.value);
            }
        }
    }

    /// Installs a snapshot **verbatim** — stride, push count and
    /// retained samples copied exactly, with no re-push and therefore no
    /// re-decimation. This is the checkpoint/restore hook of the
    /// simulation kernel: where [`TraceRecorder::absorb`] *replays* a
    /// shard (advancing push counts and possibly re-decimating), a
    /// restore must reproduce the recorder's exact mid-run state so the
    /// resumed run's future pushes decimate identically to an
    /// uninterrupted one.
    ///
    /// Intended for a **fresh recorder of the same capacity** as the one
    /// captured; a channel name that already exists is overwritten in
    /// place (its kind must match). A no-op on the disabled sink.
    ///
    /// # Panics
    ///
    /// Panics if an existing channel name is restored with a different
    /// kind — the same identity rule as [`TraceRecorder::channel`].
    pub fn restore_channels(&self, snapshot: &TraceSnapshot) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        for ch in &snapshot.channels {
            if let Some(&i) = inner.index.get(&ch.name) {
                assert_eq!(
                    inner.channels[i].kind, ch.kind,
                    "trace channel {} restored with a different kind",
                    ch.name
                );
                inner.channels[i].stride = ch.stride;
                inner.channels[i].pushed = ch.pushed;
                inner.channels[i].samples = ch.samples.clone();
            } else {
                let i = inner.channels.len();
                inner.channels.push(ChannelState {
                    name: ch.name.clone(),
                    kind: ch.kind,
                    stride: ch.stride,
                    pushed: ch.pushed,
                    samples: ch.samples.clone(),
                });
                inner.index.insert(ch.name.clone(), i);
            }
        }
    }
}

/// The bounded push: keep the sample if its index is on-stride, and
/// decimate (double the stride, drop off-stride survivors) when full.
fn push(c: &mut ChannelState, capacity: usize, t: f64, value: f64) {
    let index = c.pushed;
    c.pushed += 1;
    if !index.is_multiple_of(c.stride) {
        return;
    }
    if c.samples.len() >= capacity {
        c.stride = c.stride.saturating_mul(2);
        let stride = c.stride;
        c.samples.retain(|s| s.index.is_multiple_of(stride));
        if !index.is_multiple_of(c.stride) {
            return;
        }
    }
    c.samples.push(Sample { index, t, value });
}

/// One channel's captured state.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSnapshot {
    /// Channel name (possibly `{prefix}/{name}` after an absorb).
    pub name: String,
    /// What the channel measures.
    pub kind: ChannelKind,
    /// Keep-stride at capture time (1 = nothing decimated yet).
    pub stride: u64,
    /// Total pushes the channel ever saw.
    pub pushed: u64,
    /// The retained samples, in push order.
    pub samples: Vec<Sample>,
}

/// A captured trace: every channel, sorted by name. Samples are
/// deterministic (and finite) floats, so `==` is the right comparison
/// for the determinism tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Channels sorted by name.
    pub channels: Vec<ChannelSnapshot>,
}

impl TraceSnapshot {
    /// The channel `name`, if it was ever opened.
    #[must_use]
    pub fn channel(&self, name: &str) -> Option<&ChannelSnapshot> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// `true` if no channel was ever opened.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

/// Renders a trace snapshot as NDJSON: one
/// `{"type":"trace","name":…,"kind":…,"stride":…,"pushed":…,"samples":[[t,v],…]}`
/// line per channel, in snapshot (sorted-name) order. Non-finite values
/// render as `null` so every line stays valid JSON.
#[must_use]
pub fn render_ndjson(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    for ch in &snapshot.channels {
        let _ = write!(
            out,
            "{{\"type\":\"trace\",\"name\":\"{}\",\"kind\":\"{}\",\"stride\":{},\"pushed\":{},\"samples\":[",
            crate::manifest::escape_json(&ch.name),
            ch.kind.as_str(),
            ch.stride,
            ch.pushed,
        );
        for (i, s) in ch.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", json_f64(s.t), json_f64(s.value));
        }
        out.push_str("]}\n");
    }
    out
}

/// Renders a trace snapshot as CSV with a `channel,kind,index,t,value`
/// header and one row per retained sample. Channel names containing a
/// comma, double quote, newline, or carriage return are RFC-4180
/// quoted (embedded quotes doubled) — an unquoted embedded newline
/// would split the row in two.
#[must_use]
pub fn render_csv(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("channel,kind,index,t,value\n");
    for ch in &snapshot.channels {
        let name = if ch.name.contains([',', '"', '\n', '\r']) {
            format!("\"{}\"", ch.name.replace('"', "\"\""))
        } else {
            ch.name.clone()
        };
        for s in &ch.samples {
            let _ = writeln!(
                out,
                "{name},{},{},{},{}",
                ch.kind.as_str(),
                s.index,
                s.t,
                s.value
            );
        }
    }
    out
}

/// A finite float as a JSON number; non-finite as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Exports `snapshot` to the file named by [`TRACE_ENV`] (appending;
/// CSV when the path ends in `.csv`, NDJSON otherwise). Does nothing
/// when the variable is unset or empty — and never touches stdout, so
/// experiment stdout stays byte-exact.
pub fn emit(snapshot: &TraceSnapshot) {
    use std::io::Write as _;
    let Ok(path) = std::env::var(TRACE_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let rendered = if path.ends_with(".csv") {
        render_csv(snapshot)
    } else {
        render_ndjson(snapshot)
    };
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(err) = f.write_all(rendered.as_bytes()) {
                eprintln!("rcs-obs: cannot write trace file {path}: {err}");
            }
        }
        Err(err) => eprintln!("rcs-obs: cannot open trace file {path}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_sorted_order() {
        let trace = TraceRecorder::new();
        let z = trace.channel("z", ChannelKind::Scalar);
        let a = trace.channel("a", ChannelKind::Flow);
        trace.record(z, 0.0, 1.0);
        trace.record(a, 0.0, 2.0);
        let snap = trace.snapshot();
        assert_eq!(snap.channels.len(), 2);
        assert_eq!(snap.channels[0].name, "a");
        assert_eq!(snap.channels[1].name, "z");
        assert_eq!(snap.channel("z").unwrap().samples[0].value, 1.0);
    }

    #[test]
    fn channel_is_idempotent_by_name() {
        let trace = TraceRecorder::new();
        let a = trace.channel("t", ChannelKind::Temperature);
        let b = trace.channel("t", ChannelKind::Temperature);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn channel_kind_is_part_of_identity() {
        let trace = TraceRecorder::new();
        let _ = trace.channel("t", ChannelKind::Temperature);
        let _ = trace.channel("t", ChannelKind::Flow);
    }

    #[test]
    fn decimation_is_bounded_and_deterministic() {
        let trace = TraceRecorder::with_capacity(8);
        let ch = trace.channel("x", ChannelKind::Scalar);
        for i in 0..1000 {
            trace.record(ch, f64::from(i), f64::from(i) * 2.0);
        }
        let snap = trace.snapshot();
        let c = snap.channel("x").unwrap();
        assert!(c.samples.len() <= 8, "kept {}", c.samples.len());
        assert_eq!(c.pushed, 1000);
        assert!(c.stride > 1);
        // every survivor is on-stride and in push order
        for w in c.samples.windows(2) {
            assert!(w[0].index < w[1].index);
        }
        for s in &c.samples {
            assert_eq!(s.index % c.stride, 0);
            assert_eq!(s.value, s.t * 2.0);
        }
        // an identical second run keeps exactly the same samples
        let again = TraceRecorder::with_capacity(8);
        let ch2 = again.channel("x", ChannelKind::Scalar);
        for i in 0..1000 {
            again.record(ch2, f64::from(i), f64::from(i) * 2.0);
        }
        assert_eq!(again.snapshot(), snap);
    }

    #[test]
    fn csv_export_quotes_hostile_channel_names() {
        let trace = TraceRecorder::new();
        trace.record_named("plain", ChannelKind::Scalar, 0.0, 1.0);
        trace.record_named("a,b", ChannelKind::Scalar, 0.0, 2.0);
        trace.record_named("say \"hi\"", ChannelKind::Scalar, 0.0, 3.0);
        trace.record_named("line\nbreak", ChannelKind::Scalar, 0.0, 4.0);
        trace.record_named("car\rreturn", ChannelKind::Scalar, 0.0, 5.0);
        let csv = render_csv(&trace.snapshot());
        assert!(csv.contains("\nplain,scalar,"), "{csv}");
        assert!(csv.contains("\n\"a,b\",scalar,"), "{csv}");
        assert!(csv.contains("\n\"say \"\"hi\"\"\",scalar,"), "{csv}");
        assert!(csv.contains("\"line\nbreak\",scalar,"), "{csv}");
        assert!(csv.contains("\"car\rreturn\",scalar,"), "{csv}");
        // a data row never starts with an unquoted name fragment: every
        // line is either the header, a quoted-name row, a quote
        // continuation, or starts with an unquoted full name
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(header_cols, 5);
    }

    #[test]
    fn ndjson_export_escapes_hostile_channel_names() {
        let trace = TraceRecorder::new();
        trace.record_named("a,b \"c\"\nd", ChannelKind::Scalar, 0.0, 1.0);
        let ndjson = render_ndjson(&trace.snapshot());
        assert!(
            ndjson.contains("\"name\":\"a,b \\\"c\\\"\\nd\""),
            "{ndjson}"
        );
        // the line stays one line: the raw newline was escaped
        assert_eq!(ndjson.trim_end().lines().count(), 1, "{ndjson}");
        let parsed = crate::report::parse_json(ndjson.trim_end()).expect("valid JSON");
        assert_eq!(
            parsed.get("name").and_then(crate::report::Json::as_str),
            Some("a,b \"c\"\nd")
        );
    }

    #[test]
    fn absorb_prefixed_replays_in_input_order() {
        let shard_a = TraceRecorder::new();
        shard_a.record_named("t", ChannelKind::Temperature, 0.0, 1.0);
        let shard_b = TraceRecorder::new();
        shard_b.record_named("t", ChannelKind::Temperature, 0.0, 9.0);

        let total = TraceRecorder::new();
        total.absorb_prefixed("cell 0", &shard_a.snapshot());
        total.absorb_prefixed("cell 1", &shard_b.snapshot());
        let snap = total.snapshot();
        assert_eq!(snap.channels.len(), 2);
        assert_eq!(snap.channel("cell 0/t").unwrap().samples[0].value, 1.0);
        assert_eq!(snap.channel("cell 1/t").unwrap().samples[0].value, 9.0);
    }

    #[test]
    fn restore_is_verbatim_where_absorb_replays() {
        // Fill a channel past capacity so it decimates mid-stream.
        let original = TraceRecorder::with_capacity(8);
        let ch = original.channel("x", ChannelKind::Scalar);
        for i in 0..37 {
            original.record(ch, f64::from(i), f64::from(i) * 3.0);
        }
        let snap = original.snapshot();

        // Verbatim restore reproduces stride/pushed/samples exactly...
        let restored = TraceRecorder::with_capacity(8);
        restored.restore_channels(&snap);
        assert_eq!(restored.snapshot(), snap);

        // ...so continuing both recorders stays bit-identical.
        let ch2 = restored.channel("x", ChannelKind::Scalar);
        for i in 37..200 {
            original.record(ch, f64::from(i), f64::from(i) * 3.0);
            restored.record(ch2, f64::from(i), f64::from(i) * 3.0);
        }
        assert_eq!(restored.snapshot(), original.snapshot());

        // An absorb of the same snapshot is a replay, not a restore:
        // push counts differ (only retained samples are re-pushed).
        let absorbed = TraceRecorder::with_capacity(8);
        absorbed.absorb(&snap);
        assert_ne!(absorbed.snapshot().channel("x").unwrap().pushed, 37);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let trace = TraceRecorder::disabled();
        let ch = trace.channel("t", ChannelKind::Temperature);
        trace.record(ch, 0.0, 1.0);
        trace.record_named("u", ChannelKind::Flow, 0.0, 2.0);
        trace.absorb(&TraceSnapshot::default());
        assert!(!trace.is_enabled());
        assert!(trace.snapshot().is_empty());
        // shards of a disabled recorder are disabled too
        assert!(!trace.shard().is_enabled());
    }

    #[test]
    fn ndjson_and_csv_exports_render_every_channel() {
        let trace = TraceRecorder::new();
        trace.record_named("t_chip", ChannelKind::Temperature, 0.0, 45.5);
        trace.record_named("t_chip", ChannelKind::Temperature, 2.0, 45.75);
        let snap = trace.snapshot();
        let ndjson = render_ndjson(&snap);
        assert_eq!(
            ndjson,
            "{\"type\":\"trace\",\"name\":\"t_chip\",\"kind\":\"temperature\",\
             \"stride\":1,\"pushed\":2,\"samples\":[[0,45.5],[2,45.75]]}\n"
        );
        let csv = render_csv(&snap);
        assert_eq!(
            csv,
            "channel,kind,index,t,value\n\
             t_chip,temperature,0,0,45.5\n\
             t_chip,temperature,1,2,45.75\n"
        );
    }

    #[test]
    fn non_finite_samples_render_as_null() {
        let trace = TraceRecorder::new();
        trace.record_named("r", ChannelKind::Residual, 0.0, f64::NAN);
        let ndjson = render_ndjson(&trace.snapshot());
        assert!(ndjson.contains("[0,null]"), "{ndjson}");
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            ChannelKind::Temperature,
            ChannelKind::Flow,
            ChannelKind::Residual,
            ChannelKind::Alarm,
            ChannelKind::Action,
            ChannelKind::Scalar,
        ] {
            assert_eq!(ChannelKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ChannelKind::parse("volts"), None);
    }
}
