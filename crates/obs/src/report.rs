//! Manifest/trace ingestion and regression diffing.
//!
//! This module is the library behind the `obs_report` binary: it parses
//! the NDJSON emitted by [`crate::manifest`] and [`crate::trace`] back
//! into [`RunDoc`]s, renders human-readable cross-run summaries, and
//! diffs two runs' golden counters, profile trees, and traced channels
//! with per-channel tolerance bands. The diff is what CI runs between
//! the `RCS_THREADS=1` and `RCS_THREADS=4` legs of `exp_all` and
//! against the committed golden profiles — a drifted counter, profile
//! node, or trace sample turns into a nonzero exit code instead of a
//! silently different float on stdout.
//!
//! Only the golden channel is compared: `timing` and `note` lines are
//! parsed and discarded, because they legitimately vary run to run.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::profile;

// ---------------------------------------------------------------------
// Minimal JSON value + parser (the workspace is dependency-free).
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64`; the golden counters this
/// tooling cares about fit `f64` exactly (they are far below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float (`null` reads as NaN, the encoding
    /// [`crate::trace::render_ndjson`] uses for non-finite samples).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document from `text` (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_value(bytes, pos)? else {
                    return Err(format!("expected object key at offset {pos}"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    let mut chars = text[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err("unterminated escape".to_owned());
                };
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = chars.next() else {
                                return Err("unterminated \\u escape".to_owned());
                            };
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| "invalid \\u escape".to_owned())?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

// ---------------------------------------------------------------------
// Run documents.
// ---------------------------------------------------------------------

/// One traced channel as parsed back from NDJSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDoc {
    /// Channel kind token (`"temperature"`, `"flow"`, …).
    pub kind: String,
    /// Keep-stride at export time.
    pub stride: u64,
    /// Total pushes the channel saw.
    pub pushed: u64,
    /// `(t, value)` samples in push order (NaN encodes an exported
    /// `null`).
    pub samples: Vec<(f64, f64)>,
}

/// One span row as parsed back from NDJSON (see
/// [`crate::span::render_ndjson`]). All values are golden work units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanDoc {
    /// Stable span id (16 hex digits).
    pub id: String,
    /// Parent span id; `None` for roots.
    pub parent: Option<String>,
    /// Span label.
    pub label: String,
    /// Tree depth (roots are 0).
    pub depth: u64,
    /// Work clock at enter.
    pub start: u64,
    /// Work clock at exit.
    pub end: u64,
    /// Work attributed to this span alone.
    pub self_work: u64,
    /// Work including children.
    pub total: u64,
}

/// One span-elision row: a fanout-capped same-label child summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanElisionDoc {
    /// Parent span id; `None` for elided roots.
    pub parent: Option<String>,
    /// Elided label.
    pub label: String,
    /// Number of folded spans.
    pub count: u64,
    /// Their summed work.
    pub work: u64,
}

/// One run's golden telemetry as parsed from an NDJSON manifest/trace
/// file. Non-golden `timing`/`note` lines are discarded on parse.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunDoc {
    /// Experiment name from the `run` header (empty for headerless
    /// fragments such as committed golden-profile files).
    pub experiment: String,
    /// Seed from the `run` header.
    pub seed: Option<u64>,
    /// Thread count from the `run` header.
    pub threads: Option<u64>,
    /// Model version from the `run` header.
    pub model_version: String,
    /// Golden counters (including the `profile.*` namespace).
    pub counters: BTreeMap<String, u64>,
    /// Golden histograms: `(bounds, counts)`.
    pub histograms: BTreeMap<String, (Vec<u64>, Vec<u64>)>,
    /// Golden float histograms: `(edges, counts)`.
    pub fhistograms: BTreeMap<String, (Vec<f64>, Vec<u64>)>,
    /// Traced channels.
    pub traces: BTreeMap<String, TraceDoc>,
    /// Golden span tree in export (pre-order DFS) order.
    pub spans: Vec<SpanDoc>,
    /// Fanout-elision summaries, in export order.
    pub span_elisions: Vec<SpanElisionDoc>,
}

impl RunDoc {
    /// The rolled-up profile tree of this run's `profile.*` counters.
    #[must_use]
    pub fn profile(&self) -> profile::ProfileNode {
        profile::from_counters(self.counters.iter().map(|(k, &v)| (k.as_str(), v)))
    }
}

fn field_err(line_no: usize, what: &str) -> String {
    format!("line {line_no}: missing or malformed {what}")
}

fn u64_array(value: &Json) -> Option<Vec<u64>> {
    match value {
        Json::Arr(items) => items.iter().map(Json::as_u64).collect(),
        _ => None,
    }
}

fn f64_array(value: &Json) -> Option<Vec<f64>> {
    match value {
        Json::Arr(items) => items.iter().map(Json::as_f64).collect(),
        _ => None,
    }
}

/// Parses an NDJSON manifest/trace stream into run documents. A `run`
/// header line opens a new document; golden lines before any header
/// accumulate into an implicit headerless document (the shape of the
/// committed golden-profile files). Unknown line types are skipped so
/// the format can grow.
///
/// # Errors
///
/// Returns `Err` with the 1-based line number on malformed JSON or a
/// known line type with missing fields.
pub fn parse_ndjson(text: &str) -> Result<Vec<RunDoc>, String> {
    let mut docs: Vec<RunDoc> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| field_err(line_no, "\"type\""))?;
        if kind == "run" {
            docs.push(RunDoc {
                experiment: value
                    .get("experiment")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
                seed: value.get("seed").and_then(Json::as_u64),
                threads: value.get("threads").and_then(Json::as_u64),
                model_version: value
                    .get("model_version")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
                ..RunDoc::default()
            });
            continue;
        }
        if docs.is_empty() {
            docs.push(RunDoc::default());
        }
        let doc = docs.last_mut().expect("doc pushed above");
        let name = || -> Result<String, String> {
            Ok(value
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| field_err(line_no, "\"name\""))?
                .to_owned())
        };
        match kind {
            "counter" => {
                let v = value
                    .get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| field_err(line_no, "counter \"value\""))?;
                *doc.counters.entry(name()?).or_insert(0) += v;
            }
            "histogram" => {
                let bounds = value
                    .get("bounds")
                    .and_then(u64_array)
                    .ok_or_else(|| field_err(line_no, "histogram \"bounds\""))?;
                let counts = value
                    .get("counts")
                    .and_then(u64_array)
                    .ok_or_else(|| field_err(line_no, "histogram \"counts\""))?;
                doc.histograms.insert(name()?, (bounds, counts));
            }
            "fhistogram" => {
                let edges = value
                    .get("edges")
                    .and_then(f64_array)
                    .ok_or_else(|| field_err(line_no, "fhistogram \"edges\""))?;
                let counts = value
                    .get("counts")
                    .and_then(u64_array)
                    .ok_or_else(|| field_err(line_no, "fhistogram \"counts\""))?;
                doc.fhistograms.insert(name()?, (edges, counts));
            }
            "trace" => {
                let samples = match value.get("samples") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|pair| match pair {
                            Json::Arr(tv) if tv.len() == 2 => {
                                Some((tv[0].as_f64()?, tv[1].as_f64()?))
                            }
                            _ => None,
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| field_err(line_no, "trace \"samples\""))?,
                    _ => return Err(field_err(line_no, "trace \"samples\"")),
                };
                doc.traces.insert(
                    name()?,
                    TraceDoc {
                        kind: value
                            .get("kind")
                            .and_then(Json::as_str)
                            .unwrap_or("scalar")
                            .to_owned(),
                        stride: value.get("stride").and_then(Json::as_u64).unwrap_or(1),
                        pushed: value.get("pushed").and_then(Json::as_u64).unwrap_or(0),
                        samples,
                    },
                );
            }
            "span" => {
                let field = |key: &str| -> Result<u64, String> {
                    value
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| field_err(line_no, &format!("span \"{key}\"")))
                };
                doc.spans.push(SpanDoc {
                    id: value
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_err(line_no, "span \"id\""))?
                        .to_owned(),
                    parent: value
                        .get("parent")
                        .and_then(Json::as_str)
                        .map(str::to_owned),
                    label: value
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_err(line_no, "span \"label\""))?
                        .to_owned(),
                    depth: field("depth")?,
                    start: field("start")?,
                    end: field("end")?,
                    self_work: field("self")?,
                    total: field("total")?,
                });
            }
            "span_elided" => {
                let field = |key: &str| -> Result<u64, String> {
                    value
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| field_err(line_no, &format!("span_elided \"{key}\"")))
                };
                doc.span_elisions.push(SpanElisionDoc {
                    parent: value
                        .get("parent")
                        .and_then(Json::as_str)
                        .map(str::to_owned),
                    label: value
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_err(line_no, "span_elided \"label\""))?
                        .to_owned(),
                    count: field("count")?,
                    work: field("work")?,
                });
            }
            // non-golden and future line types
            _ => {}
        }
    }
    Ok(docs)
}

// ---------------------------------------------------------------------
// Diffing.
// ---------------------------------------------------------------------

/// Options for [`diff`] / [`diff_docs`].
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    /// Compare only the `profile.*` counter namespace (the committed
    /// golden-profile check).
    pub profile_only: bool,
    /// `(name_prefix, relative_tolerance)` bands; the longest matching
    /// prefix wins, default tolerance is 0 (exact).
    pub tolerances: Vec<(String, f64)>,
}

impl DiffOptions {
    /// The relative tolerance for channel `name`.
    #[must_use]
    pub fn tolerance(&self, name: &str) -> f64 {
        self.tolerances
            .iter()
            .filter(|(prefix, _)| name.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(0.0, |(_, tol)| *tol)
    }
}

/// One diff finding (always a regression: matching channels produce no
/// finding).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Channel class: `"counter"`, `"profile"`, `"histogram"`,
    /// `"fhistogram"`, `"trace"`, or `"run"`.
    pub kind: &'static str,
    /// Channel name.
    pub name: String,
    /// Human-readable description of the drift.
    pub detail: String,
}

/// The outcome of diffing two runs (or two run sets).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Every detected regression.
    pub findings: Vec<Finding>,
    /// Channels compared (matched or not).
    pub compared: usize,
}

impl DiffReport {
    /// `true` if any channel drifted.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        !self.findings.is_empty()
    }

    /// The process exit code the `obs_report` binary returns: 0 clean,
    /// 1 on any regression.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_regressions())
    }

    /// Renders the report as text: a `PASS`/`FAIL` verdict line plus
    /// one line per finding.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(out, "PASS: {} channels compared, no drift", self.compared);
        } else {
            let _ = writeln!(
                out,
                "FAIL: {} regression(s) across {} compared channels",
                self.findings.len(),
                self.compared
            );
            for f in &self.findings {
                let _ = writeln!(out, "  [{}] {}: {}", f.kind, f.name, f.detail);
            }
        }
        out
    }

    fn merge(&mut self, other: DiffReport) {
        self.findings.extend(other.findings);
        self.compared += other.compared;
    }
}

fn within(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    if a == b {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

#[allow(clippy::cast_precision_loss)]
fn within_u64(a: u64, b: u64, tol: f64) -> bool {
    a == b || (a as f64 - b as f64).abs() <= tol * (a.max(b) as f64)
}

fn diff_map<V, F>(
    kind: &'static str,
    a: &BTreeMap<String, V>,
    b: &BTreeMap<String, V>,
    keep: impl Fn(&str) -> bool,
    compare: F,
    report: &mut DiffReport,
) where
    F: Fn(&str, &V, &V) -> Option<String>,
{
    let names: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for name in names {
        if !keep(name) {
            continue;
        }
        report.compared += 1;
        match (a.get(name.as_str()), b.get(name.as_str())) {
            (Some(va), Some(vb)) => {
                if let Some(detail) = compare(name, va, vb) {
                    report.findings.push(Finding {
                        kind,
                        name: name.clone(),
                        detail,
                    });
                }
            }
            (Some(_), None) => report.findings.push(Finding {
                kind,
                name: name.clone(),
                detail: "present in baseline, missing in candidate".to_owned(),
            }),
            (None, Some(_)) => report.findings.push(Finding {
                kind,
                name: name.clone(),
                detail: "missing in baseline, present in candidate".to_owned(),
            }),
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
}

/// Diffs two runs' golden channels under `opts`. `a` is the baseline
/// (golden) run, `b` the candidate.
#[must_use]
pub fn diff(a: &RunDoc, b: &RunDoc, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let profile_only = opts.profile_only;
    diff_map(
        if profile_only { "profile" } else { "counter" },
        &a.counters,
        &b.counters,
        |name| !profile_only || name.starts_with(profile::PREFIX),
        |name, &va, &vb| {
            let tol = opts.tolerance(name);
            (!within_u64(va, vb, tol))
                .then(|| format!("baseline {va} vs candidate {vb} (tol {tol})"))
        },
        &mut report,
    );
    if profile_only {
        return report;
    }
    diff_map(
        "histogram",
        &a.histograms,
        &b.histograms,
        |_| true,
        |name, (bounds_a, counts_a), (bounds_b, counts_b)| {
            if bounds_a != bounds_b {
                return Some("bucket bounds differ".to_owned());
            }
            let tol = opts.tolerance(name);
            (counts_a.len() != counts_b.len()
                || counts_a
                    .iter()
                    .zip(counts_b)
                    .any(|(&ca, &cb)| !within_u64(ca, cb, tol)))
            .then(|| format!("counts {counts_a:?} vs {counts_b:?} (tol {tol})"))
        },
        &mut report,
    );
    diff_map(
        "fhistogram",
        &a.fhistograms,
        &b.fhistograms,
        |_| true,
        |name, (edges_a, counts_a), (edges_b, counts_b)| {
            if edges_a.len() != edges_b.len()
                || edges_a
                    .iter()
                    .zip(edges_b)
                    .any(|(ea, eb)| ea.to_bits() != eb.to_bits())
            {
                return Some("bucket edges differ".to_owned());
            }
            let tol = opts.tolerance(name);
            (counts_a.len() != counts_b.len()
                || counts_a
                    .iter()
                    .zip(counts_b)
                    .any(|(&ca, &cb)| !within_u64(ca, cb, tol)))
            .then(|| format!("counts {counts_a:?} vs {counts_b:?} (tol {tol})"))
        },
        &mut report,
    );
    diff_map(
        "trace",
        &a.traces,
        &b.traces,
        |_| true,
        |name, ta, tb| {
            if ta.kind != tb.kind {
                return Some(format!("kind {} vs {}", ta.kind, tb.kind));
            }
            if ta.stride != tb.stride || ta.pushed != tb.pushed {
                return Some(format!(
                    "shape stride={}/pushed={} vs stride={}/pushed={}",
                    ta.stride, ta.pushed, tb.stride, tb.pushed
                ));
            }
            if ta.samples.len() != tb.samples.len() {
                return Some(format!(
                    "{} samples vs {}",
                    ta.samples.len(),
                    tb.samples.len()
                ));
            }
            let tol = opts.tolerance(name);
            for (i, ((t_a, v_a), (t_b, v_b))) in ta.samples.iter().zip(&tb.samples).enumerate() {
                if !within(*t_a, *t_b, tol) || !within(*v_a, *v_b, tol) {
                    return Some(format!(
                        "sample {i} drifted: ({t_a}, {v_a}) vs ({t_b}, {v_b}) (tol {tol})"
                    ));
                }
            }
            None
        },
        &mut report,
    );
    report
}

/// Diffs two parsed files run by run, matching documents by experiment
/// name (headerless fragments match the headerless fragment on the
/// other side). A run present on only one side is itself a regression.
#[must_use]
pub fn diff_docs(a: &[RunDoc], b: &[RunDoc], opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let index = |docs: &[RunDoc]| -> BTreeMap<String, usize> {
        docs.iter()
            .enumerate()
            .map(|(i, d)| (d.experiment.clone(), i))
            .collect()
    };
    let ia = index(a);
    let ib = index(b);
    let names: std::collections::BTreeSet<&String> = ia.keys().chain(ib.keys()).collect();
    for name in names {
        match (ia.get(name.as_str()), ib.get(name.as_str())) {
            (Some(&da), Some(&db)) => report.merge(diff(&a[da], &b[db], opts)),
            (present, _) => {
                report.compared += 1;
                let detail = if present.is_some() {
                    "run present in baseline, missing in candidate"
                } else {
                    "run missing in baseline, present in candidate"
                };
                report.findings.push(Finding {
                    kind: "run",
                    name: if name.is_empty() {
                        "(headerless)".to_owned()
                    } else {
                        name.to_string()
                    },
                    detail: detail.to_owned(),
                });
            }
        }
    }
    report
}

// ---------------------------------------------------------------------
// Summary rendering.
// ---------------------------------------------------------------------

/// Renders a human-readable cross-run summary: per run, the header
/// identity, the largest golden counters, the rolled-up profile tree,
/// and per-trace channel statistics. Shows the 10 largest counters and
/// `profile.*` leaves — [`summary_top`] makes the cut configurable.
#[must_use]
pub fn summary(docs: &[RunDoc]) -> String {
    summary_top(docs, 10)
}

/// [`summary`] with an explicit hotspot cut: the `top` largest golden
/// counters and the `top` largest `profile.*` work leaves, both ranked
/// by magnitude (the `obs_report summary --top N` flag).
#[must_use]
pub fn summary_top(docs: &[RunDoc], top: usize) -> String {
    let mut out = String::new();
    for doc in docs {
        let name = if doc.experiment.is_empty() {
            "(headerless fragment)"
        } else {
            &doc.experiment
        };
        let _ = writeln!(out, "== {name} ==");
        let _ = writeln!(
            out,
            "  seed={} threads={} model={}",
            doc.seed.map_or_else(|| "-".to_owned(), |s| s.to_string()),
            doc.threads
                .map_or_else(|| "-".to_owned(), |t| t.to_string()),
            if doc.model_version.is_empty() {
                "-"
            } else {
                &doc.model_version
            },
        );
        let _ = writeln!(
            out,
            "  {} counters, {} histograms, {} float histograms, {} traces, {} spans",
            doc.counters.len(),
            doc.histograms.len(),
            doc.fhistograms.len(),
            doc.traces.len(),
            doc.spans.len()
        );
        let mut top_counters: Vec<(&String, &u64)> = doc
            .counters
            .iter()
            .filter(|(k, _)| !k.starts_with(profile::PREFIX))
            .collect();
        top_counters.sort_by(|(ka, va), (kb, vb)| vb.cmp(va).then_with(|| ka.cmp(kb)));
        if !top_counters.is_empty() {
            let _ = writeln!(out, "  top counters:");
            for (k, v) in top_counters.iter().take(top) {
                let _ = writeln!(out, "    {k} = {v}");
            }
        }
        let mut leaves: Vec<(&String, &u64)> = doc
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(profile::PREFIX))
            .collect();
        leaves.sort_by(|(ka, va), (kb, vb)| vb.cmp(va).then_with(|| ka.cmp(kb)));
        if !leaves.is_empty() {
            let _ = writeln!(out, "  top profile leaves:");
            for (k, v) in leaves.iter().take(top) {
                let _ = writeln!(out, "    {k} = {v}");
            }
        }
        let tree = doc.profile();
        if tree.total > 0 || !tree.children.is_empty() {
            let _ = writeln!(out, "  work profile:");
            for line in profile::render(&tree).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        if !doc.traces.is_empty() {
            let _ = writeln!(out, "  traces:");
            for (name, t) in &doc.traces {
                let (min, max) = t
                    .samples
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, v)| {
                        (lo.min(v), hi.max(v))
                    });
                let last = t.samples.last().map_or(f64::NAN, |&(_, v)| v);
                let _ = writeln!(
                    out,
                    "    {name} [{}] kept {}/{} (stride {}) min={min} max={max} last={last}",
                    t.kind,
                    t.samples.len(),
                    t.pushed,
                    t.stride
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Span attribution.
// ---------------------------------------------------------------------

/// The `/`-joined label paths of `doc.spans`, index-aligned with the
/// span vector. The paths fall straight out of the pre-order export:
/// a span at depth `d` extends the path of the most recent span at
/// depth `d - 1`.
#[must_use]
pub fn span_paths(doc: &RunDoc) -> Vec<String> {
    let mut stack: Vec<String> = Vec::new();
    let mut out = Vec::with_capacity(doc.spans.len());
    for span in &doc.spans {
        stack.truncate(usize::try_from(span.depth).unwrap_or(usize::MAX));
        stack.push(span.label.clone());
        out.push(stack.join("/"));
    }
    out
}

/// The grand total of a run's span work: the summed totals of the root
/// spans plus any elided root work. This is the denominator of every
/// attribution percentage.
#[must_use]
pub fn span_grand_total(doc: &RunDoc) -> u64 {
    doc.spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.total)
        .sum::<u64>()
        + doc
            .span_elisions
            .iter()
            .filter(|e| e.parent.is_none())
            .map(|e| e.work)
            .sum::<u64>()
}

#[allow(clippy::cast_precision_loss)]
fn percent(part: u64, grand: u64) -> f64 {
    100.0 * part as f64 / grand.max(1) as f64
}

/// Renders the attribution report of every run document: the top-`top`
/// self-work spans, the critical path (the heaviest-total descent from
/// the heaviest root), and the per-path work-share table aggregating
/// self work over every span instance with the same label path. All
/// figures are golden work units; percentages are shares of
/// [`span_grand_total`].
#[must_use]
pub fn attribution(docs: &[RunDoc], top: usize) -> String {
    let mut out = String::new();
    for doc in docs {
        let name = if doc.experiment.is_empty() {
            "(headerless fragment)"
        } else {
            &doc.experiment
        };
        let _ = writeln!(out, "== attribution: {name} ==");
        if doc.spans.is_empty() {
            let _ = writeln!(out, "  no spans recorded");
            continue;
        }
        let paths = span_paths(doc);
        let grand = span_grand_total(doc);
        let _ = writeln!(
            out,
            "  {} spans, {} elisions, {grand} work units attributed",
            doc.spans.len(),
            doc.span_elisions.len()
        );

        // Top self-work span instances.
        let mut by_self: Vec<usize> = (0..doc.spans.len()).collect();
        by_self.sort_by(|&i, &j| {
            doc.spans[j]
                .self_work
                .cmp(&doc.spans[i].self_work)
                .then_with(|| paths[i].cmp(&paths[j]))
        });
        let _ = writeln!(out, "  top self-work spans:");
        for &i in by_self.iter().take(top) {
            let s = &doc.spans[i];
            let _ = writeln!(
                out,
                "    {:>10}  {:>6.2}%  {}",
                s.self_work,
                percent(s.self_work, grand),
                paths[i]
            );
        }

        // Critical path: from the heaviest root, always descend into
        // the heaviest child (ties break toward export order).
        let mut children: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in doc.spans.iter().enumerate() {
            if let Some(parent) = &s.parent {
                children.entry(parent.as_str()).or_default().push(i);
            }
        }
        let heaviest = |candidates: &[usize]| -> Option<usize> {
            candidates
                .iter()
                .copied()
                .max_by(|&i, &j| doc.spans[i].total.cmp(&doc.spans[j].total).then(j.cmp(&i)))
        };
        let roots: Vec<usize> = (0..doc.spans.len())
            .filter(|&i| doc.spans[i].parent.is_none())
            .collect();
        let _ = writeln!(out, "  critical path (heaviest descent):");
        let mut cursor = heaviest(&roots);
        while let Some(i) = cursor {
            let s = &doc.spans[i];
            let _ = writeln!(
                out,
                "    {:>10} total / {:>10} self  {}{}",
                s.total,
                s.self_work,
                "  ".repeat(usize::try_from(s.depth).unwrap_or(0)),
                s.label
            );
            cursor = children.get(s.id.as_str()).and_then(|kids| heaviest(kids));
        }

        // Work share by label path: self work aggregated over every
        // instance of the same path (elided children under a
        // `<path>/<label> (elided)` key). The shares partition the
        // grand total exactly.
        let mut shares: BTreeMap<String, u64> = BTreeMap::new();
        for (i, s) in doc.spans.iter().enumerate() {
            *shares.entry(paths[i].clone()).or_insert(0) += s.self_work;
        }
        let id_paths: BTreeMap<&str, &str> = doc
            .spans
            .iter()
            .zip(&paths)
            .map(|(s, p)| (s.id.as_str(), p.as_str()))
            .collect();
        for e in &doc.span_elisions {
            let key = match &e.parent {
                Some(p) => format!(
                    "{}/{} (elided)",
                    id_paths.get(p.as_str()).copied().unwrap_or("?"),
                    e.label
                ),
                None => format!("{} (elided)", e.label),
            };
            *shares.entry(key).or_insert(0) += e.work;
        }
        let mut ranked: Vec<(&String, &u64)> = shares.iter().collect();
        ranked.sort_by(|(ka, va), (kb, vb)| vb.cmp(va).then_with(|| ka.cmp(kb)));
        let _ = writeln!(out, "  work share by path:");
        for (path, &work) in ranked {
            let _ = writeln!(
                out,
                "    {:>6.2}%  {:>10}  {path}",
                percent(work, grand),
                work
            );
        }
    }
    out
}

/// Diffs two runs' span trees. Spans match by stable id; `self`/`total`
/// and the span window compare within the tolerance band of the span's
/// label path, structure (label, depth, parent) compares exactly.
/// Elisions match by `(parent id, label)` with `count` exact and `work`
/// banded.
#[must_use]
pub fn diff_spans(a: &RunDoc, b: &RunDoc, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let paths_a = span_paths(a);
    let paths_b = span_paths(b);
    let index = |doc: &RunDoc| -> BTreeMap<String, usize> {
        doc.spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id.clone(), i))
            .collect()
    };
    let ia = index(a);
    let ib = index(b);
    let ids: std::collections::BTreeSet<&String> = ia.keys().chain(ib.keys()).collect();
    for id in ids {
        report.compared += 1;
        match (ia.get(id.as_str()), ib.get(id.as_str())) {
            (Some(&da), Some(&db)) => {
                let (sa, sb) = (&a.spans[da], &b.spans[db]);
                let name = paths_a[da].clone();
                let tol = opts.tolerance(&name);
                let detail = if sa.label != sb.label
                    || sa.depth != sb.depth
                    || sa.parent != sb.parent
                {
                    Some(format!(
                        "structure drifted: {}@{} under {:?} vs {}@{} under {:?}",
                        sa.label, sa.depth, sa.parent, sb.label, sb.depth, sb.parent
                    ))
                } else if !within_u64(sa.self_work, sb.self_work, tol)
                    || !within_u64(sa.total, sb.total, tol)
                {
                    Some(format!(
                        "work drifted: self {} vs {}, total {} vs {} (tol {tol})",
                        sa.self_work, sb.self_work, sa.total, sb.total
                    ))
                } else if !within_u64(sa.start, sb.start, tol) || !within_u64(sa.end, sb.end, tol) {
                    Some(format!(
                        "window drifted: [{}, {}] vs [{}, {}] (tol {tol})",
                        sa.start, sa.end, sb.start, sb.end
                    ))
                } else {
                    None
                };
                if let Some(detail) = detail {
                    report.findings.push(Finding {
                        kind: "span",
                        name,
                        detail,
                    });
                }
            }
            (Some(&da), None) => report.findings.push(Finding {
                kind: "span",
                name: paths_a[da].clone(),
                detail: format!("span {id} present in baseline, missing in candidate"),
            }),
            (None, Some(&db)) => report.findings.push(Finding {
                kind: "span",
                name: paths_b[db].clone(),
                detail: format!("span {id} missing in baseline, present in candidate"),
            }),
            (None, None) => unreachable!("id came from one of the maps"),
        }
    }
    let elisions = |doc: &RunDoc| -> BTreeMap<(String, String), (u64, u64)> {
        doc.span_elisions
            .iter()
            .map(|e| {
                (
                    (e.parent.clone().unwrap_or_default(), e.label.clone()),
                    (e.count, e.work),
                )
            })
            .collect()
    };
    let ea = elisions(a);
    let eb = elisions(b);
    let keys: std::collections::BTreeSet<&(String, String)> = ea.keys().chain(eb.keys()).collect();
    for key in keys {
        report.compared += 1;
        let name = format!("{}::{} (elided)", key.0, key.1);
        match (ea.get(key), eb.get(key)) {
            (Some(&(ca, wa)), Some(&(cb, wb))) => {
                let tol = opts.tolerance(&key.1);
                if ca != cb || !within_u64(wa, wb, tol) {
                    report.findings.push(Finding {
                        kind: "span_elided",
                        name,
                        detail: format!("count {ca} work {wa} vs count {cb} work {wb} (tol {tol})"),
                    });
                }
            }
            (present, _) => report.findings.push(Finding {
                kind: "span_elided",
                name,
                detail: if present.is_some() {
                    "present in baseline, missing in candidate".to_owned()
                } else {
                    "missing in baseline, present in candidate".to_owned()
                },
            }),
        }
    }
    report
}

/// [`diff_spans`] across two parsed files, matching run documents by
/// experiment name exactly like [`diff_docs`].
#[must_use]
pub fn diff_spans_docs(a: &[RunDoc], b: &[RunDoc], opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let index = |docs: &[RunDoc]| -> BTreeMap<String, usize> {
        docs.iter()
            .enumerate()
            .map(|(i, d)| (d.experiment.clone(), i))
            .collect()
    };
    let ia = index(a);
    let ib = index(b);
    let names: std::collections::BTreeSet<&String> = ia.keys().chain(ib.keys()).collect();
    for name in names {
        match (ia.get(name.as_str()), ib.get(name.as_str())) {
            (Some(&da), Some(&db)) => report.merge(diff_spans(&a[da], &b[db], opts)),
            (present, _) => {
                report.compared += 1;
                report.findings.push(Finding {
                    kind: "run",
                    name: if name.is_empty() {
                        "(headerless)".to_owned()
                    } else {
                        name.to_string()
                    },
                    detail: if present.is_some() {
                        "run present in baseline, missing in candidate".to_owned()
                    } else {
                        "run missing in baseline, present in candidate".to_owned()
                    },
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_manifest_lines() {
        let v = parse_json(
            "{\"type\":\"histogram\",\"name\":\"h\",\"bounds\":[1,2],\"counts\":[0,1,2]}",
        )
        .unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("histogram"));
        assert_eq!(v.get("bounds").and_then(u64_array), Some(vec![1, 2]));
        let nested = parse_json("[[0,45.5],[2,null]]").unwrap();
        let Json::Arr(pairs) = nested else {
            panic!("expected array")
        };
        assert_eq!(pairs[0].get("x"), None);
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("{} junk").is_err());
        let escaped = parse_json("\"a\\\"b\\u0041\"").unwrap();
        assert_eq!(escaped.as_str(), Some("a\"bA"));
    }

    fn demo_ndjson() -> String {
        [
            "{\"type\":\"run\",\"experiment\":\"e_demo\",\"seed\":7,\"threads\":2,\"model_version\":\"0.1.0\"}",
            "{\"type\":\"counter\",\"name\":\"solver.calls\",\"value\":3}",
            "{\"type\":\"counter\",\"name\":\"profile.solve.iters\",\"value\":12}",
            "{\"type\":\"histogram\",\"name\":\"solver.rung\",\"bounds\":[0,1],\"counts\":[3,0,0]}",
            "{\"type\":\"fhistogram\",\"name\":\"solver.residual\",\"edges\":[0.000001,0.001],\"counts\":[3,0,0]}",
            "{\"type\":\"timing\",\"name\":\"solver.total\",\"count\":3,\"total_nanos\":999}",
            "{\"type\":\"trace\",\"name\":\"t_chip\",\"kind\":\"temperature\",\"stride\":1,\"pushed\":2,\"samples\":[[0,45.5],[2,45.75]]}",
            "{\"type\":\"span\",\"id\":\"00000000000000aa\",\"parent\":null,\"label\":\"outer\",\"depth\":0,\"start\":0,\"end\":20,\"self\":8,\"total\":20}",
            "{\"type\":\"span\",\"id\":\"00000000000000bb\",\"parent\":\"00000000000000aa\",\"label\":\"inner\",\"depth\":1,\"start\":3,\"end\":13,\"self\":10,\"total\":10}",
            "{\"type\":\"span_elided\",\"parent\":\"00000000000000aa\",\"label\":\"step\",\"count\":3,\"work\":2}",
        ]
        .join("\n")
    }

    #[test]
    fn parse_ndjson_builds_run_docs_and_drops_non_golden() {
        let docs = parse_ndjson(&demo_ndjson()).unwrap();
        assert_eq!(docs.len(), 1);
        let doc = &docs[0];
        assert_eq!(doc.experiment, "e_demo");
        assert_eq!(doc.seed, Some(7));
        assert_eq!(doc.counters["solver.calls"], 3);
        assert_eq!(doc.histograms["solver.rung"].1, vec![3, 0, 0]);
        assert_eq!(doc.fhistograms["solver.residual"].0.len(), 2);
        assert_eq!(
            doc.traces["t_chip"].samples,
            vec![(0.0, 45.5), (2.0, 45.75)]
        );
        assert_eq!(doc.profile().total, 12);
    }

    #[test]
    fn headerless_fragments_parse_into_an_implicit_doc() {
        let docs =
            parse_ndjson("{\"type\":\"counter\",\"name\":\"profile.mc.trials\",\"value\":64}")
                .unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].experiment, "");
        assert_eq!(docs[0].counters["profile.mc.trials"], 64);
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        let b = parse_ndjson(&demo_ndjson()).unwrap();
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(!report.has_regressions(), "{}", report.render());
        assert_eq!(report.exit_code(), 0);
        assert!(report.compared > 0);
        assert!(report.render().starts_with("PASS"));
    }

    #[test]
    fn counter_histogram_and_trace_drifts_are_regressions() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        for (needle, replacement, kind) in [
            ("\"value\":3", "\"value\":4", "counter"),
            ("\"value\":12", "\"value\":13", "counter"),
            ("\"counts\":[3,0,0]}", "\"counts\":[2,1,0]}", "histogram"),
            ("[2,45.75]", "[2,46.75]", "trace"),
        ] {
            let b = parse_ndjson(&demo_ndjson().replacen(needle, replacement, 1)).unwrap();
            let report = diff_docs(&a, &b, &DiffOptions::default());
            assert!(report.has_regressions(), "{needle} should drift");
            assert_eq!(report.exit_code(), 1);
            assert!(
                report.findings.iter().any(|f| f.kind == kind),
                "expected a {kind} finding for {needle}: {}",
                report.render()
            );
        }
    }

    #[test]
    fn tolerance_bands_absorb_small_drift() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        let b = parse_ndjson(&demo_ndjson().replacen("[2,45.75]", "[2,45.76]", 1)).unwrap();
        let exact = diff_docs(&a, &b, &DiffOptions::default());
        assert!(exact.has_regressions());
        let banded = DiffOptions {
            tolerances: vec![("t_chip".to_owned(), 0.01)],
            ..DiffOptions::default()
        };
        let report = diff_docs(&a, &b, &banded);
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn profile_only_ignores_everything_but_profile_counters() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        let mutated = demo_ndjson()
            .replacen("\"value\":3", "\"value\":4", 1) // non-profile counter
            .replacen("[2,45.75]", "[2,99.0]", 1); // trace
        let b = parse_ndjson(&mutated).unwrap();
        let opts = DiffOptions {
            profile_only: true,
            ..DiffOptions::default()
        };
        assert!(!diff_docs(&a, &b, &opts).has_regressions());
        let c = parse_ndjson(&demo_ndjson().replacen("\"value\":12", "\"value\":11", 1)).unwrap();
        let report = diff_docs(&a, &c, &opts);
        assert!(report.has_regressions());
        assert_eq!(report.findings[0].kind, "profile");
    }

    #[test]
    fn missing_runs_and_channels_are_regressions() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        let report = diff_docs(&a, &[], &DiffOptions::default());
        assert!(report.has_regressions());
        assert_eq!(report.findings[0].kind, "run");

        let shorter = demo_ndjson()
            .lines()
            .filter(|l| !l.contains("solver.calls"))
            .collect::<Vec<_>>()
            .join("\n");
        let b = parse_ndjson(&shorter).unwrap();
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.name == "solver.calls" && f.detail.contains("missing in candidate")));
    }

    #[test]
    fn span_lines_parse_in_export_order() {
        let docs = parse_ndjson(&demo_ndjson()).unwrap();
        let doc = &docs[0];
        assert_eq!(doc.spans.len(), 2);
        assert_eq!(doc.spans[0].label, "outer");
        assert_eq!(doc.spans[0].parent, None);
        assert_eq!(doc.spans[1].parent.as_deref(), Some("00000000000000aa"));
        assert_eq!(doc.spans[1].self_work, 10);
        assert_eq!(doc.span_elisions.len(), 1);
        assert_eq!(doc.span_elisions[0].count, 3);
        assert_eq!(span_paths(doc), vec!["outer", "outer/inner"]);
        assert_eq!(span_grand_total(doc), 20);
    }

    #[test]
    fn attribution_renders_rollups_critical_path_and_shares() {
        let docs = parse_ndjson(&demo_ndjson()).unwrap();
        let text = attribution(&docs, 5);
        assert!(text.contains("== attribution: e_demo =="), "{text}");
        assert!(
            text.contains("2 spans, 1 elisions, 20 work units"),
            "{text}"
        );
        // the deepest hop of the critical path is the inner span
        assert!(text.contains("inner"), "{text}");
        // shares partition the grand total: 8 + 10 + 2 = 20
        assert!(text.contains("50.00%          10  outer/inner"), "{text}");
        assert!(text.contains("40.00%           8  outer"), "{text}");
        assert!(
            text.contains("10.00%           2  outer/step (elided)"),
            "{text}"
        );
        // a spanless doc renders a placeholder instead of dividing by 0
        let empty = vec![RunDoc::default()];
        assert!(attribution(&empty, 5).contains("no spans recorded"));
    }

    #[test]
    fn span_diff_catches_work_structure_and_elision_drift() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        for (needle, replacement) in [
            ("\"self\":10,\"total\":10}", "\"self\":11,\"total\":11}"),
            (
                "\"label\":\"inner\",\"depth\":1",
                "\"label\":\"inner\",\"depth\":2",
            ),
            ("\"count\":3,\"work\":2}", "\"count\":4,\"work\":2}"),
        ] {
            let b = parse_ndjson(&demo_ndjson().replacen(needle, replacement, 1)).unwrap();
            let report = diff_spans_docs(&a, &b, &DiffOptions::default());
            assert!(report.has_regressions(), "{needle} should drift");
            assert_eq!(report.exit_code(), 1);
        }
        // a missing span is a regression on its own
        let shorter = demo_ndjson()
            .lines()
            .filter(|l| !l.contains("00000000000000bb"))
            .collect::<Vec<_>>()
            .join("\n");
        let b = parse_ndjson(&shorter).unwrap();
        let report = diff_spans_docs(&a, &b, &DiffOptions::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == "span" && f.detail.contains("missing in candidate")));
    }

    #[test]
    fn span_diff_tolerance_bands_absorb_small_work_drift() {
        let a = parse_ndjson(&demo_ndjson()).unwrap();
        let b = parse_ndjson(&demo_ndjson().replacen(
            "\"start\":3,\"end\":13,\"self\":10,\"total\":10}",
            "\"start\":3,\"end\":13,\"self\":11,\"total\":11}",
            1,
        ))
        .unwrap();
        assert!(diff_spans_docs(&a, &b, &DiffOptions::default()).has_regressions());
        let banded = DiffOptions {
            tolerances: vec![("outer/inner".to_owned(), 0.2)],
            ..DiffOptions::default()
        };
        let report = diff_spans_docs(&a, &b, &banded);
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn summary_top_ranks_profile_leaves() {
        let docs = parse_ndjson(&demo_ndjson()).unwrap();
        let text = summary_top(&docs, 3);
        assert!(text.contains("top profile leaves:"), "{text}");
        assert!(text.contains("profile.solve.iters = 12"), "{text}");
    }

    #[test]
    fn summary_renders_header_profile_and_traces() {
        let docs = parse_ndjson(&demo_ndjson()).unwrap();
        let text = summary(&docs);
        assert!(text.contains("== e_demo =="), "{text}");
        assert!(text.contains("seed=7 threads=2"), "{text}");
        assert!(text.contains("solver.calls = 3"), "{text}");
        assert!(text.contains("profile"), "{text}");
        assert!(text.contains("t_chip [temperature] kept 2/2"), "{text}");
    }
}
