//! Deterministic hierarchical span trees in golden work units.
//!
//! A [`SpanSink`] records *where in the call structure* solver effort
//! went, the way the flat `profile.*` counters record *how much*. Every
//! span is timestamped with the owning [`Registry`]'s
//! [work clock](crate::Registry::work_units) — the running sum of the
//! `profile.*` counters — so a span tree contains **no wall-clock
//! values anywhere**: enter/exit order, timestamps, self and total work
//! are all pure functions of the workload, bit-identical at every
//! `RCS_THREADS` setting. Span trees are therefore part of the golden
//! channel and CI byte-diffs their NDJSON export.
//!
//! # Recording model
//!
//! Spans are an explicit stack, not an RAII guard: `enter(label)` /
//! `exit()` pairs. The open stack is plain data ([`SpanState`]), which
//! is what lets `rcs-kernel`'s `SinkState` seal a *mid-span* checkpoint
//! and restore it into fresh sinks such that
//! `run(k); checkpoint; restore; run(n-k)` reproduces the straight
//! run's tree bitwise.
//!
//! Parallel stages give each item a shard sink ([`SpanSink::shard`])
//! whose closed tree is spliced under the live parent in **input
//! order** by [`SpanSink::absorb_at`], with shard-local timestamps
//! offset by the absorbing registry's work clock at the splice point —
//! exactly the timestamps serial inline execution would have produced.
//!
//! # Bounded fan-out
//!
//! A hot loop entering the same label thousands of times under one
//! parent would make exports unbounded. Per (parent, label) pair, only
//! the first [`SpanSink::fanout`] spans become tree nodes; later
//! same-label siblings are *elided*: their subtree is suppressed and
//! their count and total work fold into the parent's
//! [`elided`](SpanNode::elided) summary, so totals stay exact while
//! files stay bounded.
//!
//! # Stable ids
//!
//! Span ids are assigned at render time as
//! `fnv1a64(parent_id, label, ordinal)` where `ordinal` counts earlier
//! same-label siblings. Ids are stable across runs, thread counts and
//! checkpoint splits — `obs_report attribution diff` matches spans by
//! id.
//!
//! # Examples
//!
//! ```
//! use rcs_obs::{span::SpanSink, Registry};
//!
//! let obs = Registry::new();
//! let spans = SpanSink::new();
//! spans.enter("solve", &obs);
//! obs.work("solver.iterations", 40);
//! spans.enter("rung", &obs);
//! obs.work("solver.iterations", 2);
//! spans.exit(&obs);
//! spans.exit(&obs);
//!
//! let tree = spans.snapshot();
//! let text = rcs_obs::span::render_ndjson(&tree);
//! assert!(text.contains("\"label\":\"solve\""));
//! assert!(text.contains("\"total\":42"));
//! ```

use std::sync::Mutex;

use crate::manifest::escape_json;
use crate::Registry;

/// Environment variable naming the span export file. A `.json` suffix
/// selects Chrome trace-event JSON (loadable in `chrome://tracing` /
/// Perfetto); anything else gets NDJSON `span` lines.
pub const SPANS_ENV: &str = "RCS_OBS_SPANS";

/// Default per-(parent, label) fan-out cap before same-label siblings
/// are elided into a summary entry.
pub const DEFAULT_FANOUT: usize = 16;

/// One elided-sibling summary: same-label spans beyond the fan-out cap
/// fold into `(label, count, work)` on their parent.
pub type Elision = (String, u64, u64);

/// One recorded span node (plain data, cheap to clone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Caller-supplied label (the id derives from it; keep it stable).
    pub label: String,
    /// Work clock at enter.
    pub start: u64,
    /// Work clock at exit; `None` while the span is still open.
    pub end: Option<u64>,
    /// Child node indices into [`SpanState::nodes`], in enter order.
    pub children: Vec<usize>,
    /// Elided same-label child summaries, in first-elision order.
    pub elided: Vec<Elision>,
}

impl SpanNode {
    /// Total work covered by this span (`end - start`); an open span
    /// reports the work accumulated so far as zero-width.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.end.unwrap_or(self.start).saturating_sub(self.start)
    }
}

/// One frame of the open-span stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// An ordinary open span: index into [`SpanState::nodes`].
    Node(usize),
    /// An open span past the fan-out cap: no node was created; on exit
    /// its label/work fold into the parent's elision summary.
    Elided {
        /// The label the capped span was entered with.
        label: String,
        /// Work clock at enter.
        start: u64,
    },
    /// A span nested under an elided (or suppressed) ancestor: fully
    /// invisible, tracked only so enter/exit stays balanced.
    Suppressed,
}

/// The full recorded state of a [`SpanSink`]: closed tree, elision
/// summaries and the open stack. Plain data — `rcs-kernel` serializes
/// it field by field for checkpoints, and [`render_ndjson`] /
/// [`render_chrome`] consume it for export.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanState {
    /// Arena of nodes; tree edges are index-based.
    pub nodes: Vec<SpanNode>,
    /// Root node indices in enter order.
    pub roots: Vec<usize>,
    /// Elided root-level summaries.
    pub root_elided: Vec<Elision>,
    /// Open frames, outermost first.
    pub stack: Vec<Frame>,
}

impl SpanState {
    /// `true` when nothing was recorded and nothing is open.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.root_elided.is_empty() && self.stack.is_empty()
    }
}

/// A deterministic hierarchical span recorder.
///
/// Like [`Registry`] and the trace recorder, a disabled sink
/// ([`SpanSink::disabled`]) pays one branch per call and never touches
/// the heap — the `noalloc` test pins that down.
#[derive(Debug)]
pub struct SpanSink {
    enabled: bool,
    fanout: usize,
    inner: Mutex<SpanState>,
}

/// The shared disabled sink behind [`SpanSink::disabled`].
static DISABLED: SpanSink = SpanSink {
    enabled: false,
    fanout: DEFAULT_FANOUT,
    inner: Mutex::new(SpanState {
        nodes: Vec::new(),
        roots: Vec::new(),
        root_elided: Vec::new(),
        stack: Vec::new(),
    }),
};

impl Default for SpanSink {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanSink {
    /// Creates an empty, enabled sink with the default fan-out cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// [`SpanSink::new`] with an explicit per-(parent, label) fan-out
    /// cap.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    #[must_use]
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout > 0, "span fanout cap must be positive");
        Self {
            enabled: true,
            fanout,
            inner: Mutex::new(SpanState::default()),
        }
    }

    /// The shared no-op sink: every call returns after one branch.
    #[must_use]
    pub fn disabled() -> &'static SpanSink {
        &DISABLED
    }

    /// Enabled iff [`SPANS_ENV`] names a non-empty export path.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(SPANS_ENV) {
            Ok(path) if !path.is_empty() => Self::new(),
            _ => Self {
                enabled: false,
                fanout: DEFAULT_FANOUT,
                inner: Mutex::new(SpanState::default()),
            },
        }
    }

    /// `true` unless this is (or mirrors) the disabled sink.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// This sink's per-(parent, label) fan-out cap.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// An empty sink sharing this sink's enablement and fan-out cap —
    /// the per-item recorder parallel stages hand each task.
    #[must_use]
    pub fn shard(&self) -> SpanSink {
        SpanSink {
            enabled: self.enabled,
            fanout: self.fanout,
            inner: Mutex::new(SpanState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanState> {
        self.inner.lock().expect("span sink poisoned")
    }

    /// Counts existing same-label children (nodes plus elided) of the
    /// frame currently on top of `state`'s stack (or of the root set).
    fn same_label_children(state: &SpanState, label: &str) -> usize {
        let (children, elided) = match state.stack.last() {
            Some(Frame::Node(idx)) => (&state.nodes[*idx].children, &state.nodes[*idx].elided),
            None => (&state.roots, &state.root_elided),
            // enter() never consults siblings under an elided or
            // suppressed frame — it pushes Suppressed before getting
            // here.
            Some(_) => return 0,
        };
        let named = children
            .iter()
            .filter(|&&c| state.nodes[c].label == label)
            .count();
        let folded: u64 = elided
            .iter()
            .filter(|(l, _, _)| l == label)
            .map(|(_, n, _)| *n)
            .sum();
        #[allow(clippy::cast_possible_truncation)]
        {
            named + folded as usize
        }
    }

    /// Opens a span labelled `label`, timestamped with `obs`'s work
    /// clock. Same-label siblings beyond the fan-out cap are elided
    /// (their subtree is suppressed and folds into the parent's elision
    /// summary on exit).
    pub fn enter(&self, label: &str, obs: &Registry) {
        if !self.enabled {
            return;
        }
        let now = obs.work_units();
        let mut state = self.lock();
        if let Some(Frame::Elided { .. } | Frame::Suppressed) = state.stack.last() {
            state.stack.push(Frame::Suppressed);
            return;
        }
        if Self::same_label_children(&state, label) >= self.fanout {
            state.stack.push(Frame::Elided {
                label: label.to_owned(),
                start: now,
            });
            return;
        }
        let idx = state.nodes.len();
        state.nodes.push(SpanNode {
            label: label.to_owned(),
            start: now,
            end: None,
            children: Vec::new(),
            elided: Vec::new(),
        });
        match state.stack.last() {
            Some(Frame::Node(parent)) => {
                let parent = *parent;
                state.nodes[parent].children.push(idx);
            }
            None => state.roots.push(idx),
            Some(_) => unreachable!("elided/suppressed parents handled above"),
        }
        state.stack.push(Frame::Node(idx));
    }

    /// Closes the innermost open span, timestamped with `obs`'s work
    /// clock. An exit with no open span is a no-op (the disabled-sink
    /// contract makes unbalanced call sites harmless either way).
    pub fn exit(&self, obs: &Registry) {
        if !self.enabled {
            return;
        }
        let now = obs.work_units();
        let mut state = self.lock();
        match state.stack.pop() {
            Some(Frame::Node(idx)) => state.nodes[idx].end = Some(now),
            Some(Frame::Elided { label, start }) => {
                let work = now.saturating_sub(start);
                let target = match state.stack.last() {
                    Some(Frame::Node(parent)) => {
                        let parent = *parent;
                        &mut state.nodes[parent].elided
                    }
                    _ => &mut state.root_elided,
                };
                match target.iter_mut().find(|(l, _, _)| *l == label) {
                    Some(entry) => {
                        entry.1 += 1;
                        entry.2 += work;
                    }
                    None => target.push((label, 1, work)),
                }
            }
            Some(Frame::Suppressed) | None => {}
        }
    }

    /// Captures the full recorded state — closed tree, elisions and the
    /// open stack.
    #[must_use]
    pub fn snapshot(&self) -> SpanState {
        self.lock().clone()
    }

    /// Replaces this sink's state wholesale — the checkpoint/restore
    /// path. Restoring into a disabled sink is a silent no-op
    /// (mirroring the trace recorder's contract).
    pub fn restore(&self, state: &SpanState) {
        if !self.enabled {
            return;
        }
        *self.lock() = state.clone();
    }

    /// Splices a shard's closed span tree under the currently open span
    /// (or the root set), offsetting every shard-local timestamp by
    /// `base` — the absorbing registry's work clock just before the
    /// shard's counter snapshot was absorbed. Called once per item in
    /// **input order**, this reproduces the timestamps and the fan-out
    /// elision decisions serial inline execution would have made.
    ///
    /// Shard roots still open in `state` are closed at their own start
    /// (zero-width); `par_map_spanned` always closes them first.
    pub fn absorb_at(&self, base: u64, state: &SpanState) {
        if !self.enabled || state.is_empty() {
            return;
        }
        let mut live = self.lock();
        let roots: Vec<usize> = state.roots.clone();
        for root in roots {
            Self::splice(&mut live, self.fanout, base, state, root);
        }
        for (label, count, work) in &state.root_elided {
            let target = match live.stack.last() {
                Some(Frame::Node(parent)) => {
                    let parent = *parent;
                    &mut live.nodes[parent].elided
                }
                _ => &mut live.root_elided,
            };
            match target.iter_mut().find(|(l, _, _)| l == label) {
                Some(entry) => {
                    entry.1 += count;
                    entry.2 += work;
                }
                None => target.push((label.clone(), *count, *work)),
            }
        }
    }

    /// Splices shard subtree `root` under the live parent, applying the
    /// fan-out cap against the live parent exactly as a serial `enter`
    /// of the same label would.
    fn splice(live: &mut SpanState, fanout: usize, base: u64, shard: &SpanState, root: usize) {
        let node = &shard.nodes[root];
        if Self::same_label_children(live, &node.label) >= fanout {
            // Serial execution would have elided this whole subtree.
            let work = node.total();
            let target = match live.stack.last() {
                Some(Frame::Node(parent)) => {
                    let parent = *parent;
                    &mut live.nodes[parent].elided
                }
                _ => &mut live.root_elided,
            };
            match target.iter_mut().find(|(l, _, _)| *l == node.label) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += work;
                }
                None => target.push((node.label.clone(), 1, work)),
            }
            return;
        }
        let idx = Self::copy_subtree(live, base, shard, root);
        match live.stack.last() {
            Some(Frame::Node(parent)) => {
                let parent = *parent;
                live.nodes[parent].children.push(idx);
            }
            _ => live.roots.push(idx),
        }
    }

    /// Deep-copies shard subtree `root` into `live.nodes` with
    /// timestamps offset by `base`; returns the new root index.
    fn copy_subtree(live: &mut SpanState, base: u64, shard: &SpanState, root: usize) -> usize {
        let node = &shard.nodes[root];
        let idx = live.nodes.len();
        live.nodes.push(SpanNode {
            label: node.label.clone(),
            start: base + node.start,
            end: Some(base + node.end.unwrap_or(node.start)),
            children: Vec::new(),
            elided: node
                .elided
                .iter()
                .map(|(l, n, w)| (l.clone(), *n, *w))
                .collect(),
        });
        let children: Vec<usize> = node.children.clone();
        for child in children {
            let c = Self::copy_subtree(live, base, shard, child);
            live.nodes[idx].children.push(c);
        }
        idx
    }
}

/// 64-bit FNV-1a over `bytes`, continuing from `seed` (the span-id
/// hash; implemented here so the crate stays dependency-free).
#[must_use]
fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// FNV-1a offset basis — the virtual root's id seed.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Computes the stable id of a span: `fnv1a64` over the parent's id,
/// the label bytes and the ordinal (count of earlier same-label
/// siblings). Roots use the FNV offset basis as the parent id.
#[must_use]
pub fn span_id(parent_id: u64, label: &str, ordinal: u64) -> u64 {
    let mut h = fnv1a64(parent_id ^ FNV_OFFSET, label.as_bytes());
    h = fnv1a64(h, &ordinal.to_le_bytes());
    h
}

/// One flattened, id-assigned span row (pre-order DFS output of
/// [`flatten`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSpan {
    /// Stable id (see [`span_id`]).
    pub id: u64,
    /// Parent's stable id; `None` for roots.
    pub parent: Option<u64>,
    /// Span label.
    pub label: String,
    /// Tree depth (roots are 0).
    pub depth: usize,
    /// Work clock at enter.
    pub start: u64,
    /// Work clock at exit (open spans close at their start).
    pub end: u64,
    /// `end - start`.
    pub total: u64,
    /// `total` minus child totals and elided work.
    pub self_work: u64,
    /// Elided same-label child summaries.
    pub elided: Vec<Elision>,
}

fn flatten_into(
    out: &mut Vec<FlatSpan>,
    state: &SpanState,
    idx: usize,
    parent: Option<u64>,
    parent_id: u64,
    ordinal: u64,
    depth: usize,
) {
    let node = &state.nodes[idx];
    let id = span_id(parent_id, &node.label, ordinal);
    let child_work: u64 = node
        .children
        .iter()
        .map(|&c| state.nodes[c].total())
        .sum::<u64>()
        + node.elided.iter().map(|(_, _, w)| *w).sum::<u64>();
    let total = node.total();
    out.push(FlatSpan {
        id,
        parent,
        label: node.label.clone(),
        depth,
        start: node.start,
        end: node.end.unwrap_or(node.start),
        total,
        self_work: total.saturating_sub(child_work),
        elided: node.elided.clone(),
    });
    let mut seen: Vec<(&str, u64)> = Vec::new();
    for &child in &node.children {
        let label = state.nodes[child].label.as_str();
        let ord = match seen.iter_mut().find(|(l, _)| *l == label) {
            Some(entry) => {
                entry.1 += 1;
                entry.1
            }
            None => {
                seen.push((label, 0));
                0
            }
        };
        flatten_into(out, state, child, Some(id), id, ord, depth + 1);
    }
}

/// Flattens a span state into id-assigned rows in pre-order DFS (the
/// export order). Open spans — a mid-run snapshot — close at their own
/// start so the flattening is total; export paths only run on balanced
/// trees.
#[must_use]
pub fn flatten(state: &SpanState) -> Vec<FlatSpan> {
    let mut out = Vec::with_capacity(state.nodes.len());
    let mut seen: Vec<(&str, u64)> = Vec::new();
    for &root in &state.roots {
        let label = state.nodes[root].label.as_str();
        let ord = match seen.iter_mut().find(|(l, _)| *l == label) {
            Some(entry) => {
                entry.1 += 1;
                entry.1
            }
            None => {
                seen.push((label, 0));
                0
            }
        };
        flatten_into(&mut out, state, root, None, FNV_OFFSET, ord, 0);
    }
    out
}

/// Renders a span state as NDJSON: one `{"type":"span",...}` line per
/// node in pre-order, followed by the node's
/// `{"type":"span_elided",...}` summaries. All values are golden work
/// units; `obs_report` ingests these lines and older parsers skip them.
#[must_use]
pub fn render_ndjson(state: &SpanState) -> String {
    let mut out = String::new();
    for span in flatten(state) {
        let parent = span
            .parent
            .map_or_else(|| "null".to_owned(), |p| format!("\"{p:016x}\""));
        out.push_str(&format!(
            "{{\"type\":\"span\",\"id\":\"{:016x}\",\"parent\":{},\"label\":\"{}\",\"depth\":{},\"start\":{},\"end\":{},\"self\":{},\"total\":{}}}\n",
            span.id,
            parent,
            escape_json(&span.label),
            span.depth,
            span.start,
            span.end,
            span.self_work,
            span.total,
        ));
        for (label, count, work) in &span.elided {
            out.push_str(&format!(
                "{{\"type\":\"span_elided\",\"parent\":\"{:016x}\",\"label\":\"{}\",\"count\":{},\"work\":{}}}\n",
                span.id,
                escape_json(label),
                count,
                work,
            ));
        }
    }
    for (label, count, work) in &state.root_elided {
        out.push_str(&format!(
            "{{\"type\":\"span_elided\",\"parent\":null,\"label\":\"{}\",\"count\":{},\"work\":{}}}\n",
            escape_json(label),
            count,
            work,
        ));
    }
    out
}

/// Renders a span state as one complete Chrome trace-event JSON
/// document (the `chrome://tracing` / Perfetto format). Every event is
/// a complete (`"ph":"X"`) event whose `ts`/`dur` are **golden work
/// units**, not microseconds — the flamegraph's time axis is
/// deterministic work, and no wall-clock value appears anywhere in the
/// file.
#[must_use]
pub fn render_chrome(state: &SpanState) -> String {
    let mut events = Vec::new();
    for span in flatten(state) {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"id\":\"{:016x}\",\"self\":{}}}}}",
            escape_json(&span.label),
            span.start,
            span.total,
            span.id,
            span.self_work,
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"work-units\"}}}}\n",
        events.join(",")
    )
}

/// Exports `state` to the file named by [`SPANS_ENV`] (appending; a
/// `.json` path gets one complete Chrome trace-event document per
/// emit, anything else NDJSON `span` lines). Without the variable this
/// is a no-op — span export never lands on stdout, which the
/// determinism jobs byte-diff.
pub fn emit(state: &SpanState) {
    let Ok(path) = std::env::var(SPANS_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let rendered = if path.ends_with(".json") {
        render_chrome(state)
    } else {
        render_ndjson(state)
    };
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| {
            use std::io::Write as _;
            f.write_all(rendered.as_bytes())
        });
    if let Err(e) = result {
        eprintln!("warning: failed to export spans to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(obs: &Registry, units: u64) {
        obs.work("test.units", units);
    }

    #[test]
    fn records_a_nested_tree_with_exact_self_and_total_work() {
        let obs = Registry::new();
        let spans = SpanSink::new();
        spans.enter("outer", &obs);
        work(&obs, 5);
        spans.enter("inner", &obs);
        work(&obs, 7);
        spans.exit(&obs);
        work(&obs, 3);
        spans.exit(&obs);

        let flat = flatten(&spans.snapshot());
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[0].label, "outer");
        assert_eq!(flat[0].total, 15);
        assert_eq!(flat[0].self_work, 8);
        assert_eq!(flat[0].depth, 0);
        assert_eq!(flat[1].label, "inner");
        assert_eq!(flat[1].total, 7);
        assert_eq!(flat[1].self_work, 7);
        assert_eq!(flat[1].parent, Some(flat[0].id));
    }

    #[test]
    fn work_clock_sums_profile_counters_only() {
        let obs = Registry::new();
        assert_eq!(obs.work_units(), 0);
        obs.inc("some.counter");
        assert_eq!(obs.work_units(), 0);
        obs.work("a.b", 11);
        obs.work("c", 4);
        assert_eq!(obs.work_units(), 15);
        assert_eq!(Registry::disabled().work_units(), 0);
    }

    #[test]
    fn absorbing_a_snapshot_advances_the_work_clock() {
        let shard = Registry::new();
        shard.work("x", 9);
        let obs = Registry::new();
        obs.work("y", 1);
        obs.absorb(&shard.snapshot());
        assert_eq!(obs.work_units(), 10);
    }

    #[test]
    fn fanout_cap_elides_excess_siblings_but_keeps_totals_exact() {
        let obs = Registry::new();
        let spans = SpanSink::with_fanout(2);
        spans.enter("parent", &obs);
        for _ in 0..5 {
            spans.enter("hot", &obs);
            work(&obs, 10);
            // nested spans under an elided frame are suppressed
            spans.enter("nested", &obs);
            spans.exit(&obs);
            spans.exit(&obs);
        }
        spans.exit(&obs);

        let state = spans.snapshot();
        let flat = flatten(&state);
        // parent + 2 kept "hot" + their 2 "nested" children
        assert_eq!(flat.len(), 5);
        let parent = &flat[0];
        assert_eq!(parent.total, 50);
        assert_eq!(parent.elided, vec![("hot".to_owned(), 3, 30)]);
        // kept + elided work covers everything: self work is zero
        assert_eq!(parent.self_work, 0);
    }

    #[test]
    fn ids_are_stable_and_distinguish_same_label_siblings() {
        let build = || {
            let obs = Registry::new();
            let spans = SpanSink::new();
            spans.enter("root", &obs);
            for _ in 0..2 {
                spans.enter("rung", &obs);
                work(&obs, 1);
                spans.exit(&obs);
            }
            spans.exit(&obs);
            flatten(&spans.snapshot())
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_ne!(a[1].id, a[2].id, "ordinal must separate same labels");
    }

    #[test]
    fn disabled_sink_ignores_everything() {
        let obs = Registry::new();
        let spans = SpanSink::disabled();
        spans.enter("x", &obs);
        spans.exit(&obs);
        assert!(spans.snapshot().is_empty());
        assert!(!spans.is_enabled());
        assert!(!spans.shard().is_enabled());
    }

    #[test]
    fn absorb_matches_serial_inline_execution() {
        // Serial: two items recorded inline under one open batch span.
        let serial_obs = Registry::new();
        let serial = SpanSink::new();
        serial.enter("batch", &serial_obs);
        for i in 0..2u64 {
            serial.enter(&format!("item.{i}"), &serial_obs);
            serial_obs.work("item", 3 + i);
            serial.enter("sub", &serial_obs);
            serial_obs.work("sub", 2);
            serial.exit(&serial_obs);
            serial.exit(&serial_obs);
        }
        serial.exit(&serial_obs);

        // Sharded: same work in per-item sinks, absorbed in order.
        let obs = Registry::new();
        let spans = SpanSink::new();
        spans.enter("batch", &obs);
        let mut shards = Vec::new();
        for i in 0..2u64 {
            let shard_obs = Registry::new();
            let shard = spans.shard();
            shard.enter(&format!("item.{i}"), &shard_obs);
            shard_obs.work("item", 3 + i);
            shard.enter("sub", &shard_obs);
            shard_obs.work("sub", 2);
            shard.exit(&shard_obs);
            shard.exit(&shard_obs);
            shards.push((shard_obs.snapshot(), shard.snapshot()));
        }
        for (snap, sspan) in shards {
            let base = obs.work_units();
            obs.absorb(&snap);
            spans.absorb_at(base, &sspan);
        }
        spans.exit(&obs);

        assert_eq!(
            render_ndjson(&serial.snapshot()),
            render_ndjson(&spans.snapshot())
        );
    }

    #[test]
    fn absorb_applies_the_fanout_cap_against_the_live_parent() {
        let obs = Registry::new();
        let spans = SpanSink::with_fanout(2);
        spans.enter("batch", &obs);
        for _ in 0..4 {
            let shard_obs = Registry::new();
            let shard = spans.shard();
            shard.enter("item", &shard_obs);
            shard_obs.work("w", 5);
            shard.exit(&shard_obs);
            let base = obs.work_units();
            obs.absorb(&shard_obs.snapshot());
            spans.absorb_at(base, &shard.snapshot());
        }
        spans.exit(&obs);
        let flat = flatten(&spans.snapshot());
        assert_eq!(flat.len(), 3, "2 kept under the cap: {flat:?}");
        assert_eq!(flat[0].elided, vec![("item".to_owned(), 2, 10)]);
        assert_eq!(flat[0].total, 20);
    }

    #[test]
    fn restore_reproduces_an_open_stack() {
        let obs = Registry::new();
        let spans = SpanSink::new();
        spans.enter("session", &obs);
        work(&obs, 4);
        let state = spans.snapshot();
        assert_eq!(state.stack.len(), 1);

        // Fresh sinks: counters re-absorbed, span state restored, the
        // still-open span then closes on the restored tree.
        let fresh_obs = Registry::new();
        fresh_obs.absorb(&obs.snapshot());
        let fresh = SpanSink::new();
        fresh.restore(&state);
        work(&fresh_obs, 6);
        fresh.exit(&fresh_obs);

        let flat = flatten(&fresh.snapshot());
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].total, 10);
    }

    #[test]
    fn ndjson_escapes_labels_and_chrome_export_is_valid_json() {
        let obs = Registry::new();
        let spans = SpanSink::new();
        spans.enter("weird \"label\",\nwith newline", &obs);
        work(&obs, 2);
        spans.exit(&obs);
        let state = spans.snapshot();

        let ndjson = render_ndjson(&state);
        assert!(ndjson.contains("weird \\\"label\\\",\\nwith newline"));
        for line in ndjson.lines() {
            crate::report::parse_json(line).expect("every NDJSON line parses");
        }

        let chrome = render_chrome(&state);
        let doc = crate::report::parse_json(chrome.trim()).expect("chrome doc parses");
        assert!(doc.get("traceEvents").is_some());
    }

    #[test]
    fn unbalanced_exit_is_a_noop() {
        let obs = Registry::new();
        let spans = SpanSink::new();
        spans.exit(&obs);
        assert!(spans.snapshot().is_empty());
    }
}
