//! Deterministic telemetry for the `rcs-sim` workspace.
//!
//! Every quantitative figure in this reproduction is a pure function of
//! a `u64` seed at any `RCS_THREADS` setting — and a solver can still
//! silently drift to a different damping rung or iteration count while
//! its *outputs* stay inside golden tolerances. This crate makes the
//! solvers' behaviour itself testable by splitting telemetry into two
//! channels with different contracts:
//!
//! - the **golden channel** — monotonic [`Registry::add`] counters and
//!   fixed-bucket [`Registry::record_histogram`] histograms of integer
//!   observations (iteration counts, damping-rung indices, rejection
//!   counts, residual decades). Everything here must be **bit-identical
//!   at every thread count**: counter merges are integer additions,
//!   which commute, and parallel stages collect per-task snapshots and
//!   [`Registry::absorb`] them in **input order**, so scheduling can
//!   never reorder an observable. [`Registry::snapshot`] captures only
//!   this channel, and the counter-asserting regression tests compare
//!   snapshots directly.
//! - the **non-golden channel** — wall-clock [`Span`] durations and
//!   scheduling-dependent [`Registry::note`] gauges (worker counts,
//!   per-worker task tallies). These appear in the run manifest for
//!   operators but are excluded from [`Snapshot`] equality and from the
//!   CI counter diff, because they legitimately vary run to run.
//!
//! A [`Span`] straddles both: its *count* is golden (how many times the
//! scope ran is deterministic), its *duration* is not.
//!
//! The [`manifest`] module renders a registry into the NDJSON run
//! manifest every experiment binary emits (seed, thread count, model
//! version, counter snapshot).
//!
//! # Examples
//!
//! ```
//! use rcs_obs::Registry;
//!
//! let obs = Registry::new();
//! obs.inc("solver.calls");
//! obs.record_histogram("solver.iterations", &[5, 10, 50], 7);
//! {
//!     let _span = obs.span("solver.total");
//! } // span count is golden, its wall-clock duration is not
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("solver.calls"), 1);
//! assert_eq!(snap.counter("solver.total"), 1);
//! assert_eq!(snap.histogram("solver.iterations").unwrap().counts, [0, 1, 0, 0]);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

pub mod manifest;
pub mod profile;
pub mod report;
pub mod span;
pub mod trace;

/// Aggregated state behind the registry mutex. `BTreeMap` keeps every
/// iteration (snapshots, manifests) in sorted name order, so rendered
/// telemetry never depends on insertion order.
#[derive(Debug, Default)]
struct Inner {
    /// Golden: monotonic counters.
    counters: BTreeMap<String, u64>,
    /// Golden: fixed-bucket histograms.
    histograms: BTreeMap<String, HistogramSnapshot>,
    /// Golden: fixed-edge float histograms.
    fhistograms: BTreeMap<String, FHistogramSnapshot>,
    /// Non-golden: wall-clock span durations.
    timings: BTreeMap<String, TimingStat>,
    /// Non-golden: scheduling-dependent gauges.
    notes: BTreeMap<String, u64>,
    /// Golden: running sum of every `profile.*` counter ever recorded
    /// or absorbed — the deterministic work clock behind
    /// [`Registry::work_units`]. Redundant with the counters themselves
    /// but O(1) to read, which the span sink does on every enter/exit.
    work_units: u64,
}

/// Accumulated wall-clock time of one span name (non-golden channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStat {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_nanos: u128,
}

/// A deterministic telemetry sink.
///
/// `Registry` is `Sync`: concurrent workers may record into one shared
/// registry directly (golden merges are commutative integer additions),
/// or stages may give each task its own registry and [`absorb`] the
/// snapshots in input order — the contract the parallel layer uses.
///
/// [`absorb`]: Registry::absorb
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared disabled sink behind [`Registry::disabled`].
static DISABLED: Registry = Registry {
    enabled: false,
    inner: Mutex::new(Inner {
        counters: BTreeMap::new(),
        histograms: BTreeMap::new(),
        fhistograms: BTreeMap::new(),
        timings: BTreeMap::new(),
        notes: BTreeMap::new(),
        work_units: 0,
    }),
};

impl Registry {
    /// Creates an empty, enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            enabled: true,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The shared no-op sink: every record call returns immediately, so
    /// un-observed entry points (`solve_robust`, `run`, …) pay one
    /// branch and nothing else.
    #[must_use]
    pub fn disabled() -> &'static Registry {
        &DISABLED
    }

    /// `true` unless this is the [`Registry::disabled`] sink.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("telemetry registry poisoned")
    }

    /// Adds `n` to the golden counter `name` (creating it at zero).
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += n;
        if name.starts_with(profile::PREFIX) {
            inner.work_units += n;
        }
    }

    /// The deterministic work clock: the sum of every `profile.*`
    /// counter recorded into (or absorbed by) this registry so far.
    /// Work units are pure functions of the workload — never wall clock
    /// — so two runs of the same workload read identical clocks at
    /// every `RCS_THREADS`. The disabled sink always reads 0.
    #[must_use]
    pub fn work_units(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.lock().work_units
    }

    /// Increments the golden counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Records one observation into the fixed-bucket histogram `name`.
    ///
    /// `bounds` are inclusive upper bucket bounds in ascending order; an
    /// observation lands in the first bucket whose bound it does not
    /// exceed, or in the implicit overflow bucket past the last bound
    /// (so the histogram has `bounds.len() + 1` counts). The bounds are
    /// part of the histogram's identity: they are fixed at first use and
    /// every later call must pass the same slice.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending, or if the
    /// histogram was first recorded with different bounds.
    pub fn record_histogram(&self, name: &str, bounds: &[u64], value: u64) {
        if !self.enabled {
            return;
        }
        assert!(!bounds.is_empty(), "histogram {name} needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly ascending"
        );
        let mut inner = self.lock();
        let hist = inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| HistogramSnapshot {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
            });
        assert_eq!(
            hist.bounds, bounds,
            "histogram {name} re-recorded with different bounds"
        );
        let bucket = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        hist.counts[bucket] += 1;
    }

    /// Records one float observation into the fixed-edge histogram
    /// `name`, hardened against degenerate inputs: every float —
    /// including zero, negative values, `±inf` and `NaN` — lands in a
    /// bucket and nothing panics on a value.
    ///
    /// `edges` are finite, strictly ascending bucket edges. The
    /// histogram has `edges.len() + 1` counts with **explicit
    /// underflow and overflow buckets**: `counts[0]` holds values below
    /// `edges[0]` (including `-inf`), `counts[i]` holds
    /// `edges[i-1] <= v < edges[i]`, and the last bucket holds values
    /// at or above the final edge (including `+inf`). `NaN` counts as
    /// divergence and lands in the overflow bucket. Like
    /// [`Registry::record_histogram`], the edges are fixed at first use
    /// (compared bitwise).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, non-finite, or not strictly
    /// ascending, or if the histogram was first recorded with different
    /// edges — edge sets are compile-time constants, never data.
    pub fn record_histogram_f64(&self, name: &str, edges: &[f64], value: f64) {
        if !self.enabled {
            return;
        }
        assert!(!edges.is_empty(), "float histogram {name} needs edges");
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "float histogram {name} edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "float histogram {name} edges must be strictly ascending"
        );
        let mut inner = self.lock();
        let hist = inner
            .fhistograms
            .entry(name.to_owned())
            .or_insert_with(|| FHistogramSnapshot {
                edges: edges.to_vec(),
                counts: vec![0; edges.len() + 1],
            });
        assert!(
            hist.edges.len() == edges.len()
                && hist
                    .edges
                    .iter()
                    .zip(edges)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "float histogram {name} re-recorded with different edges"
        );
        let bucket = if value.is_nan() {
            edges.len() // divergence: explicit overflow bucket
        } else {
            edges.partition_point(|&e| e <= value)
        };
        hist.counts[bucket] += 1;
    }

    /// Adds `n` to the **non-golden** gauge `name` — for values that
    /// legitimately depend on scheduling or the machine (worker counts,
    /// per-worker task tallies). Notes appear in the manifest but never
    /// in [`Registry::snapshot`].
    pub fn note(&self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        *inner.notes.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Opens a wall-clock span. Dropping the guard increments the golden
    /// counter `name` and adds the elapsed time to the non-golden timing
    /// channel under the same name.
    #[must_use]
    pub fn span<'a>(&'a self, name: &str) -> Span<'a> {
        Span {
            registry: self,
            // the disabled sink never reads the name: keep the guard
            // allocation-free (String::new() does not allocate)
            name: if self.enabled {
                name.to_owned()
            } else {
                String::new()
            },
            started: Instant::now(),
        }
    }

    /// Records a finished span (used by [`Span::drop`]; public so code
    /// that already measured a duration can feed it in).
    pub fn record_span(&self, name: &str, nanos: u128) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += 1;
        let t = inner.timings.entry(name.to_owned()).or_default();
        t.count += 1;
        t.total_nanos += nanos;
    }

    /// Captures the golden channel: all counters and histograms, in
    /// sorted name order. Two runs of the same seeded workload must
    /// produce `==` snapshots at any thread count.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            fhistograms: inner
                .fhistograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Captures the non-golden timing channel (span durations), in
    /// sorted name order.
    #[must_use]
    pub fn timings(&self) -> Vec<(String, TimingStat)> {
        self.lock()
            .timings
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Captures the non-golden note gauges, in sorted name order.
    #[must_use]
    pub fn notes(&self) -> Vec<(String, u64)> {
        self.lock()
            .notes
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Merges a golden snapshot into this registry: counters add,
    /// histogram bucket counts add (bounds must match).
    ///
    /// Parallel stages use this as the shard-merge step: each task
    /// records into its own registry, the pool returns the per-task
    /// snapshots **in input order**, and the caller absorbs them in that
    /// fixed order — so the merged registry is independent of which
    /// worker ran what when.
    ///
    /// # Panics
    ///
    /// Panics if a histogram name collides with different bounds.
    pub fn absorb(&self, snapshot: &Snapshot) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        for (name, v) in &snapshot.counters {
            *inner.counters.entry(name.clone()).or_insert(0) += v;
            if name.starts_with(profile::PREFIX) {
                inner.work_units += v;
            }
        }
        for (name, hist) in &snapshot.histograms {
            let target =
                inner
                    .histograms
                    .entry(name.clone())
                    .or_insert_with(|| HistogramSnapshot {
                        bounds: hist.bounds.clone(),
                        counts: vec![0; hist.counts.len()],
                    });
            assert_eq!(
                target.bounds, hist.bounds,
                "histogram {name} absorbed with different bounds"
            );
            for (t, s) in target.counts.iter_mut().zip(&hist.counts) {
                *t += s;
            }
        }
        for (name, hist) in &snapshot.fhistograms {
            let target =
                inner
                    .fhistograms
                    .entry(name.clone())
                    .or_insert_with(|| FHistogramSnapshot {
                        edges: hist.edges.clone(),
                        counts: vec![0; hist.counts.len()],
                    });
            assert!(
                target.edges.len() == hist.edges.len()
                    && target
                        .edges
                        .iter()
                        .zip(&hist.edges)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "float histogram {name} absorbed with different edges"
            );
            for (t, s) in target.counts.iter_mut().zip(&hist.counts) {
                *t += s;
            }
        }
    }
}

/// RAII guard returned by [`Registry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a Registry,
    name: String,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.registry
            .record_span(&self.name, self.started.elapsed().as_nanos());
    }
}

/// One histogram's state: inclusive upper bucket bounds plus counts
/// (one extra overflow bucket past the last bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total observations across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// One float histogram's state: finite, strictly ascending bucket
/// edges plus counts with explicit underflow (`counts[0]`) and
/// overflow (`counts[edges.len()]`) buckets — see
/// [`Registry::record_histogram_f64`].
///
/// Equality compares edges **bitwise** (`f64::to_bits`): edges are
/// compile-time constants, so bitwise equality is exact and keeps
/// [`Snapshot`] `Eq`.
#[derive(Debug, Clone)]
pub struct FHistogramSnapshot {
    /// Finite bucket edges, strictly ascending.
    pub edges: Vec<f64>,
    /// Per-bucket counts; `counts.len() == edges.len() + 1`.
    pub counts: Vec<u64>,
}

impl PartialEq for FHistogramSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
            && self.edges.len() == other.edges.len()
            && self
                .edges
                .iter()
                .zip(&other.edges)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl Eq for FHistogramSnapshot {}

impl FHistogramSnapshot {
    /// Total observations across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The explicit underflow bucket (`value < edges[0]`, incl. `-inf`).
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.counts[0]
    }

    /// The explicit overflow bucket (`value >= last edge`, incl. `+inf`
    /// and `NaN`).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts never empty")
    }
}

/// A captured golden channel: the thing the regression tests compare
/// and the manifest serializes. Entries are in sorted name order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, float histogram)` pairs.
    pub fhistograms: Vec<(String, FHistogramSnapshot)>,
}

impl Snapshot {
    /// The value of counter `name`, zero if it was never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram `name`, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// The float histogram `name`, if any observation was recorded.
    #[must_use]
    pub fn fhistogram(&self, name: &str) -> Option<&FHistogramSnapshot> {
        self.fhistograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.fhistograms.is_empty()
    }
}

/// The decade of a solver residual as a histogram-ready integer:
/// `residual_decade(r)` is `floor(-log10(r))` clamped into `[0, 16]`
/// (so `1e-9 → 9`). An exactly-zero or negative residual means
/// "converged past every bucket" and maps to 16; an infinite or NaN
/// residual means divergence and maps to 0, the worst bucket.
/// Residuals are deterministic floats, so their decade is a
/// deterministic integer: the golden channel can summarize a residual
/// trajectory without ever storing a float.
#[must_use]
pub fn residual_decade(residual: f64) -> u64 {
    if residual.is_nan() || residual.is_infinite() {
        return 0;
    }
    if residual <= 0.0 {
        return 16;
    }
    // the epsilon absorbs log10 rounding at exact powers of ten
    // (-log10(1e-9) can land a hair below 9.0); it is the same constant
    // on every run, so the bucketing stays deterministic
    let decade = -residual.log10() + 1e-9;
    if decade < 0.0 {
        0
    } else {
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let d = decade.floor() as u64;
        d.min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let obs = Registry::new();
        obs.inc("z.last");
        obs.add("a.first", 3);
        obs.inc("a.first");
        let snap = obs.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_owned(), 4), ("z.last".to_owned(), 1)]
        );
        assert_eq!(snap.counter("a.first"), 4);
        assert_eq!(snap.counter("never"), 0);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds_with_overflow() {
        let obs = Registry::new();
        for v in [0, 5, 6, 50, 51, 1000] {
            obs.record_histogram("h", &[5, 50], v);
        }
        let snap = obs.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![5, 50]);
        assert_eq!(h.counts, vec![2, 2, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_bounds_are_fixed_at_first_use() {
        let obs = Registry::new();
        obs.record_histogram("h", &[5, 50], 1);
        obs.record_histogram("h", &[5, 51], 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let obs = Registry::disabled();
        obs.inc("c");
        obs.record_histogram("h", &[1], 0);
        obs.record_histogram_f64("fh", &[1.0], 0.5);
        obs.note("n", 1);
        obs.work("phase.step", 3);
        {
            let _span = obs.span("s");
        }
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_empty());
        assert!(obs.timings().is_empty());
        assert!(obs.notes().is_empty());
    }

    #[test]
    fn f64_histogram_has_explicit_underflow_and_overflow_buckets() {
        let obs = Registry::new();
        let edges = [1e-9, 1e-6, 1e-3];
        // underflow: below the first edge, incl. zero, negatives, -inf
        for v in [0.0, -5.0, 1e-12, f64::NEG_INFINITY] {
            obs.record_histogram_f64("resid", &edges, v);
        }
        // interior buckets: [1e-9, 1e-6) and [1e-6, 1e-3)
        obs.record_histogram_f64("resid", &edges, 1e-9);
        obs.record_histogram_f64("resid", &edges, 5e-7);
        obs.record_histogram_f64("resid", &edges, 1e-4);
        // overflow: at/above the last edge, incl. +inf and NaN
        for v in [1e-3, 7.0, f64::INFINITY, f64::NAN] {
            obs.record_histogram_f64("resid", &edges, v);
        }
        let snap = obs.snapshot();
        let h = snap.fhistogram("resid").expect("recorded");
        // 3 edges → 4 buckets: underflow, [1e-9,1e-6), [1e-6,1e-3), overflow
        assert_eq!(h.counts, vec![4, 2, 1, 4]);
        assert_eq!(h.underflow(), 4);
        assert_eq!(h.overflow(), 4);
        assert_eq!(h.total(), 11);
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn f64_histogram_edges_are_fixed_at_first_use() {
        let obs = Registry::new();
        obs.record_histogram_f64("fh", &[1.0, 2.0], 0.5);
        obs.record_histogram_f64("fh", &[1.0, 3.0], 0.5);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn f64_histogram_rejects_non_finite_edges() {
        let obs = Registry::new();
        obs.record_histogram_f64("fh", &[1.0, f64::INFINITY], 0.5);
    }

    #[test]
    fn f64_histograms_absorb_additively() {
        let edges = [0.5];
        let shard_a = Registry::new();
        shard_a.record_histogram_f64("fh", &edges, 0.1);
        let shard_b = Registry::new();
        shard_b.record_histogram_f64("fh", &edges, 0.9);
        let total = Registry::new();
        total.absorb(&shard_a.snapshot());
        total.absorb(&shard_b.snapshot());
        let snap = total.snapshot();
        assert_eq!(snap.fhistogram("fh").unwrap().counts, vec![1, 1]);
        assert!(!snap.is_empty());
    }

    #[test]
    fn spans_count_golden_and_time_non_golden() {
        let obs = Registry::new();
        {
            let _a = obs.span("scope");
        }
        {
            let _b = obs.span("scope");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counter("scope"), 2);
        let timings = obs.timings();
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].0, "scope");
        assert_eq!(timings[0].1.count, 2);
        // durations live outside the snapshot: two registries with
        // different wall-clock histories still compare equal
        let other = Registry::new();
        other.record_span("scope", 999_999_999);
        other.record_span("scope", 1);
        assert_eq!(other.snapshot(), snap);
    }

    #[test]
    fn notes_stay_out_of_the_golden_snapshot() {
        let obs = Registry::new();
        obs.note("workers", 7);
        assert!(obs.snapshot().is_empty());
        assert_eq!(obs.notes(), vec![("workers".to_owned(), 7)]);
    }

    #[test]
    fn absorb_merges_counters_and_histograms_additively() {
        let shard_a = Registry::new();
        shard_a.add("c", 2);
        shard_a.record_histogram("h", &[10], 3);
        let shard_b = Registry::new();
        shard_b.add("c", 5);
        shard_b.record_histogram("h", &[10], 30);

        let total = Registry::new();
        total.absorb(&shard_a.snapshot());
        total.absorb(&shard_b.snapshot());
        let snap = total.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.histogram("h").unwrap().counts, vec![1, 1]);

        // merge order cannot matter: integer additions commute
        let reversed = Registry::new();
        reversed.absorb(&shard_b.snapshot());
        reversed.absorb(&shard_a.snapshot());
        assert_eq!(reversed.snapshot(), snap);
    }

    #[test]
    fn concurrent_recording_is_deterministic() {
        let obs = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        obs.inc("hits");
                        obs.record_histogram("vals", &[10], 5);
                    }
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counter("hits"), 4000);
        assert_eq!(snap.histogram("vals").unwrap().counts, vec![4000, 0]);
    }

    #[test]
    fn residual_decades() {
        assert_eq!(residual_decade(1e-9), 9);
        assert_eq!(residual_decade(0.5), 0);
        assert_eq!(residual_decade(2.0), 0);
        assert_eq!(residual_decade(1e-30), 16);
        assert_eq!(residual_decade(0.0), 16);
        assert_eq!(residual_decade(f64::NAN), 0);
        assert_eq!(residual_decade(f64::NEG_INFINITY), 0);
        assert_eq!(residual_decade(-1.0), 16);
        assert_eq!(residual_decade(f64::INFINITY), 0);
    }
}
