//! Wall-clock-free work profiles.
//!
//! A profile answers "where does solver effort go?" without ever
//! reading a clock: instrumented code records **work units** — solver
//! iterations × unknowns, Jacobian factorizations, ODE steps,
//! Monte-Carlo trials — under dot-separated phase paths, and this
//! module rolls the resulting counters into a tree with per-node
//! rollups. Work units are deterministic integers, so a profile is part
//! of the golden channel: it rides the ordinary counter namespace
//! (every profile counter is named `profile.<path>`), is merged across
//! parallel shards by the same input-order [`crate::Registry::absorb`]
//! path, and is therefore **bit-identical at every `RCS_THREADS`**.
//!
//! # Examples
//!
//! ```
//! use rcs_obs::{profile, Registry};
//!
//! let obs = Registry::new();
//! obs.work("hydraulics.factorizations", 12);
//! obs.work("hydraulics.iter_unknowns", 60);
//! obs.work("thermal.ode_steps", 3600);
//!
//! let tree = profile::tree(&obs.snapshot());
//! assert_eq!(tree.total, 3672);
//! assert_eq!(tree.child("hydraulics").unwrap().total, 72);
//! ```

use std::fmt::Write as _;

use crate::{Registry, Snapshot};

/// Counter-name prefix that marks a golden counter as profile work.
pub const PREFIX: &str = "profile.";

impl Registry {
    /// Adds `units` of deterministic work under the dot-separated
    /// profile path `path` (recorded as the golden counter
    /// `profile.<path>`). Work units must be pure functions of the
    /// workload — iteration counts, trial counts, step counts — never
    /// wall-clock readings.
    pub fn work(&self, path: &str, units: u64) {
        if !self.is_enabled() {
            return;
        }
        self.add(&format!("{PREFIX}{path}"), units);
    }
}

/// One node of a rolled-up profile tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Path segment (the root is named `profile`).
    pub name: String,
    /// Work recorded directly at this path.
    pub own: u64,
    /// `own` plus every descendant's `total`.
    pub total: u64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn leaf(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            own: 0,
            total: 0,
            children: Vec::new(),
        }
    }

    /// The direct child named `name`, if present.
    #[must_use]
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Walks a dot-separated path below this node.
    #[must_use]
    pub fn descend(&self, path: &str) -> Option<&ProfileNode> {
        let mut node = self;
        for seg in path.split('.') {
            node = node.child(seg)?;
        }
        Some(node)
    }

    fn insert(&mut self, path: &str, units: u64) {
        match path.split_once('.') {
            None => {
                let child = self.child_mut(path);
                child.own += units;
            }
            Some((head, rest)) => {
                self.child_mut(head).insert(rest, units);
            }
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut ProfileNode {
        // children stay sorted by name so the tree shape never depends
        // on counter insertion order
        match self
            .children
            .binary_search_by(|c| c.name.as_str().cmp(name))
        {
            Ok(i) => &mut self.children[i],
            Err(i) => {
                self.children.insert(i, ProfileNode::leaf(name));
                &mut self.children[i]
            }
        }
    }

    fn rollup(&mut self) -> u64 {
        let mut total = self.own;
        for c in &mut self.children {
            total += c.rollup();
        }
        self.total = total;
        total
    }
}

/// Builds the rolled-up profile tree from the `profile.*` counters of a
/// golden snapshot. Counters outside the [`PREFIX`] namespace are
/// ignored; an un-instrumented snapshot yields an empty root.
#[must_use]
pub fn tree(snapshot: &Snapshot) -> ProfileNode {
    from_counters(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.as_str(), *value)),
    )
}

/// [`tree`] over any `(name, value)` counter iterator — the form the
/// report tooling uses after parsing a manifest.
#[must_use]
pub fn from_counters<'a>(counters: impl IntoIterator<Item = (&'a str, u64)>) -> ProfileNode {
    let mut root = ProfileNode::leaf("profile");
    for (name, value) in counters {
        if let Some(path) = name.strip_prefix(PREFIX) {
            if !path.is_empty() {
                root.insert(path, value);
            }
        }
    }
    root.rollup();
    root
}

/// Renders the tree as indented text, one node per line
/// (`name  total` plus `own=` when a node carries both its own work and
/// descendants). Deterministic: children are sorted by name.
#[must_use]
pub fn render(root: &ProfileNode) -> String {
    let mut out = String::new();
    render_node(root, 0, &mut out);
    out
}

fn render_node(node: &ProfileNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    if node.own != 0 && !node.children.is_empty() {
        let _ = writeln!(
            out,
            "{indent}{}  {} (own={})",
            node.name, node.total, node.own
        );
    } else {
        let _ = writeln!(out, "{indent}{}  {}", node.name, node.total);
    }
    for c in &node.children {
        render_node(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_records_prefixed_golden_counters() {
        let obs = Registry::new();
        obs.work("mc.trials", 64);
        obs.work("mc.trials", 36);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("profile.mc.trials"), 100);
    }

    #[test]
    fn tree_rolls_up_totals_bottom_up() {
        let obs = Registry::new();
        obs.work("solve.iterations", 10);
        obs.work("solve.factorizations", 10);
        obs.work("solve", 5); // work on an interior node
        obs.work("ode_steps", 100);
        obs.inc("not.profile"); // ignored
        let root = tree(&obs.snapshot());
        assert_eq!(root.total, 125);
        let solve = root.child("solve").unwrap();
        assert_eq!(solve.own, 5);
        assert_eq!(solve.total, 25);
        assert_eq!(root.descend("solve.iterations").unwrap().total, 10);
        assert!(root.child("not").is_none());
    }

    #[test]
    fn tree_shape_is_insertion_order_independent() {
        let a = from_counters([("profile.b.y", 1), ("profile.a", 2), ("profile.b.x", 3)]);
        let b = from_counters([("profile.b.x", 3), ("profile.b.y", 1), ("profile.a", 2)]);
        assert_eq!(a, b);
        assert_eq!(a.children[0].name, "a");
        assert_eq!(a.children[1].name, "b");
    }

    #[test]
    fn disabled_registry_records_no_work() {
        let obs = Registry::disabled();
        obs.work("solve.iterations", 10);
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn render_is_indented_and_deterministic() {
        let root = from_counters([("profile.solve.iters", 10), ("profile.solve", 5)]);
        let text = render(&root);
        assert_eq!(text, "profile  15\n  solve  15 (own=5)\n    iters  10\n");
    }
}
