//! NDJSON run manifests.
//!
//! Every experiment binary emits one manifest per run: a `run` header
//! line (experiment name, seed, thread count, model version), one line
//! per golden counter and histogram, then the non-golden `timing` and
//! `note` lines. One JSON object per line, keys in a fixed order, so
//! the golden portion of two manifests can be compared with `grep` +
//! `diff` — which is exactly what the CI counter-diff job does between
//! its `RCS_THREADS=1` and `RCS_THREADS=4` legs.
//!
//! The manifest goes to the file named by the `RCS_OBS_MANIFEST`
//! environment variable when set, otherwise to **stderr** — never to
//! stdout, whose bytes are diffed by the experiment-determinism CI jobs
//! and must not carry the (legitimately thread-dependent) run header.

use std::fmt::Write as _;

use crate::{Registry, TimingStat};

/// Identity of one run, rendered into the manifest's `run` header line.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Experiment or binary name, e.g. `"exp_all"` or `"e17_fault_drills"`.
    pub experiment: String,
    /// The top-level RNG seed, if the run is seeded.
    pub seed: Option<u64>,
    /// Worker threads the run used (`RCS_THREADS` resolution).
    pub threads: usize,
    /// Model/schema version string, e.g. the crate version.
    pub model_version: String,
}

impl RunMeta {
    /// Builds a header for `experiment` at `threads` workers, with the
    /// workspace crate version as the model version.
    #[must_use]
    pub fn new(experiment: &str, seed: Option<u64>, threads: usize) -> Self {
        Self {
            experiment: experiment.to_owned(),
            seed,
            threads,
            model_version: env!("CARGO_PKG_VERSION").to_owned(),
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full NDJSON manifest: `run` header, golden `counter`,
/// `histogram` and `fhistogram` lines (sorted by name), then non-golden
/// `timing` and `note` lines. Ends with a trailing newline.
#[must_use]
pub fn render(meta: &RunMeta, registry: &Registry) -> String {
    let mut out = String::new();
    let seed = meta
        .seed
        .map_or_else(|| "null".to_owned(), |s| s.to_string());
    let _ = writeln!(
        out,
        "{{\"type\":\"run\",\"experiment\":\"{}\",\"seed\":{},\"threads\":{},\"model_version\":\"{}\"}}",
        escape_json(&meta.experiment),
        seed,
        meta.threads,
        escape_json(&meta.model_version),
    );
    let snapshot = registry.snapshot();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            value
        );
    }
    for (name, hist) in &snapshot.histograms {
        let bounds = join_u64(&hist.bounds);
        let counts = join_u64(&hist.counts);
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"bounds\":[{bounds}],\"counts\":[{counts}]}}",
            escape_json(name),
        );
    }
    for (name, hist) in &snapshot.fhistograms {
        // edges are asserted finite at record time, so plain Display is
        // valid JSON
        let edges = hist
            .edges
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let counts = join_u64(&hist.counts);
        let _ = writeln!(
            out,
            "{{\"type\":\"fhistogram\",\"name\":\"{}\",\"edges\":[{edges}],\"counts\":[{counts}]}}",
            escape_json(name),
        );
    }
    for (name, TimingStat { count, total_nanos }) in registry.timings() {
        let _ = writeln!(
            out,
            "{{\"type\":\"timing\",\"name\":\"{}\",\"count\":{count},\"total_nanos\":{total_nanos}}}",
            escape_json(&name),
        );
    }
    for (name, value) in registry.notes() {
        let _ = writeln!(
            out,
            "{{\"type\":\"note\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(&name),
        );
    }
    out
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Emits the manifest for a finished run: appends to the file named by
/// the `RCS_OBS_MANIFEST` environment variable when set (creating it),
/// otherwise writes to stderr. Stdout is deliberately never used — the
/// CI determinism jobs diff experiment stdout byte-for-byte, and the
/// run header legitimately differs across thread counts.
///
/// Both sinks receive the **fully rendered buffer in a single
/// `write_all`**: test binaries run concurrently, and one atomic write
/// per manifest keeps their stderr streams from interleaving partial
/// NDJSON lines.
pub fn emit(meta: &RunMeta, registry: &Registry) {
    use std::io::Write as _;
    let rendered = render(meta, registry);
    if let Ok(path) = std::env::var("RCS_OBS_MANIFEST") {
        if !path.is_empty() {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path);
            match file {
                Ok(mut f) => {
                    if f.write_all(rendered.as_bytes()).is_ok() {
                        return;
                    }
                }
                Err(err) => {
                    eprintln!("rcs-obs: cannot open manifest file {path}: {err}");
                }
            }
        }
    }
    // one write_all on the locked handle — never line-by-line macros,
    // which may split the buffer across multiple writes
    let _ = std::io::stderr().lock().write_all(rendered.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_emits_header_then_golden_then_non_golden() {
        let obs = Registry::new();
        obs.add("solver.calls", 2);
        obs.record_histogram("solver.rung", &[0, 1, 2], 0);
        obs.record_span("solver.total", 1234);
        obs.note("workers", 4);
        let meta = RunMeta {
            experiment: "exp_demo".to_owned(),
            seed: Some(42),
            threads: 4,
            model_version: "1.0.0".to_owned(),
        };
        let text = render(&meta, &obs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"run\",\"experiment\":\"exp_demo\",\"seed\":42,\"threads\":4,\"model_version\":\"1.0.0\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"counter\",\"name\":\"solver.calls\",\"value\":2}"
        );
        // record_span contributes a golden count under the span name
        assert_eq!(
            lines[2],
            "{\"type\":\"counter\",\"name\":\"solver.total\",\"value\":1}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"histogram\",\"name\":\"solver.rung\",\"bounds\":[0,1,2],\"counts\":[1,0,0,0]}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"timing\",\"name\":\"solver.total\",\"count\":1,\"total_nanos\":1234}"
        );
        assert_eq!(
            lines[5],
            "{\"type\":\"note\",\"name\":\"workers\",\"value\":4}"
        );
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn float_histograms_render_edges_as_json_numbers() {
        let obs = Registry::new();
        obs.record_histogram_f64("solver.residual", &[0.000001, 0.5], 0.25);
        let meta = RunMeta::new("exp_fh", None, 1);
        let text = render(&meta, &obs);
        assert!(
            text.contains(
                "{\"type\":\"fhistogram\",\"name\":\"solver.residual\",\
                 \"edges\":[0.000001,0.5],\"counts\":[0,1,0]}"
            ),
            "{text}"
        );
    }

    #[test]
    fn unseeded_runs_render_null_seed() {
        let obs = Registry::new();
        let meta = RunMeta {
            experiment: "exp_unseeded".to_owned(),
            seed: None,
            threads: 1,
            model_version: "0.1.0".to_owned(),
        };
        let text = render(&meta, &obs);
        assert!(text.starts_with(
            "{\"type\":\"run\",\"experiment\":\"exp_unseeded\",\"seed\":null,\"threads\":1,"
        ));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("r\rt\t"), "r\\rt\\t");
    }

    #[test]
    fn hostile_counter_and_note_names_stay_one_line_each() {
        let obs = Registry::new();
        obs.inc("cell \"a,b\"\n/steps");
        obs.note("workers\r\"x\"", 2);
        let meta = RunMeta::new("exp_hostile", None, 1);
        let text = render(&meta, &obs);
        // every embedded newline was escaped: one JSON doc per line
        for line in text.lines() {
            let parsed = crate::report::parse_json(line).expect("valid JSON line");
            assert!(parsed.get("type").is_some(), "{line}");
        }
        assert_eq!(text.trim_end().lines().count(), 3, "{text}");
        let counter_line = text
            .lines()
            .find(|l| l.contains("\"type\":\"counter\""))
            .expect("counter line");
        let parsed = crate::report::parse_json(counter_line).expect("valid JSON");
        assert_eq!(
            parsed.get("name").and_then(crate::report::Json::as_str),
            Some("cell \"a,b\"\n/steps")
        );
    }

    #[test]
    fn golden_lines_match_across_registries_with_different_timings() {
        let meta = RunMeta::new("exp_x", Some(7), 1);
        let a = Registry::new();
        a.inc("c");
        a.record_span("s", 10);
        let b = Registry::new();
        b.inc("c");
        b.record_span("s", 999_999);
        let golden = |text: &str| {
            text.lines()
                .filter(|l| {
                    l.starts_with("{\"type\":\"counter\"")
                        || l.starts_with("{\"type\":\"histogram\"")
                })
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(golden(&render(&meta, &a)), golden(&render(&meta, &b)));
    }
}
