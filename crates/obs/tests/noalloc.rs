//! The disabled sinks are free: every record call on
//! [`Registry::disabled`] and [`TraceRecorder::disabled`] must return
//! without touching the heap. A counting global allocator proves it —
//! not "fast enough", but **zero allocations**, so un-observed entry
//! points (`solve_robust`, `run`, …) pay one branch per call and
//! nothing else.
//!
//! Everything lives in one `#[test]` so no sibling test can allocate
//! concurrently and poison the counter delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rcs_obs::span::SpanSink;
use rcs_obs::trace::{ChannelKind, TraceRecorder};
use rcs_obs::Registry;

/// Forwards to the system allocator, counting every `alloc`/`realloc`.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_sinks_never_touch_the_heap() {
    let obs = Registry::disabled();
    let trace = TraceRecorder::disabled();
    let spans = SpanSink::disabled();
    assert!(!obs.is_enabled());
    assert!(!trace.is_enabled());
    assert!(!spans.is_enabled());

    // Channel handles from a disabled recorder are inert sentinels;
    // opening them is part of the hot path and must also be free.
    let chip = trace.channel("t_chip", ChannelKind::Temperature);

    let count = allocations_in(|| {
        for i in 0..1000 {
            obs.inc("solver.calls");
            obs.add("solver.iterations", i);
            obs.work("solver.sweeps", i);
            obs.record_histogram("solver.rung", &[1, 2, 4], i);
            obs.record_histogram_f64("solver.residual", &[1e-9, 1e-6, 1e-3], 1e-7);
            obs.note("workers", 4);
            obs.record_span("solver.total", 12_345);
            drop(obs.span("solver.scope"));

            let ch = trace.channel("t_chip", ChannelKind::Temperature);
            assert_eq!(ch, chip);
            trace.record(ch, f64::from(u32::try_from(i).unwrap()), 45.0);
            trace.record_named("t_bath", ChannelKind::Temperature, 0.0, 30.0);

            // Disabled span recording — enter, nested enter, unbalanced
            // exits, the work-clock read — must all be free too.
            spans.enter("session", obs);
            spans.enter("rung", obs);
            spans.exit(obs);
            spans.exit(obs);
            spans.exit(obs); // unbalanced: still a no-op
            assert_eq!(obs.work_units(), 0);
        }
    });
    assert_eq!(count, 0, "disabled telemetry made {count} heap allocations");

    // And nothing was secretly buffered: the golden snapshots are empty.
    assert!(obs.snapshot().is_empty());
    assert!(trace.snapshot().is_empty());
    assert!(spans.snapshot().is_empty());
}
