//! Property-based tests for boards, modules and racks.

use proptest::prelude::*;
use rcs_devices::{FpgaPart, OperatingPoint};
use rcs_platform::{presets, Ccb, ComputeModule, PowerSupply, Rack};
use rcs_units::{Celsius, Power};

fn any_part() -> impl Strategy<Value = FpgaPart> {
    (0usize..5).prop_map(|i| FpgaPart::catalog().swap_remove(i))
}

proptest! {
    /// A rack never overfills: pushing modules until rejection leaves the
    /// used height within the rack.
    #[test]
    fn rack_never_overfills(height in 10.0..60.0f64, module_height in 1.0..8.0f64) {
        let module = ComputeModule::new(
            "m",
            Ccb::new(FpgaPart::xcku095(), 8, true),
            12,
            PowerSupply::skat_dcdc(),
            3,
            module_height,
        );
        let mut rack = Rack::new(height);
        let mut count = 0;
        while rack.push(module.clone()).is_ok() {
            count += 1;
            prop_assert!(count < 1000, "runaway fill");
        }
        let used: f64 = rack.modules().iter().map(ComputeModule::height_units).sum();
        prop_assert!(used <= height);
        prop_assert!(rack.free_units() >= -1e-9);
        // one more never fits
        prop_assert!(rack.free_units() < module_height);
    }

    /// Module aggregates scale linearly with board count.
    #[test]
    fn module_scales_with_boards(part in any_part(), boards in 1usize..16) {
        let one = ComputeModule::new(
            "one", Ccb::new(part.clone(), 8, false), 1, PowerSupply::skat_dcdc(), 1, 3.0);
        let many = ComputeModule::new(
            "many", Ccb::new(part, 8, false), boards, PowerSupply::skat_dcdc(), 1, 3.0);
        prop_assert_eq!(many.compute_fpga_count(), boards * one.compute_fpga_count());
        let ratio = many.peak_performance().ops_per_second()
            / one.peak_performance().ops_per_second();
        prop_assert!((ratio - boards as f64).abs() < 1e-9 * boards as f64);
    }

    /// Module heat is monotone in utilization and junction temperature for
    /// every preset.
    #[test]
    fn module_heat_monotone(
        which in 0usize..4, u in 0.1..0.9f64, du in 0.01..0.1f64, t in 30.0..70.0f64
    ) {
        let module = presets::all().swap_remove(which);
        let tj = Celsius::new(t);
        let lo = module.total_heat(OperatingPoint::at_utilization(u), tj);
        let hi = module.total_heat(OperatingPoint::at_utilization(u + du), tj);
        prop_assert!(hi >= lo);
        let hotter = module.total_heat(
            OperatingPoint::at_utilization(u), Celsius::new(t + 10.0));
        prop_assert!(hotter >= lo);
    }

    /// PSU efficiency stays in a physical band over its whole load range
    /// and input always exceeds output.
    #[test]
    fn psu_is_physical(load_kw in 0.0..4.8f64) {
        let psu = PowerSupply::skat_dcdc();
        let out = Power::kilowatts(load_kw);
        let eff = psu.efficiency(out);
        prop_assert!(eff > 0.90 && eff < 1.0, "eff {eff}");
        if load_kw > 0.0 {
            prop_assert!(psu.input_power(out) > out);
            prop_assert!(psu.loss(out).watts() >= 0.0);
        }
    }

    /// Boards with bigger packages need wider boards; fitting is monotone
    /// in package count.
    #[test]
    fn board_width_monotone(part in any_part(), n1 in 1usize..8) {
        let small = Ccb::new(part.clone(), n1, false);
        let large = Ccb::new(part, n1 + 1, false);
        prop_assert!(large.required_width() > small.required_width());
        if !small.fits_standard_rack() {
            prop_assert!(!large.fits_standard_rack());
        }
    }
}
