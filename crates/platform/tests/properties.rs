//! Property-based tests for boards, modules and racks.

use rcs_devices::{FpgaPart, OperatingPoint};
use rcs_platform::{presets, Ccb, ComputeModule, PowerSupply, Rack};
use rcs_testkit::{check, Gen};
use rcs_units::{Celsius, Power};

fn any_part(g: &mut Gen) -> FpgaPart {
    let i = g.draw(0usize..5);
    FpgaPart::catalog().swap_remove(i)
}

/// A rack never overfills: pushing modules until rejection leaves the
/// used height within the rack.
#[test]
fn rack_never_overfills() {
    check("rack_never_overfills", |g| {
        let height = g.draw(10.0..60.0f64);
        let module_height = g.draw(1.0..8.0f64);
        let module = ComputeModule::new(
            "m",
            Ccb::new(FpgaPart::xcku095(), 8, true),
            12,
            PowerSupply::skat_dcdc(),
            3,
            module_height,
        );
        let mut rack = Rack::new(height);
        let mut count = 0;
        while rack.push(module.clone()).is_ok() {
            count += 1;
            assert!(count < 1000, "runaway fill");
        }
        let used: f64 = rack.modules().iter().map(ComputeModule::height_units).sum();
        assert!(used <= height);
        assert!(rack.free_units() >= -1e-9);
        // one more never fits
        assert!(rack.free_units() < module_height);
    });
}

/// Module aggregates scale linearly with board count.
#[test]
fn module_scales_with_boards() {
    check("module_scales_with_boards", |g| {
        let part = any_part(g);
        let boards = g.draw(1usize..16);
        let one = ComputeModule::new(
            "one",
            Ccb::new(part.clone(), 8, false),
            1,
            PowerSupply::skat_dcdc(),
            1,
            3.0,
        );
        let many = ComputeModule::new(
            "many",
            Ccb::new(part, 8, false),
            boards,
            PowerSupply::skat_dcdc(),
            1,
            3.0,
        );
        assert_eq!(many.compute_fpga_count(), boards * one.compute_fpga_count());
        let ratio =
            many.peak_performance().ops_per_second() / one.peak_performance().ops_per_second();
        assert!((ratio - boards as f64).abs() < 1e-9 * boards as f64);
    });
}

/// Module heat is monotone in utilization and junction temperature for
/// every preset.
#[test]
fn module_heat_monotone() {
    check("module_heat_monotone", |g| {
        let which = g.draw(0usize..4);
        let u = g.draw(0.1..0.9f64);
        let du = g.draw(0.01..0.1f64);
        let t = g.draw(30.0..70.0f64);
        let module = presets::all().swap_remove(which);
        let tj = Celsius::new(t);
        let lo = module.total_heat(OperatingPoint::at_utilization(u), tj);
        let hi = module.total_heat(OperatingPoint::at_utilization(u + du), tj);
        assert!(hi >= lo);
        let hotter = module.total_heat(OperatingPoint::at_utilization(u), Celsius::new(t + 10.0));
        assert!(hotter >= lo);
    });
}

/// PSU efficiency stays in a physical band over its whole load range
/// and input always exceeds output.
#[test]
fn psu_is_physical() {
    check("psu_is_physical", |g| {
        let load_kw = g.draw(0.0..4.8f64);
        let psu = PowerSupply::skat_dcdc();
        let out = Power::kilowatts(load_kw);
        let eff = psu.efficiency(out);
        assert!(eff > 0.90 && eff < 1.0, "eff {eff}");
        if load_kw > 0.0 {
            assert!(psu.input_power(out) > out);
            assert!(psu.loss(out).watts() >= 0.0);
        }
    });
}

/// Boards with bigger packages need wider boards; fitting is monotone
/// in package count.
#[test]
fn board_width_monotone() {
    check("board_width_monotone", |g| {
        let part = any_part(g);
        let n1 = g.draw(1usize..8);
        let small = Ccb::new(part.clone(), n1, false);
        let large = Ccb::new(part, n1 + 1, false);
        assert!(large.required_width() > small.required_width());
        if !small.fits_standard_rack() {
            assert!(!large.fits_standard_rack());
        }
    });
}
