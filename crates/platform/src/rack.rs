//! The computer rack.

use rcs_devices::{ComputeRate, OperatingPoint};
use rcs_units::{Celsius, Power};

use crate::module::ComputeModule;

/// A 19″ computer rack stacking computational modules one over another
/// (Fig. 1-b). "Their number is limited by the dimensions of the rack, by
/// technical capabilities of the computer room, and by the engineering
/// services" (§3).
///
/// # Examples
///
/// ```
/// use rcs_platform::{presets, Rack};
///
/// let rack = Rack::with_modules(47.0, presets::skat_plus(), 12).unwrap();
/// assert!(rack.peak_performance().as_petaflops() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rack {
    height_units: f64,
    /// Rack units consumed by manifolds, switchgear and service clearances.
    service_units: f64,
    modules: Vec<ComputeModule>,
}

impl Rack {
    /// Creates an empty rack of the given height in rack units.
    ///
    /// # Panics
    ///
    /// Panics if the height is not positive.
    #[must_use]
    pub fn new(height_units: f64) -> Self {
        assert!(height_units > 0.0, "rack height must be positive");
        Self {
            height_units,
            service_units: 4.0,
            modules: Vec::new(),
        }
    }

    /// Creates a rack populated with `count` copies of a module.
    ///
    /// Returns `None` if they do not fit.
    #[must_use]
    pub fn with_modules(height_units: f64, module: ComputeModule, count: usize) -> Option<Self> {
        let mut rack = Self::new(height_units);
        for _ in 0..count {
            rack.push(module.clone()).ok()?;
        }
        Some(rack)
    }

    /// Rack height in rack units.
    #[must_use]
    pub fn height_units(&self) -> f64 {
        self.height_units
    }

    /// Rack units still available for modules.
    #[must_use]
    pub fn free_units(&self) -> f64 {
        self.height_units
            - self.service_units
            - self
                .modules
                .iter()
                .map(ComputeModule::height_units)
                .sum::<f64>()
    }

    /// Mounts a module.
    ///
    /// # Errors
    ///
    /// Returns the module back if there is no room for it.
    // Handing the whole module back on failure is the point of the API
    // (the caller keeps ownership to try another rack), so the large Err
    // variant is intentional.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, module: ComputeModule) -> Result<(), ComputeModule> {
        if module.height_units() <= self.free_units() + 1e-9 {
            self.modules.push(module);
            Ok(())
        } else {
            Err(module)
        }
    }

    /// Mounted modules.
    #[must_use]
    pub fn modules(&self) -> &[ComputeModule] {
        &self.modules
    }

    /// Total compute FPGAs in the rack.
    #[must_use]
    pub fn compute_fpga_count(&self) -> usize {
        self.modules
            .iter()
            .map(ComputeModule::compute_fpga_count)
            .sum()
    }

    /// Total peak compute rate.
    #[must_use]
    pub fn peak_performance(&self) -> ComputeRate {
        self.modules
            .iter()
            .map(ComputeModule::peak_performance)
            .sum()
    }

    /// Total heat released by all modules.
    #[must_use]
    pub fn total_heat(&self, op: OperatingPoint, junction: Celsius) -> Power {
        self.modules
            .iter()
            .map(|m| m.total_heat(op, junction))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn twelve_3u_modules_fit_a_47u_rack() {
        // 12 x 3U = 36U + 4U services = 40U <= 47U.
        let rack = Rack::with_modules(47.0, presets::skat(), 12).unwrap();
        assert_eq!(rack.modules().len(), 12);
        assert!(rack.free_units() >= 7.0 - 1e-9);
    }

    #[test]
    fn overstuffed_rack_is_rejected() {
        assert!(Rack::with_modules(47.0, presets::skat(), 15).is_none());
        let mut rack = Rack::with_modules(47.0, presets::skat(), 14).unwrap();
        assert!(rack.push(presets::skat()).is_err());
    }

    #[test]
    fn rack_aggregates_modules() {
        let rack = Rack::with_modules(47.0, presets::skat(), 12).unwrap();
        assert_eq!(rack.compute_fpga_count(), 12 * 96);
        let per_module = presets::skat().peak_performance().ops_per_second();
        assert!(
            (rack.peak_performance().ops_per_second() - per_module * 12.0).abs()
                < per_module * 1e-9
        );
    }
}
