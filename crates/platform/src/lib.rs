//! Boards, power supplies, computational modules and racks.
//!
//! This crate models the physical structure of the paper's reconfigurable
//! computer systems:
//!
//! - [`Ccb`] — a computational circuit board carrying a field of eight
//!   FPGAs (plus, in pre-SKAT+ designs, a separate controller FPGA), with
//!   the 19″-rack width check that drives the §4 redesign for 45 mm
//!   UltraScale+ packages.
//! - [`PowerSupply`] — the immersion DC/DC 380 → 12 V unit, 4 kW per four
//!   boards, with a load-dependent efficiency curve.
//! - [`ComputeModule`] — a computational module: CCBs plus PSUs in a
//!   19″ × N U casing with computational and heat-exchange sections.
//! - [`Rack`] — a 47U rack of modules with aggregate power, performance
//!   and packing-density accounting.
//! - [`presets`] — the four machines the paper names: Rigel-2 (Virtex-6),
//!   Taygeta (Virtex-7), SKAT (Kintex UltraScale) and SKAT+
//!   (UltraScale+), calibrated to the reported module powers.
//!
//! # Examples
//!
//! ```
//! use rcs_platform::presets;
//!
//! let skat = presets::skat();
//! assert_eq!(skat.compute_fpga_count(), 96); // 12 CCBs x 8 FPGAs
//! let density_gain = skat.packing_density_fpga_per_m3()
//!     / presets::taygeta().packing_density_fpga_per_m3();
//! assert!(density_gain > 3.0); // "more than triple increasing"
//! ```

#![warn(missing_docs)]

mod board;
mod module;
pub mod presets;
mod psu;
mod rack;

pub use board::Ccb;
pub use module::ComputeModule;
pub use psu::PowerSupply;
pub use rack::Rack;

/// Usable printed-circuit-board width inside a standard 19″ rack, after
/// rails and guides (the constraint of §4).
pub const USABLE_BOARD_WIDTH_MM: f64 = 450.0;

/// Lateral clearance required around each BGA package for routing and
/// heat-sink overhang.
pub const PACKAGE_CLEARANCE_MM: f64 = 7.0;
