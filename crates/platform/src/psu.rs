//! The immersion power supply unit.

use rcs_units::Power;

/// An immersion-rated DC/DC converter: "an immersion power supply unit
/// providing DC/DC 380/12 V transducing with the power up to 4 kW for four
/// CCBs" (§3).
///
/// Conversion losses are dissipated into the bath and therefore count
/// toward the cooling load. Efficiency follows the usual converter bow:
/// best near half load, drooping toward both extremes.
///
/// # Examples
///
/// ```
/// use rcs_platform::PowerSupply;
/// use rcs_units::Power;
///
/// let psu = PowerSupply::skat_dcdc();
/// let eff = psu.efficiency(Power::kilowatts(2.0)); // half load
/// assert!(eff > 0.955);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSupply {
    rated: Power,
    peak_efficiency: f64,
}

impl PowerSupply {
    /// The SKAT unit: 4 kW, 380 → 12 V, 96 % peak efficiency.
    #[must_use]
    pub fn skat_dcdc() -> Self {
        Self {
            rated: Power::kilowatts(4.0),
            peak_efficiency: 0.96,
        }
    }

    /// Creates a unit with explicit rating and peak efficiency.
    ///
    /// # Panics
    ///
    /// Panics unless the rating is positive and the efficiency is in
    /// `(0, 1)`.
    #[must_use]
    pub fn new(rated: Power, peak_efficiency: f64) -> Self {
        assert!(rated.watts() > 0.0, "PSU rating must be positive");
        assert!(
            peak_efficiency > 0.0 && peak_efficiency < 1.0,
            "PSU efficiency must be in (0, 1)"
        );
        Self {
            rated,
            peak_efficiency,
        }
    }

    /// Rated output power.
    #[must_use]
    pub fn rated(&self) -> Power {
        self.rated
    }

    /// Conversion efficiency at the given output load: peak at 50 % load,
    /// with a quadratic droop of 4 points at no load and ~1.5 points at
    /// full load.
    #[must_use]
    pub fn efficiency(&self, output: Power) -> f64 {
        let x = (output.watts() / self.rated.watts()).clamp(0.0, 1.2);
        let droop = if x < 0.5 {
            0.04 * ((0.5 - x) / 0.5).powi(2)
        } else {
            0.015 * ((x - 0.5) / 0.5).powi(2)
        };
        self.peak_efficiency - droop
    }

    /// Input power drawn from the 380 V bus for the given output.
    #[must_use]
    pub fn input_power(&self, output: Power) -> Power {
        Power::from_watts(output.watts() / self.efficiency(output))
    }

    /// Heat dissipated into the bath at the given output.
    #[must_use]
    pub fn loss(&self, output: Power) -> Power {
        self.input_power(output) - output
    }

    /// `true` if the output is within rating.
    #[must_use]
    pub fn within_rating(&self, output: Power) -> bool {
        output <= self.rated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_at_half_load() {
        let psu = PowerSupply::skat_dcdc();
        let half = psu.efficiency(Power::kilowatts(2.0));
        assert!(half > psu.efficiency(Power::kilowatts(0.2)));
        assert!(half > psu.efficiency(Power::kilowatts(4.0)));
        assert!((half - 0.96).abs() < 1e-12);
    }

    #[test]
    fn losses_are_consistent() {
        let psu = PowerSupply::skat_dcdc();
        let out = Power::kilowatts(3.2); // 4 CCBs x 800 W
        let input = psu.input_power(out);
        assert!((input.watts() - out.watts() - psu.loss(out).watts()).abs() < 1e-9);
        // ~4.5 % loss at 80 % load
        assert!(psu.loss(out).watts() > 100.0 && psu.loss(out).watts() < 200.0);
    }

    #[test]
    fn rating_check() {
        let psu = PowerSupply::skat_dcdc();
        assert!(psu.within_rating(Power::kilowatts(3.2)));
        assert!(!psu.within_rating(Power::kilowatts(4.5)));
    }

    #[test]
    #[should_panic(expected = "efficiency must be in")]
    fn silly_efficiency_panics() {
        let _ = PowerSupply::new(Power::kilowatts(1.0), 1.2);
    }
}
