//! The computational module (CM): boards + power in a rack-mount casing.

use rcs_devices::{ComputeRate, OperatingPoint};
use rcs_units::{Celsius, Length, Power, Volume};

use crate::board::Ccb;
use crate::psu::PowerSupply;

/// A computational module: a 19″-wide casing of some rack-unit height
/// holding identical CCBs and their PSUs. For immersion designs the casing
/// splits into a computational section (the bath) and a heat-exchange
/// section (§3, Fig. 1-a).
///
/// # Examples
///
/// ```
/// use rcs_platform::presets;
/// let skat = presets::skat();
/// assert_eq!(skat.height_units(), 3.0);
/// assert_eq!(skat.ccb_count(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModule {
    name: String,
    ccb: Ccb,
    ccb_count: usize,
    psu: PowerSupply,
    psu_count: usize,
    height_units: f64,
    depth: Length,
    /// Module power the paper reports, used as an experiment anchor.
    reported_power: Option<Power>,
}

impl ComputeModule {
    /// Standard 19″ rack-mount width.
    pub const WIDTH: Length = Length::from_meters(0.483);

    /// Creates a module of `ccb_count` copies of `ccb` powered by
    /// `psu_count` copies of `psu`.
    ///
    /// # Panics
    ///
    /// Panics if any count or the height is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        ccb: Ccb,
        ccb_count: usize,
        psu: PowerSupply,
        psu_count: usize,
        height_units: f64,
    ) -> Self {
        assert!(ccb_count > 0, "a module needs at least one CCB");
        assert!(psu_count > 0, "a module needs at least one PSU");
        assert!(height_units > 0.0, "module height must be positive");
        Self {
            name: name.into(),
            ccb,
            ccb_count,
            psu,
            psu_count,
            height_units,
            depth: Length::from_meters(0.80),
            reported_power: None,
        }
    }

    /// Attaches the module power the paper reports (anchor for
    /// experiments).
    #[must_use]
    pub fn with_reported_power(mut self, power: Power) -> Self {
        self.reported_power = Some(power);
        self
    }

    /// Module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The board design.
    #[must_use]
    pub fn ccb(&self) -> &Ccb {
        &self.ccb
    }

    /// Number of boards.
    #[must_use]
    pub fn ccb_count(&self) -> usize {
        self.ccb_count
    }

    /// The PSU design.
    #[must_use]
    pub fn psu(&self) -> &PowerSupply {
        &self.psu
    }

    /// Number of PSUs.
    #[must_use]
    pub fn psu_count(&self) -> usize {
        self.psu_count
    }

    /// Casing height in rack units.
    #[must_use]
    pub fn height_units(&self) -> f64 {
        self.height_units
    }

    /// Casing depth.
    #[must_use]
    pub fn depth(&self) -> Length {
        self.depth
    }

    /// The paper-reported module power, if recorded.
    #[must_use]
    pub fn reported_power(&self) -> Option<Power> {
        self.reported_power
    }

    /// Compute FPGAs in the module (excluding controllers).
    #[must_use]
    pub fn compute_fpga_count(&self) -> usize {
        self.ccb.compute_fpga_count() * self.ccb_count
    }

    /// All FPGA packages in the module.
    #[must_use]
    pub fn package_count(&self) -> usize {
        self.ccb.package_count() * self.ccb_count
    }

    /// Peak compute rate of the module.
    #[must_use]
    pub fn peak_performance(&self) -> ComputeRate {
        self.ccb.peak_performance() * self.ccb_count as f64
    }

    /// Total FPGA heat only (the figure the paper reports for SKAT:
    /// 96 × 91 W = 8736 W).
    #[must_use]
    pub fn fpga_heat(&self, op: OperatingPoint, junction: Celsius) -> Power {
        Power::from_watts(
            self.ccb.fpga_power(op, junction).watts() * self.compute_fpga_count() as f64,
        )
    }

    /// Total heat released into the module: boards plus PSU conversion
    /// losses.
    #[must_use]
    pub fn total_heat(&self, op: OperatingPoint, junction: Celsius) -> Power {
        let boards =
            Power::from_watts(self.ccb.board_power(op, junction).watts() * self.ccb_count as f64);
        let per_psu_output = Power::from_watts(boards.watts() / self.psu_count as f64);
        let psu_losses =
            Power::from_watts(self.psu.loss(per_psu_output).watts() * self.psu_count as f64);
        boards + psu_losses
    }

    /// Casing volume.
    #[must_use]
    pub fn volume(&self) -> Volume {
        Length::rack_units(self.height_units) * (Self::WIDTH * self.depth)
    }

    /// Compute FPGAs per cubic meter — the packing-density metric behind
    /// §3's "more than triple increasing of the system packing density".
    #[must_use]
    pub fn packing_density_fpga_per_m3(&self) -> f64 {
        self.compute_fpga_count() as f64 / self.volume().cubic_meters()
    }

    /// Peak performance per cubic meter.
    #[must_use]
    pub fn performance_density_per_m3(&self) -> f64 {
        self.peak_performance().ops_per_second() / self.volume().cubic_meters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcs_devices::FpgaPart;

    fn skat_like() -> ComputeModule {
        ComputeModule::new(
            "test-skat",
            Ccb::new(FpgaPart::xcku095(), 8, true),
            12,
            PowerSupply::skat_dcdc(),
            3,
            3.0,
        )
    }

    #[test]
    fn counts_and_volume() {
        let m = skat_like();
        assert_eq!(m.compute_fpga_count(), 96);
        assert_eq!(m.package_count(), 108); // 12 controllers on top
        assert!((m.volume().as_liters() - 51.5).abs() < 1.0);
    }

    #[test]
    fn skat_fpga_heat_anchor() {
        let m = skat_like();
        let q = m.fpga_heat(OperatingPoint::operating_mode(), Celsius::new(55.0));
        assert!((q.watts() - 8736.0).abs() < 200.0, "Q = {q}");
    }

    #[test]
    fn total_heat_exceeds_fpga_heat() {
        let m = skat_like();
        let op = OperatingPoint::operating_mode();
        let t = Celsius::new(55.0);
        let total = m.total_heat(op, t);
        let fpga = m.fpga_heat(op, t);
        assert!(total > fpga);
        // overheads (controllers, board, PSU loss) are 5-20 %
        assert!(total.watts() < 1.25 * fpga.watts());
    }

    #[test]
    fn psu_rating_covers_the_boards() {
        // 3 x 4 kW PSUs for 12 x ~800 W boards (4 boards per PSU).
        let m = skat_like();
        let op = OperatingPoint::operating_mode();
        let boards = m.ccb().board_power(op, Celsius::new(55.0)).watts() * 12.0;
        let per_psu = boards / 3.0;
        assert!(m.psu().within_rating(Power::from_watts(per_psu)));
    }
}
