//! The four machines the paper names.
//!
//! | preset | family | boards × chips | height | paper anchor |
//! |---|---|---|---|---|
//! | Rigel-2 | Virtex-6 XC6VLX240T | 4 × 8 | 6U | 1255 W, +33.1 °C over 25 °C ambient |
//! | Taygeta | Virtex-7 XC7VX485T | 4 × 8 | 6U | 1661 W, +47.9 °C over 25 °C ambient |
//! | SKAT | Kintex US XCKU095 | 12 × 8 | 3U | 91 W/FPGA, 8736 W, ≤55 °C at ≤30 °C oil |
//! | SKAT+ | UltraScale+ VU9P-class | 12 × 8 | 3U | ×3 performance, no separate controller |
//!
//! Board counts for the air-cooled generations are not stated in the
//! paper; 4 boards × 8 chips (32 chips) is chosen so that the reported
//! module powers land at plausible per-chip figures (≈29 W Virtex-6,
//! ≈39 W Virtex-7) consistent with the measured overheats — see
//! `DESIGN.md` ("calibration anchors").

use rcs_devices::FpgaPart;
use rcs_units::Power;

use crate::board::Ccb;
use crate::module::ComputeModule;
use crate::psu::PowerSupply;

/// The Rigel-2 computational module (Virtex-6 generation, air cooled).
#[must_use]
pub fn rigel2() -> ComputeModule {
    ComputeModule::new(
        "Rigel-2",
        Ccb::new(FpgaPart::xc6vlx240t(), 8, true).with_board_overhead(Power::from_watts(55.0)),
        4,
        PowerSupply::new(Power::kilowatts(2.0), 0.93),
        2,
        6.0,
    )
    .with_reported_power(Power::from_watts(1255.0))
}

/// The Taygeta computational module (Virtex-7 generation, air cooled).
#[must_use]
pub fn taygeta() -> ComputeModule {
    ComputeModule::new(
        "Taygeta",
        Ccb::new(FpgaPart::xc7vx485t(), 8, true).with_board_overhead(Power::from_watts(70.0)),
        4,
        PowerSupply::new(Power::kilowatts(2.5), 0.94),
        2,
        6.0,
    )
    .with_reported_power(Power::from_watts(1661.0))
}

/// The SKAT computational module (§3): 12 CCBs of 8 Kintex UltraScale
/// FPGAs and three 4 kW immersion PSUs in a 3U immersion casing.
#[must_use]
pub fn skat() -> ComputeModule {
    ComputeModule::new(
        "SKAT",
        Ccb::new(FpgaPart::xcku095(), 8, true).with_board_overhead(Power::from_watts(40.0)),
        12,
        PowerSupply::skat_dcdc(),
        3,
        3.0,
    )
    .with_reported_power(Power::from_watts(8736.0))
}

/// The SKAT+ computational module (§4): UltraScale+ parts in 45 mm
/// packages, the separate CCB controller removed so the wider board still
/// fits a 19″ rack, immersed pumps.
#[must_use]
pub fn skat_plus() -> ComputeModule {
    ComputeModule::new(
        "SKAT+",
        Ccb::new(FpgaPart::vu9p_class(), 8, false).with_board_overhead(Power::from_watts(45.0)),
        12,
        PowerSupply::skat_dcdc(),
        3,
        3.0,
    )
}

/// All presets, oldest first.
#[must_use]
pub fn all() -> Vec<ComputeModule> {
    vec![rigel2(), taygeta(), skat(), skat_plus()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcs_devices::OperatingPoint;
    use rcs_units::Celsius;

    #[test]
    fn reported_powers_are_recorded() {
        assert_eq!(rigel2().reported_power().unwrap().watts(), 1255.0);
        assert_eq!(taygeta().reported_power().unwrap().watts(), 1661.0);
        assert_eq!(skat().reported_power().unwrap().watts(), 8736.0);
    }

    #[test]
    fn taygeta_model_power_matches_report() {
        // model total heat at the measured junction temperature should be
        // within ~10 % of the reported 1661 W
        let m = taygeta();
        let total = m.total_heat(OperatingPoint::operating_mode(), Celsius::new(72.9));
        let reported = m.reported_power().unwrap();
        let err = (total.watts() - reported.watts()).abs() / reported.watts();
        assert!(err < 0.10, "model {total} vs reported {reported}");
    }

    #[test]
    fn rigel2_model_power_matches_report() {
        let m = rigel2();
        let total = m.total_heat(OperatingPoint::operating_mode(), Celsius::new(58.1));
        let reported = m.reported_power().unwrap();
        let err = (total.watts() - reported.watts()).abs() / reported.watts();
        assert!(err < 0.10, "model {total} vs reported {reported}");
    }

    #[test]
    fn skat_fpga_heat_matches_report() {
        let m = skat();
        let q = m.fpga_heat(OperatingPoint::operating_mode(), Celsius::new(55.0));
        let err = (q.watts() - 8736.0).abs() / 8736.0;
        assert!(err < 0.03, "model {q} vs reported 8736 W");
    }

    #[test]
    fn performance_ratios_match_the_paper() {
        let skat_vs_taygeta = skat().peak_performance().ops_per_second()
            / taygeta().peak_performance().ops_per_second();
        assert!(
            (skat_vs_taygeta - 8.7).abs() < 0.4,
            "SKAT/Taygeta = {skat_vs_taygeta}"
        );

        let plus_vs_skat = skat_plus().peak_performance().ops_per_second()
            / skat().peak_performance().ops_per_second();
        assert!(
            (plus_vs_skat - 3.0).abs() < 0.2,
            "SKAT+/SKAT = {plus_vs_skat}"
        );
    }

    #[test]
    fn packing_density_triples() {
        let gain = skat().packing_density_fpga_per_m3() / taygeta().packing_density_fpga_per_m3();
        assert!(gain > 3.0, "density gain = {gain}");
    }

    #[test]
    fn skat_plus_boards_fit_only_without_controller() {
        assert!(skat_plus().ccb().fits_standard_rack());
        assert!(!skat_plus().ccb().has_separate_controller());
    }
}
