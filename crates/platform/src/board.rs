//! The computational circuit board (CCB).

use rcs_devices::{performance, ComputeRate, FpgaPart, OperatingPoint, PowerModel};
use rcs_units::{Celsius, Length, Power};

use crate::{PACKAGE_CLEARANCE_MM, USABLE_BOARD_WIDTH_MM};

/// A computational circuit board: a field of identical compute FPGAs,
/// optionally a separate controller FPGA, plus board-level overhead
/// (memory, regulators, transceivers).
///
/// "Each CCB must contain up to eight FPGAs, with a dissipating heat flow
/// of about 100 W from each FPGA" (§3). The §4 redesign removes the
/// separate controller FPGA: its functions shrink to "some percent" of one
/// compute FPGA and move into the field.
///
/// # Examples
///
/// The geometry constraint that forces the SKAT+ redesign:
///
/// ```
/// use rcs_devices::FpgaPart;
/// use rcs_platform::Ccb;
///
/// // 8 x 42.5 mm UltraScale + controller: fits a 19" rack.
/// let skat = Ccb::new(FpgaPart::xcku095(), 8, true);
/// assert!(skat.fits_standard_rack());
///
/// // 8 x 45 mm UltraScale+ + controller: does NOT fit...
/// let too_wide = Ccb::new(FpgaPart::vu9p_class(), 8, true);
/// assert!(!too_wide.fits_standard_rack());
///
/// // ...so SKAT+ drops the controller (§4).
/// let skat_plus = Ccb::new(FpgaPart::vu9p_class(), 8, false);
/// assert!(skat_plus.fits_standard_rack());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ccb {
    part: FpgaPart,
    fpga_count: usize,
    separate_controller: bool,
    board_overhead: Power,
}

impl Ccb {
    /// Fraction of one compute FPGA consumed by controller functions when
    /// the controller moves into the field (§4: "only some percent").
    pub const CONTROLLER_RESOURCE_FRACTION: f64 = 0.04;

    /// Creates a board of `fpga_count` compute FPGAs. When
    /// `separate_controller` is `true`, one extra FPGA of the same part
    /// serves as CCB controller (pre-SKAT+ designs).
    ///
    /// # Panics
    ///
    /// Panics if `fpga_count == 0`.
    #[must_use]
    pub fn new(part: FpgaPart, fpga_count: usize, separate_controller: bool) -> Self {
        assert!(fpga_count > 0, "a CCB needs at least one FPGA");
        Self {
            part,
            fpga_count,
            separate_controller,
            board_overhead: Power::from_watts(40.0),
        }
    }

    /// Overrides the non-FPGA board overhead (memory, regulators, clocks).
    #[must_use]
    pub fn with_board_overhead(mut self, overhead: Power) -> Self {
        self.board_overhead = overhead;
        self
    }

    /// The FPGA part populating the board.
    #[must_use]
    pub fn part(&self) -> &FpgaPart {
        &self.part
    }

    /// Number of compute FPGAs (excludes the controller).
    #[must_use]
    pub fn compute_fpga_count(&self) -> usize {
        self.fpga_count
    }

    /// Number of physical FPGA packages on the board.
    #[must_use]
    pub fn package_count(&self) -> usize {
        self.fpga_count + usize::from(self.separate_controller)
    }

    /// `true` if a separate controller FPGA is fitted.
    #[must_use]
    pub fn has_separate_controller(&self) -> bool {
        self.separate_controller
    }

    /// Board width required by the package row: every package plus its
    /// routing clearance.
    #[must_use]
    pub fn required_width(&self) -> Length {
        let pitch = self.part.package_side().as_millimeters() + PACKAGE_CLEARANCE_MM;
        Length::millimeters(pitch * self.package_count() as f64)
    }

    /// `true` if the board fits the usable width of a standard 19″ rack.
    #[must_use]
    pub fn fits_standard_rack(&self) -> bool {
        self.required_width().as_millimeters() <= USABLE_BOARD_WIDTH_MM
    }

    /// Peak compute rate of the board.
    ///
    /// Without a separate controller, controller functions consume
    /// [`Ccb::CONTROLLER_RESOURCE_FRACTION`] of one compute FPGA.
    #[must_use]
    pub fn peak_performance(&self) -> ComputeRate {
        let chips = self.fpga_count as f64;
        let effective = if self.separate_controller {
            chips
        } else {
            chips - Self::CONTROLLER_RESOURCE_FRACTION
        };
        performance::peak_ops(&self.part) * effective
    }

    /// Power of one compute FPGA at the given operating point and junction
    /// temperature.
    #[must_use]
    pub fn fpga_power(&self, op: OperatingPoint, junction: Celsius) -> Power {
        PowerModel::for_part(&self.part).power(op, junction)
    }

    /// Total board power: all packages (the controller runs lightly) plus
    /// board overhead.
    #[must_use]
    pub fn board_power(&self, op: OperatingPoint, junction: Celsius) -> Power {
        let model = PowerModel::for_part(&self.part);
        let compute = Power::from_watts(model.power(op, junction).watts() * self.fpga_count as f64);
        let controller = if self.separate_controller {
            model.power(
                OperatingPoint {
                    utilization: 0.05,
                    clock_fraction: 0.5,
                },
                junction,
            )
        } else {
            Power::ZERO
        };
        compute + controller + self.board_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_check_reproduces_the_redesign() {
        // §4 in one test: 42.5 mm + controller fits; 45 mm + controller
        // doesn't; 45 mm without controller does.
        assert!(Ccb::new(FpgaPart::xcku095(), 8, true).fits_standard_rack());
        assert!(!Ccb::new(FpgaPart::vu9p_class(), 8, true).fits_standard_rack());
        assert!(Ccb::new(FpgaPart::vu9p_class(), 8, false).fits_standard_rack());
    }

    #[test]
    fn dropping_the_controller_costs_almost_nothing() {
        let with = Ccb::new(FpgaPart::vu9p_class(), 8, true);
        let without = Ccb::new(FpgaPart::vu9p_class(), 8, false);
        let loss = 1.0
            - without.peak_performance().ops_per_second()
                / with.peak_performance().ops_per_second();
        assert!(loss < 0.01, "performance loss {loss}");
        assert_eq!(without.package_count(), 8);
        assert_eq!(with.package_count(), 9);
    }

    #[test]
    fn skat_board_power_near_800_w() {
        // §3: 12 CCBs "with a power of up to 800 W each".
        let ccb = Ccb::new(FpgaPart::xcku095(), 8, true);
        let p = ccb.board_power(OperatingPoint::operating_mode(), Celsius::new(55.0));
        assert!(p.watts() > 700.0 && p.watts() < 830.0, "board = {p}");
    }

    #[test]
    fn board_power_scales_with_count() {
        let small = Ccb::new(FpgaPart::xcku095(), 4, false);
        let large = Ccb::new(FpgaPart::xcku095(), 8, false);
        let op = OperatingPoint::operating_mode();
        let t = Celsius::new(55.0);
        assert!(large.board_power(op, t).watts() > 1.9 * small.board_power(op, t).watts() - 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one FPGA")]
    fn empty_board_panics() {
        let _ = Ccb::new(FpgaPart::xcku095(), 0, false);
    }
}
