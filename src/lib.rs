//! # rcs-sim
//!
//! A simulation library reproducing Levin, Dordopulo, Fedorov &
//! Doronchenko, *"High-Performance Reconfigurable Computer Systems with
//! Immersion Cooling"*: the design space of FPGA-based reconfigurable
//! computer systems (RCS) cooled by open-loop immersion in dielectric
//! coolant, versus the air-cooled and closed-loop alternatives it
//! obsoletes.
//!
//! The paper reports prototype measurements of physical hardware; this
//! workspace substitutes a first-principles multi-physics model for the
//! testbed (see `DESIGN.md` for the substitution map) and regenerates
//! every quantitative claim as an experiment (`rcs_core::experiments`,
//! `EXPERIMENTS.md`).
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! | module | crate | provides |
//! |---|---|---|
//! | [`units`] | `rcs-units` | typed physical quantities |
//! | [`numeric`] | `rcs-numeric` | dense linear algebra, RK4, root finding |
//! | [`parallel`] | `rcs-parallel` | deterministic scoped thread pool for sweeps |
//! | [`obs`] | `rcs-obs` | deterministic telemetry: counters, histograms, manifests |
//! | [`fluids`] | `rcs-fluids` | coolant properties & convection correlations |
//! | [`thermal`] | `rcs-thermal` | resistance networks, sinks, TIMs, exchangers |
//! | [`hydraulics`] | `rcs-hydraulics` | pipe-network solver, manifolds, balancing |
//! | [`devices`] | `rcs-devices` | FPGA catalog, power, performance, reliability |
//! | [`platform`] | `rcs-platform` | boards, modules, racks, presets |
//! | [`cooling`] | `rcs-cooling` | cooling architectures, control, risk |
//! | [`taskgraph`] | `rcs-taskgraph` | information graphs → FPGA field mapping |
//! | [`kernel`] | `rcs-kernel` | deterministic stepping kernel with checkpoint/restore |
//! | [`core`] | `rcs-core` | the coupled simulator and experiment harness |
//! | [`query`] | `rcs-query` | design-query service: cached, resilient batch answers |
//! | [`chaos`] | `rcs-chaos` | deterministic fault injection & the E19 chaos drill |
//!
//! # Examples
//!
//! Solve the SKAT computational module end to end:
//!
//! ```
//! use rcs_sim::core::ImmersionModel;
//!
//! let report = ImmersionModel::skat().solve()?;
//! println!("{report}");
//! assert!(report.junction.degrees() <= 55.0);
//! # Ok::<(), rcs_sim::core::CoreError>(())
//! ```

#![warn(missing_docs)]

pub use rcs_chaos as chaos;
pub use rcs_cooling as cooling;
pub use rcs_core as core;
pub use rcs_devices as devices;
pub use rcs_fluids as fluids;
pub use rcs_hydraulics as hydraulics;
pub use rcs_kernel as kernel;
pub use rcs_numeric as numeric;
pub use rcs_obs as obs;
pub use rcs_parallel as parallel;
pub use rcs_platform as platform;
pub use rcs_query as query;
pub use rcs_taskgraph as taskgraph;
pub use rcs_thermal as thermal;
pub use rcs_units as units;
