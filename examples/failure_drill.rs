//! Failure drill: a SKAT module loses its circulation pump mid-run. The
//! §2 control subsystem (level / flow / temperature sensors) watches the
//! transient and escalates through its alarm ladder.
//!
//! Run with `cargo run --release --example failure_drill`.

use rcs_sim::cooling::control::{Action, ControlSubsystem, Readings};
use rcs_sim::cooling::faults::{FaultKind, FaultTimeline, SensorChannel, SensorFault};
use rcs_sim::core::{FaultDrill, ImmersionModel};
use rcs_sim::numeric::rng::Rng;
use rcs_sim::thermal::ThermalNetwork;
use rcs_sim::units::ThermalResistance;
use rcs_sim::units::{Celsius, Seconds, VolumeFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ImmersionModel::skat();
    let steady = model.solve()?;
    let control = ControlSubsystem::default();

    println!(
        "steady state: Tj {:.1}, oil {:.1}, flow {:.0} L/min — all sensors green\n",
        steady.junction,
        steady.coolant_hot,
        steady.coolant_flow.as_liters_per_minute()
    );

    // Pump failure: circulation stops, so the chip->bath path loses its
    // forced convection (natural convection only, ~5x worse) and the bath
    // loses its exchanger flow (the secondary loop still takes what
    // conduction delivers). Model the post-failure network explicitly.
    let chips = 96.0;
    let mut net = ThermalNetwork::new();
    let chip_node = net.add_node_with_capacitance("chip field", 150.0 * chips);
    let bath_node = net.add_node_with_capacitance("oil bath", 105_000.0);
    let water = net.add_boundary("chilled water", Celsius::new(20.0));
    // natural-convection chip stack: ~5x the forced-flow resistance
    net.connect(
        chip_node,
        bath_node,
        ThermalResistance::from_kelvin_per_watt(0.22 * 5.0 / chips),
    )?;
    // exchanger without oil flow: residual conduction only
    net.connect(
        bath_node,
        water,
        ThermalResistance::from_kelvin_per_watt(0.02),
    )?;
    net.add_heat(chip_node, steady.total_heat)?;

    let initial = vec![steady.junction, steady.coolant_hot, Celsius::new(20.0)];
    let trace = net.solve_transient_from(&initial, Seconds::minutes(12.0), Seconds::new(1.0))?;

    println!("t+ [s]   Tj [°C]   bath [°C]   control verdict");
    let mut shutdown_at = None;
    for (t, tj) in trace.series(chip_node) {
        let step = t.seconds() as u64;
        if !step.is_multiple_of(60) {
            continue;
        }
        let bath = trace
            .series(bath_node)
            .iter()
            .find(|(tt, _)| *tt == t)
            .map_or(Celsius::new(0.0), |(_, temp)| *temp);
        let readings = Readings {
            coolant_level: 1.0,
            coolant_flow: VolumeFlow::ZERO, // the flow sensor sees the dead pump
            coolant_temperature: bath,
            component_temperature: tj,
        };
        let alarms = control.evaluate(&readings);
        // surface the most drastic recommended action
        let worst = alarms
            .iter()
            .find(|a| a.action == Action::EmergencyShutdown)
            .or_else(|| alarms.first());
        let verdict = worst.map_or("healthy".to_owned(), |a| {
            format!("{:?}: {}", a.action, a.message)
        });
        println!(
            "{step:>5}    {:>6.1}    {:>6.1}     {verdict}",
            tj.degrees(),
            bath.degrees()
        );
        if shutdown_at.is_none() && alarms.iter().any(|a| a.action == Action::EmergencyShutdown) {
            shutdown_at = Some(step);
        }
    }

    match shutdown_at {
        Some(t) => println!(
            "\nthe control subsystem orders emergency shutdown {t} s after the\n\
             pump failure — well before the junction reaches damaging levels.\n\
             (SKAT+ answers this class of event with a second, immersed pump.)"
        ),
        None => println!("\nno shutdown ordered within the drill window"),
    }

    // Act two: the same pump loss, replayed through the fault-injection
    // engine — this time with the agent-temperature transmitter stuck at
    // a lie. The hardened supervisor has to catch the seizure through
    // plausibility filtering and redundant probe voting alone.
    let timeline = FaultTimeline::new()
        .with_event(Seconds::minutes(2.0), FaultKind::PumpSeizure { pump: 0 })
        .with_event(
            Seconds::minutes(2.0),
            FaultKind::SensorFault {
                channel: SensorChannel::AgentTemperature,
                fault: SensorFault::StuckAt(28.5),
            },
        );
    let drill = FaultDrill::skat(
        "pump seizure + stuck agent sensor",
        timeline,
        Seconds::minutes(20.0),
    );
    // Record the drill trajectory into a bounded deterministic trace:
    // temperatures, flow, utilization, alarms and actions, one channel
    // each. Set RCS_OBS_TRACE=<file> to export it (NDJSON, or CSV for a
    // .csv path).
    let obs = rcs_sim::obs::Registry::new();
    let recorder = rcs_sim::obs::trace::TraceRecorder::new();
    let outcome = drill.run_traced(&mut Rng::seed_from_u64(7), &obs, &recorder);

    println!("\nhardened drill: {}", outcome.name);
    match outcome.time_to_shutdown {
        Some(t) => println!("  emergency stop at t+{:.0} s", t.seconds()),
        None => println!("  no shutdown ordered"),
    }
    println!(
        "  peak junction {:.1} (limit violations: {}), failed channels: {}",
        outcome.peak_junction,
        outcome.violation_steps,
        if outcome.channel_health.failed_channels().is_empty() {
            "none".to_owned()
        } else {
            outcome.channel_health.failed_channels().join(", ")
        }
    );

    let snapshot = recorder.snapshot();
    println!("\nrecorded trace channels:");
    for channel in &snapshot.channels {
        let last = channel.samples.last().map_or(f64::NAN, |s| s.value);
        println!(
            "  {:<18} {:>4} kept of {:>4} pushed (stride {}), last = {:.2}",
            channel.name,
            channel.samples.len(),
            channel.pushed,
            channel.stride,
            last
        );
    }
    // exports to the file named by RCS_OBS_TRACE (no-op otherwise)
    rcs_sim::obs::trace::emit(&snapshot);
    Ok(())
}
