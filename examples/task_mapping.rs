//! Task mapping: hardwire the information graphs of three classic RCS
//! workloads onto a SKAT computational module's FPGA field and follow the
//! consequences all the way to watts and degrees.
//!
//! This closes the loop the paper's §1 describes: "an RCS provides
//! adaptation of its architecture to the structure of any task" — and the
//! utilization that adaptation achieves is what sets the power the
//! cooling system must remove.
//!
//! Run with `cargo run --release --example task_mapping`.

use rcs_sim::core::ImmersionModel;
use rcs_sim::devices::{FpgaPart, OperatingPoint};
use rcs_sim::taskgraph::{field_peak, map_onto, map_time_multiplexed, workloads, FpgaField};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One SKAT module's computational field: 96 Kintex UltraScale FPGAs.
    let field = FpgaField::uniform(FpgaPart::xcku095(), 96);
    println!("field: 96 x XCKU095, catalog peak {}\n", field_peak(&field));

    for task in workloads::all_named() {
        let mapping = map_onto(&task, &field)?;
        println!(
            "{:<15} {:>4} ops/copy, {:>6} copies ({} chip(s)/copy)",
            task.name(),
            task.op_count(),
            mapping.copies,
            mapping.chips_per_copy
        );
        println!(
            "  throughput {:>10}   utilization {:>5.1} %   fill latency {:.2} µs",
            format!("{}", mapping.throughput),
            mapping.utilization * 100.0,
            mapping.fill_latency.seconds() * 1e6
        );

        // The mapped utilization drives the power model, which drives the
        // immersion cooling system.
        let op = OperatingPoint {
            utilization: mapping.utilization,
            clock_fraction: 1.0,
        };
        let report = ImmersionModel::skat().with_operating_point(op).solve()?;
        println!(
            "  -> {:.0} W/FPGA, junction {:.1}, oil {:.1}\n",
            report.chip_power.watts(),
            report.junction,
            report.coolant_hot
        );
    }

    // A task too big even for 96 chips: the mapper time-multiplexes the
    // hardware instead of failing, at the cost of initiation interval.
    let huge = workloads::random_dag(60_000, 7);
    let small_field = FpgaField::uniform(FpgaPart::xcku095(), 8);
    let shared = map_time_multiplexed(&huge, &small_field)?;
    println!(
        "oversized graph ({} ops) on one CCB: II = {} cycles, throughput {}",
        huge.op_count(),
        shared.initiation_interval,
        shared.throughput
    );

    println!(
        "\nnote: the denser the task tiles the field, the closer the module\n\
         runs to the paper's 91 W / 55 °C operating point — workload and\n\
         cooling are one design problem."
    );
    Ok(())
}
