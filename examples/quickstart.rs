//! Quickstart: build the SKAT computational module, solve its coupled
//! steady state, and check it against the paper's design rules.
//!
//! Run with `cargo run --release --example quickstart`.

use rcs_sim::core::{rules, ImmersionModel};
use rcs_sim::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The SKAT computational module: 12 boards x 8 Kintex UltraScale
    // FPGAs immersed in SRC dielectric coolant (paper §3).
    let model = ImmersionModel::skat();

    // Coupled steady state: hydraulics -> convection -> heat exchange ->
    // temperature-dependent power, iterated to a fixed point.
    let report = model.solve()?;
    println!("{report}\n");

    // The paper's §3 operating rules.
    println!("design-rule checks:");
    for check in rules::operating_rules(&report) {
        println!(
            "  [{}] {} — {}",
            if check.passed { "pass" } else { "FAIL" },
            check.rule,
            check.detail
        );
    }

    // Cold-start warm-up (the Fig. 2 heat test).
    let warmup = model.warmup(Seconds::hours(1.0), Seconds::new(2.0))?;
    println!(
        "\nwarm-up: chips reach {:.1} (bath {:.1}) and settle in {:.0} s",
        warmup.final_chip_temperature(),
        warmup.final_bath_temperature(),
        warmup.settling_time(0.5).seconds()
    );

    // Reliability context: what the 55 °C junction buys over Taygeta's
    // 72.9 °C air-cooled operation.
    let field_mtbf = report.field_mtbf_hours(96);
    println!(
        "96-FPGA field MTBF at {:.1}: {:.0} h (one chip failure every {:.1} months)",
        report.junction,
        field_mtbf,
        field_mtbf / 730.0
    );
    Ok(())
}
