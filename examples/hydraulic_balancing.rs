//! Hydraulic balancing of a rack manifold (the paper's Fig. 5): compare
//! direct-return and reverse-return layouts, trim balancing valves on the
//! direct layout, and inject a loop failure.
//!
//! Run with `cargo run --release --example hydraulic_balancing`.

use rcs_sim::fluids::Coolant;
use rcs_sim::hydraulics::{balance, layout};
use rcs_sim::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let water = Coolant::water().state(Celsius::new(20.0));
    let loops = 6;

    println!("rack manifold with {loops} computational-module loops\n");

    for style in [layout::ReturnStyle::Direct, layout::ReturnStyle::Reverse] {
        let plan = layout::rack_manifold(loops, style);
        let solution = plan.network.solve(&water)?;
        let flows = plan.loop_flows(&solution);
        print!("{style:<15}: ");
        for q in &flows {
            print!("{:6.1} ", q.as_liters_per_minute());
        }
        println!(
            "L/min | spread {:.3}, CV {:.4}",
            balance::spread(&flows).expect("manifold has loops"),
            balance::coefficient_of_variation(&flows).expect("manifold has loops")
        );
    }

    // What the direct layout needs instead: a balancing-valve subsystem.
    let params = layout::ManifoldParams {
        balancing_valves: true,
        ..layout::ManifoldParams::default()
    };
    let mut trimmed = layout::rack_manifold_with(loops, layout::ReturnStyle::Direct, &params);
    let report = balance::auto_trim(&mut trimmed, &water, 1.02, 60)?;
    println!(
        "direct + valves : spread {:.3} -> {:.3} after {} trim rounds (openings {:?})",
        report.spread_before,
        report.spread_after,
        report.rounds,
        report
            .openings
            .iter()
            .map(|o| (o * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Failure injection on the reverse-return layout: §4 says the flow is
    // "evenly changed in the rest of modules".
    println!("\nfailing loop 2 of the reverse-return layout:");
    let mut plan = layout::rack_manifold(loops, layout::ReturnStyle::Reverse);
    let before = plan.loop_flows(&plan.network.solve(&water)?);
    plan.fail_loop(2)?;
    let after = plan.loop_flows(&plan.network.solve(&water)?);
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        if i == 2 {
            println!(
                "  loop {i}: {:6.1} -> closed (servicing)",
                b.as_liters_per_minute()
            );
        } else {
            println!(
                "  loop {i}: {:6.1} -> {:6.1} L/min ({:+.1} %)",
                b.as_liters_per_minute(),
                a.as_liters_per_minute(),
                (a.as_liters_per_minute() / b.as_liters_per_minute() - 1.0) * 100.0
            );
        }
    }
    let survivors = plan.surviving_loop_flows(&plan.network.solve(&water)?);
    println!(
        "  survivors stay balanced: spread {:.3} — no rebalancing needed",
        balance::spread(&survivors).expect("survivors remain")
    );
    Ok(())
}
