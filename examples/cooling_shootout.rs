//! Cooling shootout: the same SKAT-class module under all three cooling
//! architectures the paper compares — air, closed-loop cold plates and
//! open-loop immersion — on temperature, energy overhead and five-year
//! operational risk.
//!
//! Run with `cargo run --release --example cooling_shootout`.

use rcs_sim::cooling::{
    availability, risk, AirCooling, ColdPlateLoop, CoolingArchitecture, ImmersionBath,
};
use rcs_sim::core::{AirCooledModel, ColdPlateModel, CoreError, ImmersionModel, SteadyReport};
use rcs_sim::platform::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = presets::skat();

    println!("one SKAT-class module (96 x XCKU095, operating mode) under three architectures:\n");

    // Air cooling: the UltraScale generation no longer converges on the
    // calibrated air stack — leakage outruns the heat path.
    let air = AirCooledModel::for_module(module.clone()).solve();
    match &air {
        Ok(report) => print_report(report),
        Err(CoreError::NoConvergence { iterations, .. }) => println!(
            "air cooling: THERMAL RUNAWAY after {iterations} iterations — \
             leakage growth outruns the sink (the paper's §1 warning)\n"
        ),
        Err(e) => return Err(Box::new(e.clone())),
    }

    // Closed-loop cold plates: thermally fine...
    let plates = ColdPlateModel::for_module(module.clone()).solve()?;
    print_report(&plates);

    // Open-loop immersion: the paper's answer.
    let immersion = ImmersionModel::skat().solve()?;
    print_report(&immersion);

    // ...but operations decide it (§2): five-year Monte-Carlo.
    println!("five-year operational risk (4000 trials, fixed seed):");
    let architectures = [
        CoolingArchitecture::Air(AirCooling::machine_room_default()),
        CoolingArchitecture::ColdPlate(ColdPlateLoop::per_chip_plates(96)),
        CoolingArchitecture::Immersion(ImmersionBath::skat_default()),
    ];
    for arch in &architectures {
        let classes = risk::failure_classes(arch);
        let mc = availability::monte_carlo(&classes, 5.0, 4000, 42);
        println!(
            "  {:<26} availability {:.4} | {:>5.1} h/yr down | {:.2} hardware losses",
            arch.name(),
            mc.mean_availability,
            risk::expected_annual_downtime_hours(&classes),
            mc.mean_hardware_losses,
        );
    }
    println!(
        "\nverdict: only immersion combines a sub-55 °C junction with the\n\
         lowest operational risk — the paper's conclusion, from physics."
    );
    Ok(())
}

fn print_report(report: &SteadyReport) {
    println!("{report}\n");
}
