//! Rack designer: size a 47U immersion rack to a performance target and
//! check the engineering budget (space, heat, chiller, manifold).
//!
//! Run with `cargo run --release --example rack_designer -- 2.0`
//! (argument: target PFlops, default 1.0 — the paper's §5 claim).

use rcs_sim::core::ImmersionModel;
use rcs_sim::devices::OperatingPoint;
use rcs_sim::fluids::Coolant;
use rcs_sim::hydraulics::{balance, layout};
use rcs_sim::platform::{presets, ComputeModule, Rack};
use rcs_sim::units::{Celsius, Power};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target_pflops: f64 = match std::env::args().nth(1) {
        None => 1.0,
        Some(raw) => match raw.parse() {
            Ok(v) if v > 0.0 => v,
            _ => {
                eprintln!("usage: rack_designer [TARGET_PFLOPS > 0], got {raw:?}");
                std::process::exit(2);
            }
        },
    };

    println!("target: {target_pflops:.2} PFlops in one 47U rack\n");

    for module in [presets::skat(), presets::skat_plus()] {
        match design(module, target_pflops)? {
            Some(summary) => println!("{summary}\n"),
            None => println!("(module type cannot reach the target in one rack)\n"),
        }
    }
    Ok(())
}

fn design(
    module: ComputeModule,
    target_pflops: f64,
) -> Result<Option<String>, Box<dyn std::error::Error>> {
    let per_module = module.peak_performance().as_petaflops();
    let needed = (target_pflops / per_module).ceil() as usize;
    let name = module.name().to_owned();

    let Some(rack) = Rack::with_modules(47.0, module.clone(), needed) else {
        return Ok(None);
    };

    // Thermal state of each (identical) module.
    let report = if name == "SKAT+" {
        ImmersionModel::skat_plus().solve()?
    } else {
        ImmersionModel::skat().solve()?
    };
    let rack_heat = rack.total_heat(OperatingPoint::operating_mode(), report.junction);

    // Secondary loop: one reverse-return manifold across all modules.
    // Header sizing rule: grow the manifold diameter with the square root
    // of the loop count so header velocity (and thus imbalance) stays at
    // the 6-loop design level.
    let params = layout::ManifoldParams {
        manifold_diameter: rcs_sim::units::Length::millimeters(
            50.0 * (needed as f64 / 6.0).sqrt().max(1.0),
        ),
        ..layout::ManifoldParams::default()
    };
    let plan = layout::rack_manifold_with(needed, layout::ReturnStyle::Reverse, &params);
    let water = Coolant::water().state(Celsius::new(20.0));
    let flows = plan.loop_flows(&plan.network.solve(&water)?);
    let spread = balance::spread(&flows).expect("rack manifold has loops");

    // Chiller sizing with 25 % margin.
    let chiller_size = Power::from_watts(rack_heat.watts() * 1.25);

    Ok(Some(format!(
        "{name}: {needed} x 3U modules ({:.0}U free) -> {:.2} PFlops\n  \
         rack heat {:.0} kW, junction {:.1}, oil {:.1}\n  \
         manifold: {} loops reverse-return, spread {spread:.3} (no balancing valves)\n  \
         chiller: {:.0} kW rated ({:.0} kW load + 25 % margin)",
        rack.free_units(),
        rack.peak_performance().as_petaflops(),
        rack_heat.as_kilowatts(),
        report.junction,
        report.coolant_hot,
        needed,
        chiller_size.as_kilowatts(),
        rack_heat.as_kilowatts(),
    )))
}
